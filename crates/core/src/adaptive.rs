//! The closed-loop adversary probe: runs [`AttackerBrain`]s against
//! a live drone, feeding each brain exactly the signals a real
//! hostile tenant sees back through the SDK surface — its own
//! admission results and its own ladder suspension flag — and
//! translating each brain's next-tick command into real admission
//! traffic through the Binder driver.
//!
//! The defense side mirrors [`crate::attack::AttackInjector`]: the
//! per-tenant budget and escalation ladder arm at `arm_tick`, and an
//! [`AttackDefense`] that carries the hardening (aggregate admission
//! cap, refill-boundary jitter, hysteresis decay) arms those on the
//! driver too. Interference on the fast loop scales with the load
//! the driver actually *admitted* each tick
//! ([`profiles::attack_admitted`]) — a throttled attacker does not
//! get to hurt the flight with transactions that never got in, which
//! is precisely why collusion (many tenants, each individually
//! clean) is the strategy per-tenant enforcement alone cannot stop.
//!
//! Determinism contract: an empty plan does zero work — no RNG
//! draws, no obs writes, no driver or kernel state touched. Brains
//! draw only from the adversary feedback stream; the injector itself
//! draws nothing.

use androne_simkern::latency::profiles;
use androne_workloads::adaptive::{AdaptivePlan, AttackerBrain, AttackerObservation};

use crate::attack::{arm_hardening, observe_enforcement, AttackDefense, LadderRung, LadderState};
use crate::drone::Drone;
use crate::probe::FlightProbe;

/// Applies an [`AdaptivePlan`] to a drone, one simulated second at a
/// time. See the module docs for the feedback and defense model.
pub struct AdaptiveInjector {
    plan: AdaptivePlan,
    defense: Option<AttackDefense>,
    brains: Vec<AttackerBrain>,
    /// Last tick's per-attacker outcome, fed back to the brains.
    feedback: Vec<AttackerObservation>,
    ladder: LadderState,
    actions: Vec<String>,
    prev_throttles: u64,
    armed: bool,
    /// Whether the admitted-load interference source is currently
    /// registered on the kernel.
    interference_live: bool,
    total_admitted: u64,
    total_rejected: u64,
}

impl AdaptiveInjector {
    /// Wraps a plan. `defense: None` runs the brains against a
    /// driver with no budgets at all (the unenforced worst case).
    pub fn new(plan: AdaptivePlan, defense: Option<AttackDefense>) -> Self {
        let brains = plan
            .attackers
            .iter()
            .enumerate()
            .map(|(i, a)| AttackerBrain::new(plan.seed, i as u64, a.strategy))
            .collect();
        let feedback = vec![AttackerObservation::default(); plan.attackers.len()];
        AdaptiveInjector {
            plan,
            defense,
            brains,
            feedback,
            ladder: LadderState::default(),
            actions: Vec::new(),
            prev_throttles: 0,
            armed: false,
            interference_live: false,
            total_admitted: 0,
            total_rejected: 0,
        }
    }

    /// The plan being driven.
    pub fn plan(&self) -> &AdaptivePlan {
        &self.plan
    }

    /// Human-readable log of arming, disarming and ladder movement.
    pub fn actions(&self) -> &[String] {
        &self.actions
    }

    /// The ladder rung `attacker` currently sits on, if enforcement
    /// engaged it.
    pub fn rung(&self, attacker: &str) -> Option<LadderRung> {
        self.ladder.rung(attacker)
    }

    /// Ladder state for every attacker enforcement touched, sorted.
    pub fn rungs(&self) -> impl Iterator<Item = (&str, LadderRung)> {
        self.ladder.iter()
    }

    /// Transactions the driver admitted across the whole campaign.
    pub fn total_admitted(&self) -> u64 {
        self.total_admitted
    }

    /// Transactions the driver rejected across the whole campaign.
    pub fn total_rejected(&self) -> u64 {
        self.total_rejected
    }

    fn record(&mut self, drone: &Drone, attacker: &str, armed: bool, action: String) {
        drone.obs.count("attack.transitions", 1);
        let attacker = attacker.to_string();
        drone
            .obs
            .emit(androne_obs::Subsystem::Fault, || {
                androne_obs::TraceEvent::AttackEdge {
                    kind: "adaptive",
                    attacker,
                    armed,
                    detail: action.clone(),
                }
            });
        self.actions.push(action);
    }

    fn arm(&mut self, tick: u64, drone: &mut Drone) {
        for i in 0..self.plan.attackers.len() {
            let attacker = self.plan.attackers[i].name.clone();
            let strategy = self.plan.attackers[i].strategy;
            let Some(container) = drone.vdrones.get(&attacker).map(|v| v.container) else {
                let action =
                    format!("t={tick} arm adaptive/{} {attacker}: not deployed", strategy.name());
                self.record(drone, &attacker, true, action);
                continue;
            };
            if let Some(d) = self.defense {
                if drone.driver.tenant_budget(&container).is_none() {
                    drone.driver.set_tenant_budget(container, d.budget);
                }
                self.ladder.note_budgeted(&attacker);
                arm_hardening(drone, &d, self.plan.seed);
            }
            let action = format!("t={tick} arm adaptive/{} {attacker}", strategy.name());
            self.record(drone, &attacker, true, action);
        }
        self.armed = true;
    }

    /// Runs one simulated second of the campaign: feed each brain its
    /// previous-tick observation, drive its command through the real
    /// admission path, re-scale the admitted-load interference, then
    /// advance the ladder (both directions) and record the
    /// enforcement-trajectory tails.
    pub fn apply_tick(&mut self, tick: u64, drone: &mut Drone) {
        if self.plan.is_empty() || tick < self.plan.arm_tick {
            return;
        }
        if !self.armed {
            self.arm(tick, drone);
        }
        let active = tick < self.plan.disarm_tick;
        let mut admitted_now = 0u64;
        if active {
            for i in 0..self.brains.len() {
                let attacker = self.plan.attackers[i].name.clone();
                let Some(container) = drone.vdrones.get(&attacker).map(|v| v.container) else {
                    continue;
                };
                let mut obs = self.feedback[i];
                obs.tick = tick;
                obs.suspended = drone
                    .vdc
                    .borrow()
                    .record(&attacker)
                    .is_some_and(|r| r.suspended);
                let cmd = self.brains[i].plan_tick(&obs);
                let (mut ok, mut rejected) = (0u64, 0u64);
                for _ in 0..cmd.txns {
                    match drone.driver.attack_transact(container, cmd.wire_size as usize) {
                        Ok(_) => ok += 1,
                        Err(_) => rejected += 1,
                    }
                }
                self.feedback[i] = AttackerObservation {
                    tick,
                    sent: u64::from(cmd.txns),
                    admitted: ok,
                    rejected,
                    suspended: obs.suspended,
                };
                admitted_now += ok;
                self.total_admitted += ok;
                self.total_rejected += rejected;
            }
        } else if self.interference_live {
            self.record(
                drone,
                "*",
                false,
                format!(
                    "t={tick} disarm adaptive (admitted={}, rejected={})",
                    self.total_admitted, self.total_rejected
                ),
            );
        }
        // The fast-loop pressure tracks what actually got through the
        // driver this tick.
        if self.interference_live {
            drone.kernel.borrow_mut().remove_interference("attack:admitted");
            self.interference_live = false;
        }
        if admitted_now > 0 {
            drone
                .kernel
                .borrow_mut()
                .add_interference(profiles::attack_admitted(admitted_now));
            self.interference_live = true;
        }
        // The ladder keeps walking after disarm so hysteresis decay
        // can finish stepping quiet tenants back down.
        if let Some(d) = self.defense {
            let attackers = self.plan.attacker_names();
            for step in self.ladder.advance(&d, &attackers, drone) {
                let counter = if step.up {
                    "attack.ladder.steps"
                } else {
                    "attack.ladder.decays"
                };
                drone.obs.count(counter, 1);
                let arrow = if step.up { "->" } else { "~>" };
                let action = format!(
                    "t={tick} ladder {} {arrow} {} (throttles={})",
                    step.attacker,
                    step.rung.name(),
                    step.throttles
                );
                self.record(drone, &step.attacker, step.up, action);
            }
            observe_enforcement(drone, &attackers, &mut self.prev_throttles, 0);
        }
    }
}

impl FlightProbe for AdaptiveInjector {
    fn on_tick(&mut self, tick: u64, drone: &mut Drone) {
        self.apply_tick(tick, drone);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use androne_workloads::adaptive::AdaptiveStrategy;

    #[test]
    fn empty_plan_injector_is_inert() {
        let inj = AdaptiveInjector::new(AdaptivePlan::empty(), Some(AttackDefense::hardened()));
        assert!(inj.plan().is_empty());
        assert!(inj.actions().is_empty());
        assert!(inj.rungs().next().is_none());
        assert_eq!(inj.total_admitted(), 0);
    }

    #[test]
    fn brains_are_built_per_roster_index() {
        let plan = AdaptivePlan::single(AdaptiveStrategy::RefillProbe, "vd1", 2, 30);
        let inj = AdaptiveInjector::new(plan, None);
        assert_eq!(inj.brains.len(), 1);
        assert_eq!(inj.feedback.len(), 1);
    }
}
