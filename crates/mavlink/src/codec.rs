//! MAVLink v1 wire framing.
//!
//! Frame layout: `0xFE len seq sysid compid msgid payload crc_lo
//! crc_hi`, with the X.25 checksum computed over `len..payload` plus
//! the per-message CRC_EXTRA byte. The parser is an incremental state
//! machine that resynchronizes on the 0xFE start byte, so corrupted
//! streams drop frames rather than wedging the link.

use crate::crc::{accumulate, CRC_INIT};
use crate::error::MavError;
use crate::message::Message;
use crate::wire;

/// MAVLink v1 start-of-frame marker.
pub const STX: u8 = 0xFE;

/// A framed message with routing metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Per-link sequence number.
    pub seq: u8,
    /// Sending system id.
    pub sysid: u8,
    /// Sending component id.
    pub compid: u8,
    /// The message.
    pub msg: Message,
}

impl Frame {
    /// Serializes the frame to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.msg.encode_payload();
        let msg_id = self.msg.msg_id();
        let mut out = Vec::with_capacity(8 + payload.len());
        out.push(STX);
        out.push(wire::len8(payload.len()));
        out.push(self.seq);
        out.push(self.sysid);
        out.push(self.compid);
        out.push(msg_id);
        out.extend(&payload);
        let mut crc = CRC_INIT;
        for &b in &out[1..] {
            crc = accumulate(crc, b);
        }
        crc = accumulate(crc, self.msg.own_crc_extra());
        out.push(wire::lo8(crc));
        out.push(wire::hi8(crc));
        out
    }
}

/// Incremental frame parser.
///
/// Consumed bytes are tracked with a read cursor instead of
/// `Vec::drain`: draining the front of the buffer memmoves the whole
/// tail for every frame, turning a burst of n frames into O(n²) byte
/// moves. The cursor makes each frame O(frame length), with the
/// buffer compacted once it is mostly dead space.
#[derive(Debug, Default)]
pub struct Parser {
    buf: Vec<u8>,
    /// Read cursor: bytes before this offset are consumed.
    pos: usize,
    /// Frames dropped due to checksum or structural errors.
    dropped: u64,
}

/// Compact once consumed bytes exceed this many and dominate the
/// buffer (amortizes the memmove over many frames).
const COMPACT_THRESHOLD: usize = 4096;

impl Parser {
    /// Creates an empty parser.
    pub fn new() -> Self {
        Parser::default()
    }

    /// Frames dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Bytes buffered but not yet consumed (diagnostics/tests).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= COMPACT_THRESHOLD && self.pos >= self.buf.len() / 2 {
            self.buf.copy_within(self.pos.., 0);
            self.buf.truncate(self.buf.len() - self.pos);
            self.pos = 0;
        }
    }

    /// Feeds bytes, returning every complete frame decoded.
    pub fn push(&mut self, bytes: &[u8]) -> Vec<Frame> {
        self.buf.extend_from_slice(bytes);
        let mut frames = Vec::new();
        loop {
            let pending = &self.buf[self.pos..];
            // Resync: skip garbage before the next STX.
            match pending.iter().position(|&b| b == STX) {
                Some(0) => {}
                Some(i) => {
                    self.pos += i;
                }
                None => {
                    // No frame start anywhere: everything is consumed.
                    self.buf.clear();
                    self.pos = 0;
                    break;
                }
            }
            let pending = &self.buf[self.pos..];
            if pending.len() < 8 {
                break;
            }
            let len = usize::from(pending[1]);
            let total = 8 + len;
            if pending.len() < total {
                break;
            }
            match decode_frame(&pending[..total]) {
                Ok(frame) => frames.push(frame),
                Err(_) => {
                    self.dropped += 1;
                    // The consumed bytes are discarded; parsing
                    // continues at the next STX.
                }
            }
            self.pos += total;
        }
        self.compact();
        frames
    }
}

fn decode_frame(b: &[u8]) -> Result<Frame, MavError> {
    // The length byte is attacker-controlled: every derived offset is
    // bounds-checked with `get`, never indexed (dronelint R3/R4).
    let truncated = |needed: usize| MavError::Truncated {
        needed,
        got: b.len(),
    };
    let header = b.get(..6).ok_or_else(|| truncated(8))?;
    debug_assert_eq!(header[0], STX);
    let len = usize::from(header[1]);
    let (seq, sysid, compid, msg_id) = (header[2], header[3], header[4], header[5]);
    let payload = b.get(6..6 + len).ok_or_else(|| truncated(8 + len))?;
    let crc_lo = *b.get(6 + len).ok_or_else(|| truncated(8 + len))?;
    let crc_hi = *b.get(7 + len).ok_or_else(|| truncated(8 + len))?;
    let received = u16::from(crc_lo) | (u16::from(crc_hi) << 8);

    let mut crc = CRC_INIT;
    for &x in &b[1..6 + len] {
        crc = accumulate(crc, x);
    }
    crc = accumulate(crc, Message::crc_extra(msg_id)?);
    if crc != received {
        return Err(MavError::BadChecksum {
            computed: crc,
            received,
        });
    }
    Ok(Frame {
        seq,
        sysid,
        compid,
        msg: Message::decode_payload(msg_id, payload)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::FlightMode;

    fn heartbeat(seq: u8) -> Frame {
        Frame {
            seq,
            sysid: 1,
            compid: 1,
            msg: Message::Heartbeat {
                mode: FlightMode::Loiter,
                armed: true,
                system_status: 4,
            },
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let frame = heartbeat(7);
        let mut parser = Parser::new();
        let out = parser.push(&frame.encode());
        assert_eq!(out, vec![frame]);
    }

    #[test]
    fn split_delivery_reassembles() {
        let frame = heartbeat(1);
        let bytes = frame.encode();
        let mut parser = Parser::new();
        assert!(parser.push(&bytes[..3]).is_empty());
        assert!(parser.push(&bytes[3..7]).is_empty());
        let out = parser.push(&bytes[7..]);
        assert_eq!(out, vec![frame]);
    }

    #[test]
    fn garbage_before_frame_is_skipped() {
        let frame = heartbeat(2);
        let mut stream = vec![0x00, 0x13, 0x37];
        stream.extend(frame.encode());
        let mut parser = Parser::new();
        let out = parser.push(&stream);
        assert_eq!(out, vec![frame]);
        assert_eq!(parser.dropped(), 0);
    }

    #[test]
    fn corrupted_crc_drops_frame_and_resyncs() {
        let a = heartbeat(1);
        let b = heartbeat(2);
        let mut bytes = a.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // Corrupt CRC of the first frame.
        bytes.extend(b.encode());
        let mut parser = Parser::new();
        let out = parser.push(&bytes);
        assert_eq!(out, vec![b], "second frame survives");
        assert_eq!(parser.dropped(), 1);
    }

    #[test]
    fn corrupted_payload_is_rejected() {
        let frame = heartbeat(3);
        let mut bytes = frame.encode();
        bytes[7] ^= 0x55; // Flip payload bits; CRC now mismatches.
        let mut parser = Parser::new();
        assert!(parser.push(&bytes).is_empty());
        assert_eq!(parser.dropped(), 1);
    }

    #[test]
    fn back_to_back_frames_all_decode() {
        let mut bytes = Vec::new();
        for i in 0..10 {
            bytes.extend(heartbeat(i).encode());
        }
        let mut parser = Parser::new();
        let out = parser.push(&bytes);
        assert_eq!(out.len(), 10);
        assert_eq!(out[9].seq, 9);
    }

    #[test]
    fn cursor_buffer_does_not_accumulate_consumed_bytes() {
        let mut parser = Parser::new();
        // Large bursts: everything consumed, nothing retained.
        for round in 0..50u32 {
            let mut bytes = Vec::new();
            for i in 0..100 {
                bytes.extend(heartbeat((round as usize + i) as u8).encode());
            }
            let out = parser.push(&bytes);
            assert_eq!(out.len(), 100);
            assert_eq!(parser.pending(), 0, "no dead bytes retained");
        }
        // A partial frame stays pending until completed.
        let frame = heartbeat(0);
        let bytes = frame.encode();
        parser.push(&bytes[..5]);
        assert_eq!(parser.pending(), 5);
        let out = parser.push(&bytes[5..]);
        assert_eq!(out, vec![frame]);
        assert_eq!(parser.pending(), 0);
    }
}
