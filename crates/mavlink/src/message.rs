//! MAVLink message definitions.
//!
//! The subset of common-dialect messages AnDrone's flight path
//! exercises: heartbeats, mode changes, commands, guided position
//! targets, telemetry, and geofence status text. Payload fields are
//! encoded little-endian in declaration order (we do not reproduce
//! MAVLink's size-sorted field reordering; the framing, checksums,
//! and semantics are faithful).

use crate::error::MavError;
use crate::wire;

/// ArduPilot Copter flight modes (the `custom_mode` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlightMode {
    /// Manual angle control with self-leveling.
    Stabilize,
    /// Altitude-held manual control.
    AltHold,
    /// Autonomous mission execution.
    Auto,
    /// Accepts position/velocity targets from a companion.
    Guided,
    /// Holds position and altitude.
    Loiter,
    /// Returns to launch and lands.
    Rtl,
    /// Descends and disarms.
    Land,
}

impl FlightMode {
    /// ArduPilot Copter custom mode number.
    pub fn custom_mode(self) -> u32 {
        match self {
            FlightMode::Stabilize => 0,
            FlightMode::AltHold => 2,
            FlightMode::Auto => 3,
            FlightMode::Guided => 4,
            FlightMode::Loiter => 5,
            FlightMode::Rtl => 6,
            FlightMode::Land => 9,
        }
    }

    /// Parses an ArduPilot Copter custom mode number.
    pub fn from_custom_mode(m: u32) -> Result<Self, MavError> {
        Ok(match m {
            0 => FlightMode::Stabilize,
            2 => FlightMode::AltHold,
            3 => FlightMode::Auto,
            4 => FlightMode::Guided,
            5 => FlightMode::Loiter,
            6 => FlightMode::Rtl,
            9 => FlightMode::Land,
            other => return Err(MavError::UnknownMode(other)),
        })
    }

    /// All modes (for whitelist templates).
    pub const ALL: [FlightMode; 7] = [
        FlightMode::Stabilize,
        FlightMode::AltHold,
        FlightMode::Auto,
        FlightMode::Guided,
        FlightMode::Loiter,
        FlightMode::Rtl,
        FlightMode::Land,
    ];
}

/// MAV_CMD command ids used by the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MavCmd {
    /// MAV_CMD_NAV_WAYPOINT (16).
    NavWaypoint,
    /// MAV_CMD_NAV_RETURN_TO_LAUNCH (20).
    NavReturnToLaunch,
    /// MAV_CMD_NAV_LAND (21).
    NavLand,
    /// MAV_CMD_NAV_TAKEOFF (22).
    NavTakeoff,
    /// MAV_CMD_CONDITION_YAW (115).
    ConditionYaw,
    /// MAV_CMD_DO_SET_MODE (176).
    DoSetMode,
    /// MAV_CMD_DO_MOUNT_CONTROL (205) — gimbal.
    DoMountControl,
    /// MAV_CMD_COMPONENT_ARM_DISARM (400).
    ComponentArmDisarm,
}

impl MavCmd {
    /// Numeric MAV_CMD id.
    pub fn id(self) -> u16 {
        match self {
            MavCmd::NavWaypoint => 16,
            MavCmd::NavReturnToLaunch => 20,
            MavCmd::NavLand => 21,
            MavCmd::NavTakeoff => 22,
            MavCmd::ConditionYaw => 115,
            MavCmd::DoSetMode => 176,
            MavCmd::DoMountControl => 205,
            MavCmd::ComponentArmDisarm => 400,
        }
    }

    /// Parses a numeric MAV_CMD id.
    pub fn from_id(id: u16) -> Result<Self, MavError> {
        Ok(match id {
            16 => MavCmd::NavWaypoint,
            20 => MavCmd::NavReturnToLaunch,
            21 => MavCmd::NavLand,
            22 => MavCmd::NavTakeoff,
            115 => MavCmd::ConditionYaw,
            176 => MavCmd::DoSetMode,
            205 => MavCmd::DoMountControl,
            400 => MavCmd::ComponentArmDisarm,
            other => return Err(MavError::UnknownCommand(other)),
        })
    }

    /// All commands (for whitelist templates).
    pub const ALL: [MavCmd; 8] = [
        MavCmd::NavWaypoint,
        MavCmd::NavReturnToLaunch,
        MavCmd::NavLand,
        MavCmd::NavTakeoff,
        MavCmd::ConditionYaw,
        MavCmd::DoSetMode,
        MavCmd::DoMountControl,
        MavCmd::ComponentArmDisarm,
    ];
}

/// MAV_RESULT values for COMMAND_ACK.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MavResult {
    /// Command accepted and executed.
    Accepted,
    /// Command valid but denied (the VFC's answer to off-whitelist
    /// or off-waypoint commands).
    Denied,
    /// Command failed during execution.
    Failed,
}

impl MavResult {
    fn to_u8(self) -> u8 {
        match self {
            MavResult::Accepted => 0,
            MavResult::Denied => 2,
            MavResult::Failed => 4,
        }
    }

    fn from_u8(v: u8) -> Result<Self, MavError> {
        Ok(match v {
            0 => MavResult::Accepted,
            2 => MavResult::Denied,
            4 => MavResult::Failed,
            other => return Err(MavError::Malformed(format!("bad MAV_RESULT {other}"))),
        })
    }
}

/// The message set.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// HEARTBEAT (0): sent at 1 Hz by every component.
    Heartbeat {
        /// Current flight mode.
        mode: FlightMode,
        /// Whether the vehicle is armed.
        armed: bool,
        /// MAV_STATE (3 = standby, 4 = active).
        system_status: u8,
    },
    /// SYS_STATUS (1): battery and load.
    SysStatus {
        /// Battery voltage, millivolts.
        voltage_mv: u16,
        /// Battery current, centiamps.
        current_ca: i16,
        /// Remaining battery, percent.
        battery_remaining: i8,
    },
    /// SET_MODE (11).
    SetMode {
        /// Requested mode.
        mode: FlightMode,
    },
    /// ATTITUDE (30).
    Attitude {
        /// Milliseconds since boot.
        time_boot_ms: u32,
        /// Roll, radians.
        roll: f32,
        /// Pitch, radians.
        pitch: f32,
        /// Yaw, radians.
        yaw: f32,
    },
    /// GLOBAL_POSITION_INT (33).
    GlobalPositionInt {
        /// Milliseconds since boot.
        time_boot_ms: u32,
        /// Latitude, degE7.
        lat: i32,
        /// Longitude, degE7.
        lon: i32,
        /// Altitude above ground, millimeters.
        relative_alt: i32,
        /// Ground X speed, cm/s.
        vx: i16,
        /// Ground Y speed, cm/s.
        vy: i16,
        /// Ground Z speed, cm/s.
        vz: i16,
    },
    /// COMMAND_LONG (76).
    CommandLong {
        /// The command.
        command: MavCmd,
        /// Parameters 1-7 (meaning per command).
        params: [f32; 7],
    },
    /// COMMAND_ACK (77).
    CommandAck {
        /// The command being acknowledged.
        command: MavCmd,
        /// Result.
        result: MavResult,
    },
    /// SET_POSITION_TARGET_GLOBAL_INT (86): guided-mode target.
    SetPositionTargetGlobalInt {
        /// Latitude, degE7.
        lat: i32,
        /// Longitude, degE7.
        lon: i32,
        /// Altitude, meters.
        alt: f32,
        /// Desired ground speed toward the target, m/s.
        speed: f32,
    },
    /// MISSION_COUNT (44): announces a mission upload of `count`
    /// items.
    MissionCount {
        /// Number of items to follow.
        count: u16,
    },
    /// MISSION_REQUEST_INT (51): the vehicle asks for item `seq`.
    MissionRequestInt {
        /// Item index requested.
        seq: u16,
    },
    /// MISSION_ITEM_INT (73): one mission waypoint.
    MissionItemInt {
        /// Item index.
        seq: u16,
        /// Latitude, degE7.
        lat: i32,
        /// Longitude, degE7.
        lon: i32,
        /// Altitude, meters.
        alt: f32,
    },
    /// MISSION_ACK (47): upload outcome (0 = MAV_MISSION_ACCEPTED).
    MissionAck {
        /// MAV_MISSION_RESULT value.
        result: u8,
    },
    /// STATUSTEXT (253): notifications (geofence breach etc.).
    StatusText {
        /// MAV_SEVERITY (0 emergency .. 6 info).
        severity: u8,
        /// The text (truncated to 50 bytes on the wire).
        text: String,
    },
}

impl Message {
    /// MAVLink message id.
    pub fn msg_id(&self) -> u8 {
        match self {
            Message::Heartbeat { .. } => 0,
            Message::SysStatus { .. } => 1,
            Message::SetMode { .. } => 11,
            Message::Attitude { .. } => 30,
            Message::GlobalPositionInt { .. } => 33,
            Message::MissionCount { .. } => 44,
            Message::MissionAck { .. } => 47,
            Message::MissionRequestInt { .. } => 51,
            Message::MissionItemInt { .. } => 73,
            Message::CommandLong { .. } => 76,
            Message::CommandAck { .. } => 77,
            Message::SetPositionTargetGlobalInt { .. } => 86,
            Message::StatusText { .. } => 253,
        }
    }

    /// Per-message CRC_EXTRA seed byte.
    pub fn crc_extra(msg_id: u8) -> Result<u8, MavError> {
        Ok(match msg_id {
            0 => 50,
            1 => 124,
            11 => 89,
            30 => 39,
            33 => 104,
            44 => 221,
            47 => 153,
            51 => 196,
            73 => 38,
            76 => 152,
            77 => 143,
            86 => 5,
            253 => 83,
            other => return Err(MavError::UnknownMessage(other)),
        })
    }

    /// CRC_EXTRA of this message. Infallible: [`Message::msg_id`]
    /// only returns ids present in the [`Message::crc_extra`] table,
    /// so the encoder needs no `expect` (dronelint R3).
    pub fn own_crc_extra(&self) -> u8 {
        match Self::crc_extra(self.msg_id()) {
            Ok(extra) => extra,
            // Unreachable by construction; a stable (wrong) byte here
            // still fails checksums loudly rather than panicking the
            // flight path.
            Err(_) => {
                debug_assert!(false, "own msg_id missing from CRC_EXTRA table");
                0
            }
        }
    }

    /// Serializes the payload (little-endian, declaration order).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Message::Heartbeat {
                mode,
                armed,
                system_status,
            } => {
                out.extend(mode.custom_mode().to_le_bytes());
                out.push(u8::from(*armed));
                out.push(*system_status);
            }
            Message::SysStatus {
                voltage_mv,
                current_ca,
                battery_remaining,
            } => {
                out.extend(voltage_mv.to_le_bytes());
                out.extend(current_ca.to_le_bytes());
                out.push(wire::i8_bits(*battery_remaining));
            }
            Message::SetMode { mode } => out.extend(mode.custom_mode().to_le_bytes()),
            Message::Attitude {
                time_boot_ms,
                roll,
                pitch,
                yaw,
            } => {
                out.extend(time_boot_ms.to_le_bytes());
                out.extend(roll.to_le_bytes());
                out.extend(pitch.to_le_bytes());
                out.extend(yaw.to_le_bytes());
            }
            Message::GlobalPositionInt {
                time_boot_ms,
                lat,
                lon,
                relative_alt,
                vx,
                vy,
                vz,
            } => {
                out.extend(time_boot_ms.to_le_bytes());
                out.extend(lat.to_le_bytes());
                out.extend(lon.to_le_bytes());
                out.extend(relative_alt.to_le_bytes());
                out.extend(vx.to_le_bytes());
                out.extend(vy.to_le_bytes());
                out.extend(vz.to_le_bytes());
            }
            Message::MissionCount { count } => out.extend(count.to_le_bytes()),
            Message::MissionRequestInt { seq } => out.extend(seq.to_le_bytes()),
            Message::MissionItemInt { seq, lat, lon, alt } => {
                out.extend(seq.to_le_bytes());
                out.extend(lat.to_le_bytes());
                out.extend(lon.to_le_bytes());
                out.extend(alt.to_le_bytes());
            }
            Message::MissionAck { result } => out.push(*result),
            Message::CommandLong { command, params } => {
                out.extend(command.id().to_le_bytes());
                for p in params {
                    out.extend(p.to_le_bytes());
                }
            }
            Message::CommandAck { command, result } => {
                out.extend(command.id().to_le_bytes());
                out.push(result.to_u8());
            }
            Message::SetPositionTargetGlobalInt {
                lat,
                lon,
                alt,
                speed,
            } => {
                out.extend(lat.to_le_bytes());
                out.extend(lon.to_le_bytes());
                out.extend(alt.to_le_bytes());
                out.extend(speed.to_le_bytes());
            }
            Message::StatusText { severity, text } => {
                out.push(*severity);
                let bytes = text.as_bytes();
                let n = bytes.len().min(50);
                out.push(wire::len8(n));
                out.extend(&bytes[..n]);
            }
        }
        out
    }

    /// Deserializes a payload for `msg_id`.
    pub fn decode_payload(msg_id: u8, p: &[u8]) -> Result<Message, MavError> {
        let mut r = Reader { p, off: 0 };
        let msg = match msg_id {
            0 => Message::Heartbeat {
                mode: FlightMode::from_custom_mode(r.u32()?)?,
                armed: r.u8()? != 0,
                system_status: r.u8()?,
            },
            1 => Message::SysStatus {
                voltage_mv: r.u16()?,
                current_ca: r.i16()?,
                battery_remaining: wire::u8_bits(r.u8()?),
            },
            11 => Message::SetMode {
                mode: FlightMode::from_custom_mode(r.u32()?)?,
            },
            30 => Message::Attitude {
                time_boot_ms: r.u32()?,
                roll: r.f32()?,
                pitch: r.f32()?,
                yaw: r.f32()?,
            },
            33 => Message::GlobalPositionInt {
                time_boot_ms: r.u32()?,
                lat: r.i32()?,
                lon: r.i32()?,
                relative_alt: r.i32()?,
                vx: r.i16()?,
                vy: r.i16()?,
                vz: r.i16()?,
            },
            44 => Message::MissionCount { count: r.u16()? },
            47 => Message::MissionAck { result: r.u8()? },
            51 => Message::MissionRequestInt { seq: r.u16()? },
            73 => Message::MissionItemInt {
                seq: r.u16()?,
                lat: r.i32()?,
                lon: r.i32()?,
                alt: r.f32()?,
            },
            76 => {
                let command = MavCmd::from_id(r.u16()?)?;
                let mut params = [0f32; 7];
                for p in &mut params {
                    *p = r.f32()?;
                }
                Message::CommandLong { command, params }
            }
            77 => Message::CommandAck {
                command: MavCmd::from_id(r.u16()?)?,
                result: MavResult::from_u8(r.u8()?)?,
            },
            86 => Message::SetPositionTargetGlobalInt {
                lat: r.i32()?,
                lon: r.i32()?,
                alt: r.f32()?,
                speed: r.f32()?,
            },
            253 => {
                let severity = r.u8()?;
                let n = usize::from(r.u8()?);
                let bytes = r.take(n)?;
                Message::StatusText {
                    severity,
                    text: String::from_utf8_lossy(bytes).into_owned(),
                }
            }
            other => return Err(MavError::UnknownMessage(other)),
        };
        if r.off != p.len() {
            return Err(MavError::Malformed("trailing payload bytes".into()));
        }
        Ok(msg)
    }
}

struct Reader<'a> {
    p: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], MavError> {
        if self.off + n > self.p.len() {
            return Err(MavError::Malformed("payload too short".into()));
        }
        let s = &self.p[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, MavError> {
        Ok(self.take(1)?[0])
    }
    fn take2(&mut self) -> Result<[u8; 2], MavError> {
        let s = self.take(2)?;
        Ok([s[0], s[1]])
    }
    fn take4(&mut self) -> Result<[u8; 4], MavError> {
        let s = self.take(4)?;
        Ok([s[0], s[1], s[2], s[3]])
    }
    fn u16(&mut self) -> Result<u16, MavError> {
        Ok(u16::from_le_bytes(self.take2()?))
    }
    fn i16(&mut self) -> Result<i16, MavError> {
        Ok(i16::from_le_bytes(self.take2()?))
    }
    fn u32(&mut self) -> Result<u32, MavError> {
        Ok(u32::from_le_bytes(self.take4()?))
    }
    fn i32(&mut self) -> Result<i32, MavError> {
        Ok(i32::from_le_bytes(self.take4()?))
    }
    fn f32(&mut self) -> Result<f32, MavError> {
        Ok(f32::from_le_bytes(self.take4()?))
    }
}

/// Converts degrees to MAVLink's degE7 fixed point.
pub fn deg_to_e7(deg: f64) -> i32 {
    wire::e7_from_deg(deg)
}

/// Converts degE7 fixed point back to degrees.
pub fn e7_to_deg(e7: i32) -> f64 {
    f64::from(e7) / 1e7
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let payload = msg.encode_payload();
        let back = Message::decode_payload(msg.msg_id(), &payload).unwrap();
        assert_eq!(msg, back);
    }

    #[test]
    fn all_messages_round_trip() {
        round_trip(Message::Heartbeat {
            mode: FlightMode::Guided,
            armed: true,
            system_status: 4,
        });
        round_trip(Message::SysStatus {
            voltage_mv: 12_400,
            current_ca: 2_150,
            battery_remaining: 87,
        });
        round_trip(Message::SetMode {
            mode: FlightMode::Loiter,
        });
        round_trip(Message::Attitude {
            time_boot_ms: 123_456,
            roll: 0.1,
            pitch: -0.05,
            yaw: 1.2,
        });
        round_trip(Message::GlobalPositionInt {
            time_boot_ms: 99,
            lat: deg_to_e7(43.6084298),
            lon: deg_to_e7(-85.8110359),
            relative_alt: 15_000,
            vx: 120,
            vy: -80,
            vz: 0,
        });
        round_trip(Message::CommandLong {
            command: MavCmd::NavTakeoff,
            params: [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 15.0],
        });
        round_trip(Message::CommandAck {
            command: MavCmd::NavTakeoff,
            result: MavResult::Denied,
        });
        round_trip(Message::SetPositionTargetGlobalInt {
            lat: deg_to_e7(43.6),
            lon: deg_to_e7(-85.8),
            alt: 20.0,
            speed: 5.0,
        });
        round_trip(Message::StatusText {
            severity: 2,
            text: "geofence breach".into(),
        });
        round_trip(Message::MissionCount { count: 3 });
        round_trip(Message::MissionRequestInt { seq: 1 });
        round_trip(Message::MissionItemInt {
            seq: 2,
            lat: deg_to_e7(43.6),
            lon: deg_to_e7(-85.8),
            alt: 20.0,
        });
        round_trip(Message::MissionAck { result: 0 });
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let msg = Message::Attitude {
            time_boot_ms: 1,
            roll: 0.0,
            pitch: 0.0,
            yaw: 0.0,
        };
        let payload = msg.encode_payload();
        assert!(Message::decode_payload(30, &payload[..payload.len() - 1]).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let msg = Message::SetMode {
            mode: FlightMode::Auto,
        };
        let mut payload = msg.encode_payload();
        payload.push(0);
        assert!(Message::decode_payload(11, &payload).is_err());
    }

    #[test]
    fn status_text_truncates_at_50_bytes() {
        let long = "x".repeat(80);
        let msg = Message::StatusText {
            severity: 6,
            text: long,
        };
        let payload = msg.encode_payload();
        let back = Message::decode_payload(253, &payload).unwrap();
        match back {
            Message::StatusText { text, .. } => assert_eq!(text.len(), 50),
            _ => unreachable!(),
        }
    }

    #[test]
    fn deg_e7_round_trip() {
        let d = 43.6084298;
        assert!((e7_to_deg(deg_to_e7(d)) - d).abs() < 1e-7);
    }

    #[test]
    fn unknown_ids_error() {
        assert!(Message::decode_payload(200, &[]).is_err());
        assert!(MavCmd::from_id(9_999).is_err());
        assert!(FlightMode::from_custom_mode(42).is_err());
        assert!(Message::crc_extra(200).is_err());
    }
}
