//! X.25 / CRC-16/MCRF4XX checksum as used by MAVLink.

/// Initial CRC value.
pub const CRC_INIT: u16 = 0xFFFF;

/// Accumulates one byte into the CRC (the MAVLink `crc_accumulate`).
pub fn accumulate(crc: u16, byte: u8) -> u16 {
    let mut tmp = byte ^ crate::wire::lo8(crc);
    tmp ^= tmp << 4;
    let wide = u16::from(tmp);
    (crc >> 8) ^ (wide << 8) ^ (wide << 3) ^ (wide >> 4)
}

/// CRC over a byte slice starting from [`CRC_INIT`].
pub fn crc16(data: &[u8]) -> u16 {
    data.iter().fold(CRC_INIT, |crc, &b| accumulate(crc, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // CRC-16/MCRF4XX of "123456789" is 0x6F91.
        assert_eq!(crc16(b"123456789"), 0x6F91);
    }

    #[test]
    fn empty_is_init() {
        assert_eq!(crc16(&[]), CRC_INIT);
    }

    #[test]
    fn single_bit_changes_crc() {
        assert_ne!(crc16(b"\x00"), crc16(b"\x01"));
    }
}
