//! Simulated MAVLink connections.
//!
//! A [`channel`] produces two connected endpoints. Bytes sent from
//! one side arrive at the other after a delay sampled from the link
//! model (or never, if the packet is lost) — this is how the Section
//! 6.5 cellular-latency experiment drives real encoded MAVLink
//! traffic through the LTE model.

use std::cell::RefCell;
use std::rc::Rc;

use androne_simkern::{LinkModel, LinkState, SimTime};
use rand::Rng;

use crate::codec::{Frame, Parser};
use crate::message::Message;

/// Pending deliveries: `(delivery time, insertion order, bytes)`.
/// The insertion counter keeps same-instant deliveries FIFO.
#[derive(Default)]
struct InboxInner {
    next_seq: u64,
    items: Vec<(SimTime, u64, Vec<u8>)>,
}

type Inbox = Rc<RefCell<InboxInner>>;

/// One side of a simulated MAVLink link.
pub struct MavEndpoint {
    /// This endpoint's system id (stamped on outgoing frames).
    pub sysid: u8,
    /// This endpoint's component id.
    pub compid: u8,
    link: LinkModel,
    /// Gilbert–Elliott chain state for this direction (idle when the
    /// model has no burst parameters).
    link_state: LinkState,
    peer_inbox: Inbox,
    own_inbox: Inbox,
    parser: Parser,
    seq: u8,
    sent: u64,
    lost: u64,
}

/// Creates a connected endpoint pair over `link` (applied in both
/// directions independently).
pub fn channel(link: LinkModel, sysid_a: u8, sysid_b: u8) -> (MavEndpoint, MavEndpoint) {
    let inbox_a: Inbox = Rc::new(RefCell::new(InboxInner::default()));
    let inbox_b: Inbox = Rc::new(RefCell::new(InboxInner::default()));
    let a = MavEndpoint {
        sysid: sysid_a,
        compid: 1,
        link,
        link_state: LinkState::default(),
        peer_inbox: Rc::clone(&inbox_b),
        own_inbox: Rc::clone(&inbox_a),
        parser: Parser::new(),
        seq: 0,
        sent: 0,
        lost: 0,
    };
    let b = MavEndpoint {
        sysid: sysid_b,
        compid: 1,
        link,
        link_state: LinkState::default(),
        peer_inbox: inbox_a,
        own_inbox: inbox_b,
        parser: Parser::new(),
        seq: 0,
        sent: 0,
        lost: 0,
    };
    (a, b)
}

impl MavEndpoint {
    /// Sends a message at simulated time `now`. Returns the delivery
    /// time at the peer, or `None` if the packet was lost.
    pub fn send(&mut self, msg: Message, now: SimTime, rng: &mut impl Rng) -> Option<SimTime> {
        let frame = Frame {
            seq: self.seq,
            sysid: self.sysid,
            compid: self.compid,
            msg,
        };
        self.seq = self.seq.wrapping_add(1);
        self.sent += 1;
        match self.link.sample_with(&mut self.link_state, rng) {
            Some(delay) => {
                let at = now + delay;
                let mut inbox = self.peer_inbox.borrow_mut();
                let seq = inbox.next_seq;
                inbox.next_seq += 1;
                inbox.items.push((at, seq, frame.encode()));
                Some(at)
            }
            None => {
                self.lost += 1;
                None
            }
        }
    }

    /// Receives every frame whose delivery time has passed, in
    /// delivery order.
    pub fn recv(&mut self, now: SimTime) -> Vec<Frame> {
        let mut ready: Vec<(SimTime, u64, Vec<u8>)> = Vec::new();
        {
            let mut inbox = self.own_inbox.borrow_mut();
            let mut i = 0;
            while i < inbox.items.len() {
                if inbox.items[i].0 <= now {
                    ready.push(inbox.items.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        ready.sort_by_key(|(t, seq, _)| (*t, *seq));
        let mut frames = Vec::new();
        for (_, _, bytes) in ready {
            frames.extend(self.parser.push(&bytes));
        }
        frames
    }

    /// Packets sent from this endpoint.
    pub fn packets_sent(&self) -> u64 {
        self.sent
    }

    /// Packets lost in the link from this endpoint.
    pub fn packets_lost(&self) -> u64 {
        self.lost
    }

    /// Frames dropped by the parser (corruption).
    pub fn frames_dropped(&self) -> u64 {
        self.parser.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::FlightMode;
    use androne_simkern::SimDuration;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn hb() -> Message {
        Message::Heartbeat {
            mode: FlightMode::Guided,
            armed: false,
            system_status: 3,
        }
    }

    #[test]
    fn ideal_link_delivers_immediately() {
        let (mut a, mut b) = channel(LinkModel::IDEAL, 255, 1);
        let mut rng = SmallRng::seed_from_u64(1);
        let t = SimTime::from_nanos(1_000);
        a.send(hb(), t, &mut rng).unwrap();
        let frames = b.recv(t);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].sysid, 255);
    }

    #[test]
    fn delivery_respects_link_delay() {
        let (mut a, mut b) = channel(LinkModel::cellular_lte(), 255, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        let t0 = SimTime::ZERO;
        let at = a.send(hb(), t0, &mut rng).unwrap();
        assert!(at > t0 + SimDuration::from_millis(60), "LTE delay applies");
        assert!(b.recv(t0).is_empty(), "nothing before delivery time");
        assert_eq!(b.recv(at).len(), 1);
    }

    #[test]
    fn bidirectional_traffic_is_independent() {
        let (mut a, mut b) = channel(LinkModel::IDEAL, 255, 1);
        let mut rng = SmallRng::seed_from_u64(3);
        let t = SimTime::ZERO;
        a.send(hb(), t, &mut rng);
        b.send(hb(), t, &mut rng);
        assert_eq!(a.recv(t).len(), 1);
        assert_eq!(b.recv(t).len(), 1);
    }

    #[test]
    fn lost_packets_never_arrive() {
        let lossy = LinkModel {
            loss_prob: 1.0,
            ..LinkModel::IDEAL
        };
        let (mut a, mut b) = channel(lossy, 255, 1);
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(a.send(hb(), SimTime::ZERO, &mut rng).is_none());
        assert_eq!(a.packets_lost(), 1);
        assert!(b.recv(SimTime::from_nanos(u64::MAX / 2)).is_empty());
    }

    #[test]
    fn sequence_numbers_increment() {
        let (mut a, mut b) = channel(LinkModel::IDEAL, 255, 1);
        let mut rng = SmallRng::seed_from_u64(5);
        let t = SimTime::ZERO;
        for _ in 0..3 {
            a.send(hb(), t, &mut rng);
        }
        let frames = b.recv(t);
        let seqs: Vec<u8> = frames.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }
}
