//! # androne-mavlink
//!
//! MAVLink for the AnDrone reproduction: the protocol every flight
//! controller conversation in the paper runs over.
//!
//! - [`crc`]: the X.25 / CRC-16/MCRF4XX checksum.
//! - [`message`]: the common-dialect message subset AnDrone uses
//!   (heartbeats, commands, guided targets, telemetry, status text),
//!   with ArduPilot Copter flight-mode numbering.
//! - [`codec`]: MAVLink v1 framing with an incremental, resyncing
//!   parser.
//! - [`wire`]: audited narrowing helpers; the only place the wire
//!   path is allowed to truncate integers (dronelint R4).
//! - [`connection`]: simulated endpoint pairs over
//!   [`androne_simkern::LinkModel`]s (LTE, RF, Ethernet) for the
//!   Section 6.5 network experiments.

pub mod codec;
pub mod connection;
pub mod crc;
pub mod error;
pub mod message;
pub mod wire;

pub use codec::{Frame, Parser, STX};
pub use connection::{channel, MavEndpoint};
pub use error::MavError;
pub use message::{deg_to_e7, e7_to_deg, FlightMode, MavCmd, MavResult, Message};
