//! MAVLink error types.

use std::fmt;

/// Errors surfaced by the MAVLink codec and connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MavError {
    /// Unknown message id on the wire.
    UnknownMessage(u8),
    /// Unknown MAV_CMD id.
    UnknownCommand(u16),
    /// Unknown flight mode number.
    UnknownMode(u32),
    /// Frame or payload failed structural validation.
    Malformed(String),
    /// Frame shorter than its declared layout (attacker-controlled
    /// length fields are rejected, never used to index).
    Truncated {
        /// Bytes the declared layout requires.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// Checksum mismatch.
    BadChecksum {
        /// CRC computed from the frame contents.
        computed: u16,
        /// CRC carried in the frame.
        received: u16,
    },
}

impl fmt::Display for MavError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MavError::UnknownMessage(id) => write!(f, "unknown message id {id}"),
            MavError::UnknownCommand(id) => write!(f, "unknown MAV_CMD {id}"),
            MavError::UnknownMode(m) => write!(f, "unknown flight mode {m}"),
            MavError::Malformed(why) => write!(f, "malformed frame: {why}"),
            MavError::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, got {got}")
            }
            MavError::BadChecksum { computed, received } => {
                write!(f, "bad checksum: computed {computed:04x}, received {received:04x}")
            }
        }
    }
}

impl std::error::Error for MavError {}
