//! Audited narrowing helpers for the wire path.
//!
//! The codec and CRC modules are banned from bare `as` numeric casts
//! (dronelint R4): a silent truncation there corrupts frames built
//! from attacker-controlled lengths instead of rejecting them. The
//! few narrowings the wire format genuinely needs live here, where
//! each one states its invariant and masks explicitly.

/// Low byte of a `u16` (the CRC's little-endian first byte).
pub const fn lo8(v: u16) -> u8 {
    (v & 0x00FF) as u8
}

/// High byte of a `u16` (the CRC's little-endian second byte).
pub const fn hi8(v: u16) -> u8 {
    (v >> 8) as u8
}

/// Payload length byte for an encoder-produced payload.
///
/// Every encodable message has a payload well under 256 bytes (the
/// longest is STATUSTEXT at 51); the mask is a backstop, the
/// `debug_assert` catches a message definition ever outgrowing the
/// v1 frame format.
pub fn len8(len: usize) -> u8 {
    debug_assert!(len <= usize::from(u8::MAX), "payload too long for MAVLink v1");
    (len & 0xFF) as u8
}

/// Bit-reinterprets an `i8` as its wire byte (two's complement).
///
/// SYS_STATUS carries `battery_remaining` as a signed percentage
/// (-1 = unknown) in one payload byte.
pub const fn i8_bits(v: i8) -> u8 {
    v.to_le_bytes()[0]
}

/// Inverse of [`i8_bits`]: the wire byte back to the signed value.
pub const fn u8_bits(v: u8) -> i8 {
    i8::from_le_bytes(v.to_le_bytes())
}

/// Degrees to MAVLink's degE7 fixed point.
///
/// Float→int `as` saturates (and maps NaN to 0) since Rust 1.45 —
/// exactly the clamping the fixed-point format wants for a
/// coordinate that escaped the valid ±90/±180 range upstream.
pub fn e7_from_deg(deg: f64) -> i32 {
    (deg * 1e7).round() as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lo_hi_reassemble() {
        for v in [0u16, 1, 0x00FF, 0x0100, 0xABCD, 0xFFFF] {
            assert_eq!(u16::from(lo8(v)) | (u16::from(hi8(v)) << 8), v);
        }
    }

    #[test]
    fn len8_passes_valid_lengths() {
        assert_eq!(len8(0), 0);
        assert_eq!(len8(51), 51);
        assert_eq!(len8(255), 255);
    }
}
