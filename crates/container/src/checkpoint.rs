//! Checkpoint/restore container migration.
//!
//! **Extension beyond the paper.** AnDrone migrates virtual drones
//! through the Android activity lifecycle ("although checkpoint-based
//! migration is likely feasible for virtual drones [39, 44, 51],
//! AnDrone simply leverages the existing Android activity lifecycle",
//! Section 4.4). This module implements the checkpoint alternative —
//! a CRIU/Zap-style whole-container snapshot — so the trade-off is
//! explorable:
//!
//! - the lifecycle path needs app cooperation
//!   (`onSaveInstanceState()`) and ships only the image diff;
//! - the checkpoint path needs **no** app cooperation — tasks are
//!   frozen and respawned as they were — but ships the *entire*
//!   flattened filesystem, costing far more VDR storage and transfer
//!   over the drone's cellular uplink.

use androne_simkern::{ContainerId, Euid, Kernel, SchedPolicy};

use crate::container::{ContainerKind, ContainerState};
use crate::error::ContainerError;
use crate::image::{Image, Layer};
use crate::limits::ResourceLimits;
use crate::runtime::ContainerRuntime;

/// A frozen task, enough to respawn it on restore.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSnapshot {
    /// Command name.
    pub name: String,
    /// Effective UID.
    pub euid: Euid,
    /// Scheduling policy.
    pub policy: SchedPolicy,
}

/// A whole-container checkpoint.
#[derive(Debug, Clone)]
pub struct ContainerCheckpoint {
    /// Container name at checkpoint time.
    pub name: String,
    /// Architectural role.
    pub kind: ContainerKind,
    /// The complete flattened filesystem (self-contained: no base
    /// layers required at the restore site).
    pub fs: Layer,
    /// Frozen tasks.
    pub tasks: Vec<TaskSnapshot>,
}

impl ContainerCheckpoint {
    /// Bytes this checkpoint costs to store or transfer — the whole
    /// filesystem, vs just the diff for a lifecycle-based archive.
    pub fn stored_bytes(&self) -> u64 {
        self.fs.size()
    }
}

impl ContainerRuntime {
    /// Checkpoints a running container: freezes its task list and
    /// flattens its filesystem. The container keeps running (the
    /// checkpoint is a consistent copy, as CRIU takes one).
    pub fn checkpoint(
        &self,
        name: &str,
        kernel: &Kernel,
    ) -> Result<ContainerCheckpoint, ContainerError> {
        let container = self
            .get(name)
            .ok_or_else(|| ContainerError::UnknownContainer(name.to_string()))?;
        if container.state != ContainerState::Running {
            return Err(ContainerError::InvalidState {
                container: name.to_string(),
                state: container.state,
                op: "checkpoint",
            });
        }
        let mut full = Image::new();
        for layer in container.fs.image_layers() {
            full.push_layer(layer.clone());
        }
        full.push_layer(std::sync::Arc::new(container.fs.diff().clone()));
        let tasks = kernel
            .tasks
            .in_container(container.id)
            .map(|t| TaskSnapshot {
                name: t.name.clone(),
                euid: t.euid,
                policy: t.policy,
            })
            .collect();
        Ok(ContainerCheckpoint {
            name: name.to_string(),
            kind: container.kind,
            fs: full.flatten(),
            tasks,
        })
    }

    /// Restores a checkpoint: recreates the container with the
    /// snapshotted filesystem and respawns every frozen task. No app
    /// cooperation is involved. (Uses the runtime's own kernel
    /// handle; callers must not hold its lock.)
    pub fn restore(
        &mut self,
        checkpoint: &ContainerCheckpoint,
        limits: ResourceLimits,
    ) -> Result<ContainerId, ContainerError> {
        if self.get(&checkpoint.name).is_some() {
            return Err(ContainerError::DuplicateName(checkpoint.name.clone()));
        }
        // Register the flattened fs as this container's (single)
        // base layer and create/start through the normal lifecycle
        // so memory charging and namespaces behave identically.
        let layer_id = self.images_mut().put_layer(checkpoint.fs.clone());
        let tag = format!("checkpoint/{}", checkpoint.name);
        self.images_mut().tag(tag.clone(), vec![layer_id])?;
        let id = self.create(checkpoint.name.clone(), checkpoint.kind, &tag, limits)?;
        self.start(&checkpoint.name)?;
        // The start spawned a fresh init; respawn the frozen tasks
        // beside it (init is in the snapshot too, so skip one).
        let kernel = self.kernel().clone();
        let mut k = kernel.borrow_mut();
        let mut skipped_init = false;
        for task in &checkpoint.tasks {
            if !skipped_init && task.name.ends_with("/init") {
                skipped_init = true;
                continue;
            }
            k.tasks
                .spawn(task.name.clone(), task.euid, id, task.policy)
                .map_err(ContainerError::Kernel)?;
        }
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use androne_simkern::KernelConfig;

    fn runtime_with_vd() -> (ContainerRuntime, androne_simkern::SharedKernel) {
        let kernel = Kernel::boot_shared(KernelConfig::ANDRONE_DEFAULT, 1);
        let mut rt = ContainerRuntime::new(kernel.clone()).unwrap();
        let base = Layer::from_files([("/system/build.prop", "android-things")]);
        let id = rt.images_mut().put_layer(base);
        rt.images_mut().tag("android-things", vec![id]).unwrap();
        rt.create(
            "vd1",
            ContainerKind::VirtualDrone,
            "android-things",
            ResourceLimits::UNLIMITED,
        )
        .unwrap();
        rt.start("vd1").unwrap();
        (rt, kernel)
    }

    #[test]
    fn checkpoint_restore_round_trips_fs_and_tasks() {
        let (mut rt, kernel) = runtime_with_vd();
        rt.spawn_task("vd1", "uncooperative-app", Euid(10_001), SchedPolicy::DEFAULT)
            .unwrap();
        rt.get_mut("vd1")
            .unwrap()
            .fs
            .write("/data/app-state.bin", "opaque-in-memory-state");

        let checkpoint = {
            let k = kernel.borrow();
            rt.checkpoint("vd1", &k).unwrap()
        };
        assert_eq!(checkpoint.tasks.len(), 2, "init + app frozen");

        // Restore on a fresh board.
        let kernel2 = Kernel::boot_shared(KernelConfig::ANDRONE_DEFAULT, 2);
        let mut rt2 = ContainerRuntime::new(kernel2.clone()).unwrap();
        let id = rt2
            .restore(&checkpoint, ResourceLimits::UNLIMITED)
            .unwrap();
        // Filesystem intact, including the base image contents (the
        // checkpoint is self-contained).
        let restored = rt2.get("vd1").unwrap();
        assert_eq!(
            restored.fs.read("/data/app-state.bin").unwrap(),
            bytes::Bytes::from("opaque-in-memory-state")
        );
        assert_eq!(
            restored.fs.read("/system/build.prop").unwrap(),
            bytes::Bytes::from("android-things")
        );
        // The uncooperative app is running again without having saved
        // anything itself.
        let k = kernel2.borrow();
        assert!(k
            .tasks
            .in_container(id)
            .any(|t| t.name == "uncooperative-app"));
    }

    #[test]
    fn checkpoint_costs_more_than_a_lifecycle_archive() {
        let (mut rt, kernel) = runtime_with_vd();
        rt.get_mut("vd1").unwrap().fs.write("/data/x", "tiny-diff");
        let checkpoint = {
            let k = kernel.borrow();
            rt.checkpoint("vd1", &k).unwrap()
        };
        let archive = rt.export("vd1").unwrap();
        assert!(
            checkpoint.stored_bytes() > archive.stored_bytes(),
            "checkpoint {} B vs archive {} B",
            checkpoint.stored_bytes(),
            archive.stored_bytes()
        );
    }

    #[test]
    fn stopped_containers_cannot_be_checkpointed() {
        let (mut rt, kernel) = runtime_with_vd();
        rt.stop("vd1").unwrap();
        let k = kernel.borrow();
        assert!(matches!(
            rt.checkpoint("vd1", &k),
            Err(ContainerError::InvalidState { .. })
        ));
    }

    #[test]
    fn restore_refuses_name_collisions() {
        let (mut rt, kernel) = runtime_with_vd();
        let checkpoint = {
            let k = kernel.borrow();
            rt.checkpoint("vd1", &k).unwrap()
        };
        drop(kernel);
        assert!(matches!(
            rt.restore(&checkpoint, ResourceLimits::UNLIMITED),
            Err(ContainerError::DuplicateName(_))
        ));
    }
}
