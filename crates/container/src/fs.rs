//! Per-container union filesystem.
//!
//! A running container sees its image's read-only layers with a
//! private writable layer on top (overlayfs semantics). `diff()`
//! extracts exactly the writable layer, which is what the VDC ships to
//! the VDR when a virtual drone is saved for a later flight.

use bytes::Bytes;

use crate::image::{FileChange, Image, Layer};

/// A container's mutable filesystem view.
#[derive(Debug, Clone)]
pub struct ContainerFs {
    image: Image,
    upper: Layer,
}

impl ContainerFs {
    /// Mounts a filesystem over an image with an empty writable layer.
    pub fn mount(image: Image) -> Self {
        ContainerFs {
            image,
            upper: Layer::new(),
        }
    }

    /// Mounts with a pre-existing writable layer (resuming a stored
    /// virtual drone).
    pub fn mount_with_upper(image: Image, upper: Layer) -> Self {
        ContainerFs { image, upper }
    }

    /// Reads a file through the union view.
    pub fn read(&self, path: &str) -> Option<Bytes> {
        match self.upper.get(path) {
            Some(FileChange::Write(b)) => Some(b.clone()),
            Some(FileChange::Whiteout) => None,
            None => self.image.resolve(path),
        }
    }

    /// Writes a file into the writable layer.
    pub fn write(&mut self, path: impl Into<String>, contents: impl Into<Bytes>) {
        self.upper.write(path, contents);
    }

    /// Deletes a file (whiteout in the writable layer).
    pub fn delete(&mut self, path: impl Into<String>) {
        self.upper.whiteout(path);
    }

    /// Returns `true` if the path is visible.
    pub fn exists(&self, path: &str) -> bool {
        self.read(path).is_some()
    }

    /// Lists visible paths, lower layers included.
    pub fn paths(&self) -> Vec<String> {
        let mut full = self.image.clone();
        full.push_layer(std::sync::Arc::new(self.upper.clone()));
        full.paths()
    }

    /// The writable layer: everything this container changed.
    pub fn diff(&self) -> &Layer {
        &self.upper
    }

    /// The read-only image layers below the writable layer.
    pub fn image_layers(&self) -> &[std::sync::Arc<Layer>] {
        self.image.layers()
    }

    /// Consumes the filesystem, returning `(image, writable layer)`.
    pub fn into_parts(self) -> (Image, Layer) {
        (self.image, self.upper)
    }

    /// Bytes of container-private storage (the writable layer only).
    pub fn private_bytes(&self) -> u64 {
        self.upper.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Layer;

    fn fs() -> ContainerFs {
        let base = Layer::from_files([("/system/build.prop", "android-things-1.0.3")]);
        ContainerFs::mount(Image::from_base(base))
    }

    #[test]
    fn reads_fall_through_to_image() {
        let fs = fs();
        assert_eq!(
            fs.read("/system/build.prop").unwrap(),
            Bytes::from("android-things-1.0.3")
        );
    }

    #[test]
    fn writes_shadow_the_image() {
        let mut fs = fs();
        fs.write("/system/build.prop", "modified");
        assert_eq!(fs.read("/system/build.prop").unwrap(), Bytes::from("modified"));
        assert_eq!(fs.diff().len(), 1, "only the write lands in the diff");
    }

    #[test]
    fn delete_whiteouts_image_files() {
        let mut fs = fs();
        fs.delete("/system/build.prop");
        assert!(!fs.exists("/system/build.prop"));
    }

    #[test]
    fn diff_round_trips_through_remount() {
        let mut fs = fs();
        fs.write("/data/state.json", "{\"wp\":2}");
        fs.delete("/system/build.prop");
        let (image, upper) = fs.into_parts();
        let resumed = ContainerFs::mount_with_upper(image, upper);
        assert_eq!(resumed.read("/data/state.json").unwrap(), Bytes::from("{\"wp\":2}"));
        assert!(!resumed.exists("/system/build.prop"));
    }

    #[test]
    fn private_bytes_counts_only_upper() {
        let mut fs = fs();
        assert_eq!(fs.private_bytes(), 0);
        fs.write("/data/a", "12345");
        assert_eq!(fs.private_bytes(), 5);
    }
}
