//! Per-container VPN tunnels.
//!
//! Remote access to containers is tunnelled over a per-container VPN
//! (paper Section 4), so potentially insecure protocols — MAVLink was
//! never designed for the open Internet — can be used safely over
//! cellular. Each tunnel binds one container to one remote peer and
//! models the underlying link.

use androne_simkern::{ContainerId, LinkModel, LinkState, SimDuration};
use rand::Rng;

/// Delivery outcome for a packet through a tunnel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Delivery {
    /// Delivered after the given one-way delay.
    Delivered(SimDuration),
    /// Lost in transit.
    Lost,
}

/// A per-container encrypted tunnel over some physical link.
#[derive(Debug, Clone)]
pub struct VpnTunnel {
    /// The container this tunnel serves.
    pub container: ContainerId,
    /// Remote peer label (e.g. a portal session id).
    pub peer: String,
    link: LinkModel,
    /// Gilbert–Elliott chain state for this tunnel's direction.
    link_state: LinkState,
    /// Fixed per-packet encryption/encapsulation cost.
    overhead: SimDuration,
    packets_sent: u64,
    packets_lost: u64,
}

impl VpnTunnel {
    /// Opens a tunnel for `container` to `peer` over `link`.
    pub fn open(container: ContainerId, peer: impl Into<String>, link: LinkModel) -> Self {
        VpnTunnel {
            container,
            peer: peer.into(),
            link,
            link_state: LinkState::default(),
            // AES + tunnel encapsulation on a Cortex-A53: ~80 us per
            // small packet, negligible next to cellular RTTs.
            overhead: SimDuration::from_micros(80),
            packets_sent: 0,
            packets_lost: 0,
        }
    }

    /// Sends one packet, returning its delivery outcome.
    pub fn send(&mut self, rng: &mut impl Rng) -> Delivery {
        self.packets_sent += 1;
        match self.link.sample_with(&mut self.link_state, rng) {
            Some(delay) => Delivery::Delivered(delay + self.overhead),
            None => {
                self.packets_lost += 1;
                Delivery::Lost
            }
        }
    }

    /// Packets sent through this tunnel.
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }

    /// Packets lost in transit.
    pub fn packets_lost(&self) -> u64 {
        self.packets_lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn tunnel_adds_encapsulation_overhead() {
        let mut t = VpnTunnel::open(ContainerId(3), "portal", LinkModel::IDEAL);
        let mut rng = SmallRng::seed_from_u64(1);
        match t.send(&mut rng) {
            Delivery::Delivered(d) => assert_eq!(d.as_micros(), 80),
            Delivery::Lost => panic!("ideal link cannot lose"),
        }
    }

    #[test]
    fn loss_is_counted() {
        let lossy = LinkModel {
            loss_prob: 1.0,
            ..LinkModel::IDEAL
        };
        let mut t = VpnTunnel::open(ContainerId(3), "portal", lossy);
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(t.send(&mut rng), Delivery::Lost);
        assert_eq!(t.packets_lost(), 1);
        assert_eq!(t.packets_sent(), 1);
    }
}
