//! Container runtime error types.

use std::fmt;

use androne_simkern::KernelError;

use crate::container::ContainerState;
use crate::image::LayerId;

/// Errors surfaced by the container substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// Referenced layer is not in the store.
    UnknownLayer(LayerId),
    /// Referenced image tag is not in the store.
    UnknownImage(String),
    /// Referenced container does not exist.
    UnknownContainer(String),
    /// Operation invalid in the container's current state.
    InvalidState {
        /// The container involved.
        container: String,
        /// Its state at the time of the call.
        state: ContainerState,
        /// The operation attempted.
        op: &'static str,
    },
    /// A container with this name already exists.
    DuplicateName(String),
    /// The underlying kernel rejected the operation (e.g. OOM).
    Kernel(KernelError),
    /// A resource limit was exceeded.
    LimitExceeded(String),
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::UnknownLayer(id) => write!(f, "unknown layer {id}"),
            ContainerError::UnknownImage(name) => write!(f, "unknown image '{name}'"),
            ContainerError::UnknownContainer(name) => write!(f, "unknown container '{name}'"),
            ContainerError::InvalidState {
                container,
                state,
                op,
            } => write!(f, "container '{container}' is {state:?}; cannot {op}"),
            ContainerError::DuplicateName(name) => {
                write!(f, "container name '{name}' already in use")
            }
            ContainerError::Kernel(e) => write!(f, "kernel error: {e}"),
            ContainerError::LimitExceeded(what) => write!(f, "resource limit exceeded: {what}"),
        }
    }
}

impl std::error::Error for ContainerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ContainerError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KernelError> for ContainerError {
    fn from(e: KernelError) -> Self {
        ContainerError::Kernel(e)
    }
}
