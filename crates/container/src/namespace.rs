//! Kernel namespaces attached to a container.
//!
//! Besides the standard Linux namespaces, AnDrone relies on *device
//! namespaces* (from Cells, extended by the paper) to give each
//! virtual drone its own Binder Context Manager. The device namespace
//! id is the key the Binder driver uses to isolate per-container
//! ServiceManagers.

use std::fmt;

/// A device namespace identifier.
///
/// The host/init device namespace is id 0; the device container gets
/// its own namespace like any container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceNamespaceId(pub u32);

impl DeviceNamespaceId {
    /// The root (host) device namespace.
    pub const ROOT: DeviceNamespaceId = DeviceNamespaceId(0);
}

impl fmt::Display for DeviceNamespaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "devns:{}", self.0)
    }
}

/// The set of namespaces a container runs in.
///
/// PID/net/IPC namespaces are modelled as opaque ids: their isolation
/// effect in this simulation is entirely captured by tagging tasks and
/// sockets with the owning container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NamespaceSet {
    /// PID namespace id.
    pub pid_ns: u32,
    /// Network namespace id.
    pub net_ns: u32,
    /// IPC namespace id.
    pub ipc_ns: u32,
    /// Device namespace id (Binder Context Manager isolation).
    pub device_ns: DeviceNamespaceId,
}

impl NamespaceSet {
    /// The host's namespace set.
    pub const HOST: NamespaceSet = NamespaceSet {
        pid_ns: 0,
        net_ns: 0,
        ipc_ns: 0,
        device_ns: DeviceNamespaceId::ROOT,
    };

    /// Creates a fully private namespace set with the given id used
    /// for every namespace type.
    pub fn private(id: u32) -> Self {
        NamespaceSet {
            pid_ns: id,
            net_ns: id,
            ipc_ns: id,
            device_ns: DeviceNamespaceId(id),
        }
    }

    /// Whether two namespace sets share a device namespace.
    pub fn shares_device_ns(&self, other: &NamespaceSet) -> bool {
        self.device_ns == other.device_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_namespaces_do_not_collide() {
        let a = NamespaceSet::private(1);
        let b = NamespaceSet::private(2);
        assert!(!a.shares_device_ns(&b));
        assert!(a.shares_device_ns(&a));
        assert_ne!(a.pid_ns, b.pid_ns);
    }

    #[test]
    fn host_uses_root_device_namespace() {
        assert_eq!(NamespaceSet::HOST.device_ns, DeviceNamespaceId::ROOT);
    }
}
