//! The container object and its lifecycle.

use androne_simkern::ContainerId;

use crate::fs::ContainerFs;
use crate::limits::ResourceLimits;
use crate::namespace::NamespaceSet;

/// What role a container plays in the AnDrone architecture (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContainerKind {
    /// A third party's Android Things virtual drone.
    VirtualDrone,
    /// The device container: minimal Android instance owning all
    /// hardware and running the shared device services.
    Device,
    /// The flight container: real-time Linux running the flight
    /// controller and MAVProxy.
    Flight,
}

impl ContainerKind {
    /// Default boot memory footprint in bytes.
    ///
    /// Calibrated to Figure 12: the device + flight containers
    /// together add ~150 MB over the base system, and each Android
    /// Things virtual drone idling on its launcher needs ~185 MB.
    pub fn boot_memory(self) -> u64 {
        use androne_simkern::MIB;
        match self {
            ContainerKind::VirtualDrone => 185 * MIB,
            ContainerKind::Device => 110 * MIB,
            ContainerKind::Flight => 40 * MIB,
        }
    }
}

/// Lifecycle state of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerState {
    /// Created but not started; filesystem mounted, no tasks.
    Created,
    /// Running.
    Running,
    /// Stopped; filesystem retained for commit/export.
    Stopped,
}

/// A container instance.
#[derive(Debug)]
pub struct Container {
    /// Kernel-visible container id (tags tasks and Binder callers).
    pub id: ContainerId,
    /// Unique human-readable name.
    pub name: String,
    /// Architectural role.
    pub kind: ContainerKind,
    /// Lifecycle state.
    pub state: ContainerState,
    /// Union filesystem.
    pub fs: ContainerFs,
    /// Namespace set.
    pub namespaces: NamespaceSet,
    /// Resource caps.
    pub limits: ResourceLimits,
    /// Bytes of RAM charged to this container while running.
    pub resident_bytes: u64,
}

impl Container {
    /// Memory-ledger owner key for this container.
    pub fn mem_owner(&self) -> String {
        format!("container/{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use androne_simkern::MIB;

    #[test]
    fn boot_memory_matches_figure_12() {
        // Device + flight together ~150 MB; each virtual drone ~185 MB.
        let dev_flight =
            ContainerKind::Device.boot_memory() + ContainerKind::Flight.boot_memory();
        assert_eq!(dev_flight, 150 * MIB);
        assert_eq!(ContainerKind::VirtualDrone.boot_memory(), 185 * MIB);
    }
}
