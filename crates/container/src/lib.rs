//! # androne-container
//!
//! Docker-like container substrate for the AnDrone reproduction.
//!
//! AnDrone containerizes every Linux instance on the drone (paper
//! Section 4): Android Things virtual drones, the minimal-Android
//! device container, and the real-time Linux flight container. This
//! crate provides the runtime those containers run on:
//!
//! - [`image`]: content-addressed, deduplicating layered images —
//!   virtual drones cost only their diff from a shared base.
//! - [`fs`]: the per-container union filesystem with a writable upper
//!   layer (overlayfs semantics).
//! - [`namespace`]: namespace sets including the *device namespace*
//!   the Binder driver keys its per-container Context Managers on.
//! - [`limits`]: Docker-style resource caps.
//! - [`runtime`]: create/start/stop/commit/export lifecycle with
//!   atomic memory charging against the simulated kernel.
//! - [`vpn`]: per-container VPN tunnels for secure remote access.
//! - [`checkpoint`]: CRIU-style whole-container checkpoint/restore —
//!   the migration alternative the paper cites but does not build.

pub mod checkpoint;
pub mod container;
pub mod error;
pub mod fs;
pub mod image;
pub mod limits;
pub mod namespace;
pub mod runtime;
pub mod vpn;

pub use checkpoint::{ContainerCheckpoint, TaskSnapshot};
pub use container::{Container, ContainerKind, ContainerState};
pub use error::ContainerError;
pub use fs::ContainerFs;
pub use image::{FileChange, Image, ImageStore, Layer, LayerId};
pub use limits::ResourceLimits;
pub use namespace::{DeviceNamespaceId, NamespaceSet};
pub use runtime::{ContainerArchive, ContainerRuntime, HOST_BASE_MEMORY};
pub use vpn::{Delivery, VpnTunnel};
