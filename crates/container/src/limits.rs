//! Per-container resource limits (Docker-style cgroup controls).
//!
//! The paper notes that Docker "enables AnDrone to prevent abuse and
//! excessive consumption of resources" by letting it cap what each
//! virtual drone can use, even though the evaluation runs with
//! resource controls disabled (Figures 10–11). Both configurations are
//! supported here.

/// Resource caps applied to one container.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceLimits {
    /// Maximum resident memory in bytes, if capped.
    pub memory_bytes: Option<u64>,
    /// CPU cap in cores (e.g. `Some(1.5)` = at most 1.5 cores).
    pub cpu_cores: Option<f64>,
    /// Relative block-I/O weight in `10..=1000` (cgroup blkio).
    pub blkio_weight: u32,
}

impl Default for ResourceLimits {
    fn default() -> Self {
        ResourceLimits::UNLIMITED
    }
}

impl ResourceLimits {
    /// No caps: the evaluation configuration.
    pub const UNLIMITED: ResourceLimits = ResourceLimits {
        memory_bytes: None,
        cpu_cores: None,
        blkio_weight: 500,
    };

    /// Clamps a requested memory allocation to the cap, returning
    /// `true` if the total would stay within limits.
    pub fn permits_memory(&self, current: u64, requested: u64) -> bool {
        match self.memory_bytes {
            Some(cap) => current.saturating_add(requested) <= cap,
            None => true,
        }
    }

    /// Clamps a CPU demand (in cores) to the cap.
    pub fn clamp_cpu(&self, demand: f64) -> f64 {
        match self.cpu_cores {
            Some(cap) => demand.min(cap),
            None => demand,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_permits_everything() {
        let l = ResourceLimits::UNLIMITED;
        assert!(l.permits_memory(u64::MAX - 1, 1));
        assert_eq!(l.clamp_cpu(64.0), 64.0);
    }

    #[test]
    fn memory_cap_enforced() {
        let l = ResourceLimits {
            memory_bytes: Some(100),
            ..ResourceLimits::UNLIMITED
        };
        assert!(l.permits_memory(60, 40));
        assert!(!l.permits_memory(61, 40));
    }

    #[test]
    fn cpu_cap_clamps_demand() {
        let l = ResourceLimits {
            cpu_cores: Some(1.5),
            ..ResourceLimits::UNLIMITED
        };
        assert_eq!(l.clamp_cpu(4.0), 1.5);
        assert_eq!(l.clamp_cpu(1.0), 1.0);
    }
}
