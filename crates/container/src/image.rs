//! Layered container images.
//!
//! Virtual drone containers are managed Docker-style (paper Section
//! 4.1): each consists of common *read-only base layers* shared across
//! virtual drones plus a private *writable layer* on top. A stored
//! virtual drone therefore costs only its diff from the base image,
//! which is what makes keeping many virtual drones in the cloud-side
//! VDR cheap.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;

use crate::error::ContainerError;

/// A content-derived layer identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LayerId(pub u64);

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "layer:{:016x}", self.0)
    }
}

/// One change a layer applies to a path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileChange {
    /// The path exists with these contents.
    Write(Bytes),
    /// The path is deleted (an overlayfs-style whiteout).
    Whiteout,
}

impl FileChange {
    /// Bytes this change contributes to layer size.
    pub fn size(&self) -> u64 {
        match self {
            FileChange::Write(b) => b.len() as u64,
            FileChange::Whiteout => 0,
        }
    }
}

/// An immutable filesystem layer: a map from path to change.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Layer {
    changes: BTreeMap<String, FileChange>,
}

impl Layer {
    /// Creates an empty layer.
    pub fn new() -> Self {
        Layer::default()
    }

    /// Builds a layer from `(path, contents)` pairs.
    pub fn from_files<I, P, B>(files: I) -> Self
    where
        I: IntoIterator<Item = (P, B)>,
        P: Into<String>,
        B: Into<Bytes>,
    {
        let mut layer = Layer::new();
        for (p, b) in files {
            layer.write(p, b);
        }
        layer
    }

    /// Records a file write.
    pub fn write(&mut self, path: impl Into<String>, contents: impl Into<Bytes>) {
        self.changes
            .insert(path.into(), FileChange::Write(contents.into()));
    }

    /// Records a deletion (whiteout).
    pub fn whiteout(&mut self, path: impl Into<String>) {
        self.changes.insert(path.into(), FileChange::Whiteout);
    }

    /// Looks up the change for a path, if any.
    pub fn get(&self, path: &str) -> Option<&FileChange> {
        self.changes.get(path)
    }

    /// Iterates over all changes.
    pub fn changes(&self) -> impl Iterator<Item = (&str, &FileChange)> {
        self.changes.iter().map(|(p, c)| (p.as_str(), c))
    }

    /// Number of changed paths.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Whether the layer changes nothing.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Total payload size in bytes.
    pub fn size(&self) -> u64 {
        self.changes.values().map(FileChange::size).sum()
    }

    /// Content-derived identifier (FNV-1a over paths and contents).
    ///
    /// Identical layer contents always hash identically, which is what
    /// lets the [`ImageStore`] deduplicate shared base layers.
    pub fn id(&self) -> LayerId {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x1000_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        for (path, change) in &self.changes {
            eat(path.as_bytes());
            match change {
                FileChange::Write(b) => {
                    eat(&[1]);
                    eat(b);
                }
                FileChange::Whiteout => eat(&[0]),
            }
        }
        LayerId(h)
    }
}

/// An ordered stack of layers, bottom first.
#[derive(Debug, Clone, Default)]
pub struct Image {
    layers: Vec<Arc<Layer>>,
}

impl Image {
    /// Creates an empty image.
    pub fn new() -> Self {
        Image::default()
    }

    /// Creates an image from a single base layer.
    pub fn from_base(base: Layer) -> Self {
        Image {
            layers: vec![Arc::new(base)],
        }
    }

    /// Appends a layer on top.
    pub fn push_layer(&mut self, layer: Arc<Layer>) {
        self.layers.push(layer);
    }

    /// The layer stack, bottom first.
    pub fn layers(&self) -> &[Arc<Layer>] {
        &self.layers
    }

    /// Resolves the effective contents of `path` through the stack.
    pub fn resolve(&self, path: &str) -> Option<Bytes> {
        for layer in self.layers.iter().rev() {
            match layer.get(path) {
                Some(FileChange::Write(b)) => return Some(b.clone()),
                Some(FileChange::Whiteout) => return None,
                None => continue,
            }
        }
        None
    }

    /// Lists every visible path in the flattened view.
    pub fn paths(&self) -> Vec<String> {
        let mut seen: BTreeMap<&str, bool> = BTreeMap::new();
        for layer in self.layers.iter().rev() {
            for (path, change) in layer.changes() {
                seen.entry(path)
                    .or_insert(matches!(change, FileChange::Write(_)));
            }
        }
        seen.into_iter()
            .filter(|(_, visible)| *visible)
            .map(|(p, _)| p.to_string())
            .collect()
    }

    /// Flattens the stack into a single layer (used when exporting a
    /// self-contained virtual drone definition).
    pub fn flatten(&self) -> Layer {
        let mut flat = Layer::new();
        for path in self.paths() {
            if let Some(contents) = self.resolve(&path) {
                flat.write(path, contents);
            }
        }
        flat
    }
}

/// A deduplicating store of layers, with named image tags.
///
/// Stored size counts each distinct layer once, no matter how many
/// images reference it — the property the paper relies on for cheap
/// virtual drone storage.
#[derive(Debug, Default)]
pub struct ImageStore {
    layers: BTreeMap<LayerId, Arc<Layer>>,
    tags: BTreeMap<String, Vec<LayerId>>,
}

impl ImageStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ImageStore::default()
    }

    /// Inserts a layer (deduplicated by content id) and returns its id.
    pub fn put_layer(&mut self, layer: Layer) -> LayerId {
        let id = layer.id();
        self.layers.entry(id).or_insert_with(|| Arc::new(layer));
        id
    }

    /// Tags an ordered stack of stored layers as a named image.
    pub fn tag(&mut self, name: impl Into<String>, stack: Vec<LayerId>) -> Result<(), ContainerError> {
        for id in &stack {
            if !self.layers.contains_key(id) {
                return Err(ContainerError::UnknownLayer(*id));
            }
        }
        self.tags.insert(name.into(), stack);
        Ok(())
    }

    /// Materializes a tagged image.
    pub fn image(&self, name: &str) -> Result<Image, ContainerError> {
        let stack = self
            .tags
            .get(name)
            .ok_or_else(|| ContainerError::UnknownImage(name.to_string()))?;
        let mut image = Image::new();
        for id in stack {
            let layer = self
                .layers
                .get(id)
                .ok_or(ContainerError::UnknownLayer(*id))?;
            image.push_layer(Arc::clone(layer));
        }
        Ok(image)
    }

    /// Looks up a stored layer by id (used to reconstruct an
    /// archive's base stack from locally present shared layers).
    pub fn image_for_layer(&self, id: LayerId) -> Result<Arc<Layer>, ContainerError> {
        self.layers
            .get(&id)
            .cloned()
            .ok_or(ContainerError::UnknownLayer(id))
    }

    /// Total stored bytes (each distinct layer counted once).
    pub fn stored_bytes(&self) -> u64 {
        self.layers.values().map(|l| l.size()).sum()
    }

    /// Number of distinct layers held.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Names of all tagged images.
    pub fn tags(&self) -> impl Iterator<Item = &str> {
        self.tags.keys().map(String::as_str)
    }

    /// Removes a tag (the layers stay until [`ImageStore::gc`]).
    pub fn untag(&mut self, name: &str) -> bool {
        self.tags.remove(name).is_some()
    }

    /// Garbage-collects layers unreachable from any tag, returning
    /// the bytes reclaimed. Virtual drone churn (deploy → save →
    /// remove) would otherwise leak committed diff layers on the
    /// storage-constrained microSD card.
    pub fn gc(&mut self) -> u64 {
        let live: std::collections::BTreeSet<LayerId> =
            self.tags.values().flatten().copied().collect();
        let before = self.stored_bytes();
        self.layers.retain(|id, _| live.contains(id));
        before - self.stored_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Layer {
        Layer::from_files([
            ("/system/framework.jar", "framework-code"),
            ("/system/app/launcher.apk", "launcher"),
            ("/etc/init.rc", "services"),
        ])
    }

    #[test]
    fn resolve_respects_layer_order() {
        let mut img = Image::from_base(base());
        let mut top = Layer::new();
        top.write("/etc/init.rc", "patched");
        img.push_layer(Arc::new(top));
        assert_eq!(img.resolve("/etc/init.rc").unwrap(), Bytes::from("patched"));
        assert_eq!(
            img.resolve("/system/app/launcher.apk").unwrap(),
            Bytes::from("launcher")
        );
    }

    #[test]
    fn whiteout_hides_lower_layers() {
        let mut img = Image::from_base(base());
        let mut top = Layer::new();
        top.whiteout("/system/app/launcher.apk");
        img.push_layer(Arc::new(top));
        assert_eq!(img.resolve("/system/app/launcher.apk"), None);
        assert!(!img
            .paths()
            .contains(&"/system/app/launcher.apk".to_string()));
    }

    #[test]
    fn flatten_equals_resolved_view() {
        let mut img = Image::from_base(base());
        let mut top = Layer::new();
        top.write("/data/app/survey.apk", "survey");
        top.whiteout("/etc/init.rc");
        img.push_layer(Arc::new(top));
        let flat = img.flatten();
        for path in img.paths() {
            assert_eq!(
                Some(img.resolve(&path).unwrap()),
                flat.get(&path).and_then(|c| match c {
                    FileChange::Write(b) => Some(b.clone()),
                    FileChange::Whiteout => None,
                })
            );
        }
        assert!(flat.get("/etc/init.rc").is_none());
    }

    #[test]
    fn layer_ids_are_content_addressed() {
        assert_eq!(base().id(), base().id());
        let mut other = base();
        other.write("/x", "y");
        assert_ne!(base().id(), other.id());
    }

    #[test]
    fn store_deduplicates_shared_base_layers() {
        let mut store = ImageStore::new();
        let base_id = store.put_layer(base());
        let base_size = base().size();

        // Three virtual drones share the base; each adds a small diff.
        let mut total_diffs = 0;
        for i in 0..3 {
            let mut diff = Layer::new();
            diff.write(format!("/data/vd{i}"), "state");
            total_diffs += diff.size();
            let diff_id = store.put_layer(diff);
            store.tag(format!("vdrone-{i}"), vec![base_id, diff_id]).unwrap();
        }
        assert_eq!(store.stored_bytes(), base_size + total_diffs);
        assert_eq!(store.layer_count(), 4);
    }

    #[test]
    fn gc_reclaims_untagged_layers_only() {
        let mut store = ImageStore::new();
        let base_id = store.put_layer(base());
        let mut diff = Layer::new();
        diff.write("/data/tmp", "scratch-bytes");
        let diff_id = store.put_layer(diff.clone());
        store.tag("vd", vec![base_id, diff_id]).unwrap();

        assert_eq!(store.gc(), 0, "everything reachable");

        store.untag("vd");
        store.tag("base-only", vec![base_id]).unwrap();
        let reclaimed = store.gc();
        assert_eq!(reclaimed, diff.size());
        assert_eq!(store.layer_count(), 1);
        assert!(store.image("base-only").is_ok(), "live layers survive");
    }

    #[test]
    fn tagging_unknown_layer_fails() {
        let mut store = ImageStore::new();
        let err = store.tag("x", vec![LayerId(123)]).unwrap_err();
        assert!(matches!(err, ContainerError::UnknownLayer(_)));
    }

    #[test]
    fn unknown_image_lookup_fails() {
        let store = ImageStore::new();
        assert!(matches!(
            store.image("missing"),
            Err(ContainerError::UnknownImage(_))
        ));
    }
}
