//! The container runtime (Docker equivalent).
//!
//! Creates, starts, stops, commits, and archives containers against
//! the shared simulated kernel. Memory is charged atomically at start:
//! if the board cannot fit another virtual drone the start fails with
//! OOM and running containers are untouched (paper Section 6.3: "a
//! fourth virtual drone fails due to lack of memory but does not
//! interfere with other virtual drones already running").

use std::collections::BTreeMap;

use androne_simkern::{ContainerId, Euid, Pid, SchedPolicy, SharedKernel, MIB};

use crate::container::{Container, ContainerKind, ContainerState};
use crate::error::ContainerError;
use crate::fs::ContainerFs;
use crate::image::{ImageStore, Layer, LayerId};
use crate::limits::ResourceLimits;
use crate::namespace::{DeviceNamespaceId, NamespaceSet};

/// RAM used by the host OS plus the VDC daemon (Figure 12: "less than
/// 100 MB ... to run the VDC and host OS").
pub const HOST_BASE_MEMORY: u64 = 95 * MIB;

/// A fully self-contained container archive, as stored in the
/// cloud-side virtual drone repository (VDR).
///
/// Layers carry actual contents, so an archive can be reinstated on
/// any drone (or non-drone) hardware with a matching base.
#[derive(Debug, Clone)]
pub struct ContainerArchive {
    /// Container name at export time.
    pub name: String,
    /// Architectural role.
    pub kind: ContainerKind,
    /// Ids of the shared read-only layers (present on any AnDrone
    /// drone; not shipped in the archive).
    pub base_stack: Vec<LayerId>,
    /// The private writable layer: everything this container changed.
    pub diff: Layer,
}

impl ContainerArchive {
    /// Bytes this archive costs to store offline (the diff only —
    /// base layers are shared).
    pub fn stored_bytes(&self) -> u64 {
        self.diff.size()
    }
}

/// The container runtime for one physical drone board.
pub struct ContainerRuntime {
    kernel: SharedKernel,
    images: ImageStore,
    containers: BTreeMap<String, Container>,
    next_id: u32,
}

impl ContainerRuntime {
    /// Creates a runtime on the given kernel, charging the host OS +
    /// VDC base memory.
    pub fn new(kernel: SharedKernel) -> Result<Self, ContainerError> {
        kernel.borrow_mut().mem.allocate("host/base", HOST_BASE_MEMORY)?;
        Ok(ContainerRuntime {
            kernel,
            images: ImageStore::new(),
            containers: BTreeMap::new(),
            next_id: 1,
        })
    }

    /// The shared kernel handle.
    pub fn kernel(&self) -> &SharedKernel {
        &self.kernel
    }

    /// The image store.
    pub fn images(&self) -> &ImageStore {
        &self.images
    }

    /// Mutable access to the image store.
    pub fn images_mut(&mut self) -> &mut ImageStore {
        &mut self.images
    }

    /// Creates a container from a tagged image.
    pub fn create(
        &mut self,
        name: impl Into<String>,
        kind: ContainerKind,
        image_tag: &str,
        limits: ResourceLimits,
    ) -> Result<ContainerId, ContainerError> {
        let name = name.into();
        if self.containers.contains_key(&name) {
            return Err(ContainerError::DuplicateName(name));
        }
        let image = self.images.image(image_tag)?;
        let id = ContainerId(self.next_id);
        self.next_id += 1;
        let container = Container {
            id,
            name: name.clone(),
            kind,
            state: ContainerState::Created,
            fs: ContainerFs::mount(image),
            namespaces: NamespaceSet::private(id.0),
            limits,
            resident_bytes: 0,
        };
        self.containers.insert(name, container);
        Ok(id)
    }

    /// Creates a container and pre-populates its writable layer
    /// (resuming a stored virtual drone from the VDR).
    pub fn create_from_archive(
        &mut self,
        archive: &ContainerArchive,
        limits: ResourceLimits,
    ) -> Result<ContainerId, ContainerError> {
        if self.containers.contains_key(&archive.name) {
            return Err(ContainerError::DuplicateName(archive.name.clone()));
        }
        let mut image = crate::image::Image::new();
        for layer_id in &archive.base_stack {
            // Reconstruct the base from locally present shared layers.
            let img = self.images.image_for_layer(*layer_id)?;
            image.push_layer(img);
        }
        let id = ContainerId(self.next_id);
        self.next_id += 1;
        let container = Container {
            id,
            name: archive.name.clone(),
            kind: archive.kind,
            state: ContainerState::Created,
            fs: ContainerFs::mount_with_upper(image, archive.diff.clone()),
            namespaces: NamespaceSet::private(id.0),
            limits,
            resident_bytes: 0,
        };
        self.containers.insert(archive.name.clone(), container);
        Ok(id)
    }

    fn get_checked(&self, name: &str) -> Result<&Container, ContainerError> {
        self.containers
            .get(name)
            .ok_or_else(|| ContainerError::UnknownContainer(name.to_string()))
    }

    fn get_mut_checked(&mut self, name: &str) -> Result<&mut Container, ContainerError> {
        self.containers
            .get_mut(name)
            .ok_or_else(|| ContainerError::UnknownContainer(name.to_string()))
    }

    /// Starts a container: charges its boot memory atomically and
    /// spawns its init task.
    pub fn start(&mut self, name: &str) -> Result<(), ContainerError> {
        let kernel = self.kernel.clone();
        let container = self.get_mut_checked(name)?;
        if container.state != ContainerState::Created
            && container.state != ContainerState::Stopped
        {
            return Err(ContainerError::InvalidState {
                container: name.to_string(),
                state: container.state,
                op: "start",
            });
        }
        let bytes = container.kind.boot_memory();
        if !container.limits.permits_memory(0, bytes) {
            return Err(ContainerError::LimitExceeded(format!(
                "memory limit below boot footprint for '{name}'"
            )));
        }
        let owner = container.mem_owner();
        {
            let mut k = kernel.borrow_mut();
            // Atomic: allocation either fully succeeds or fails
            // without touching other containers.
            k.mem.allocate(owner, bytes)?;
            k.tasks
                .spawn(format!("{name}/init"), Euid(0), container.id, SchedPolicy::DEFAULT)
                .map_err(ContainerError::Kernel)?;
        }
        container.resident_bytes = bytes;
        container.state = ContainerState::Running;
        Ok(())
    }

    /// Stops a container: kills its tasks and releases its memory.
    pub fn stop(&mut self, name: &str) -> Result<(), ContainerError> {
        let kernel = self.kernel.clone();
        let container = self.get_mut_checked(name)?;
        if container.state != ContainerState::Running {
            return Err(ContainerError::InvalidState {
                container: name.to_string(),
                state: container.state,
                op: "stop",
            });
        }
        {
            let mut k = kernel.borrow_mut();
            k.tasks.kill_container(container.id);
            k.tasks.reap();
            k.mem.release_owner(&container.mem_owner().into());
        }
        container.resident_bytes = 0;
        container.state = ContainerState::Stopped;
        Ok(())
    }

    /// Removes a stopped (or never-started) container entirely.
    pub fn remove(&mut self, name: &str) -> Result<(), ContainerError> {
        let state = self.get_checked(name)?.state;
        if state == ContainerState::Running {
            return Err(ContainerError::InvalidState {
                container: name.to_string(),
                state,
                op: "remove",
            });
        }
        self.containers.remove(name);
        Ok(())
    }

    /// Spawns a task inside a running container.
    pub fn spawn_task(
        &mut self,
        name: &str,
        task_name: impl Into<String>,
        euid: Euid,
        policy: SchedPolicy,
    ) -> Result<Pid, ContainerError> {
        let kernel = self.kernel.clone();
        let container = self.get_checked(name)?;
        if container.state != ContainerState::Running {
            return Err(ContainerError::InvalidState {
                container: name.to_string(),
                state: container.state,
                op: "spawn task",
            });
        }
        let pid = kernel
            .borrow_mut()
            .tasks
            .spawn(task_name, euid, container.id, policy)
            .map_err(ContainerError::Kernel)?;
        Ok(pid)
    }

    /// Commits a container's writable layer into the image store,
    /// returning the new layer id.
    pub fn commit(&mut self, name: &str) -> Result<LayerId, ContainerError> {
        let diff = self.get_checked(name)?.fs.diff().clone();
        Ok(self.images.put_layer(diff))
    }

    /// Exports a container as a self-contained archive for the VDR.
    pub fn export(&self, name: &str) -> Result<ContainerArchive, ContainerError> {
        let container = self.get_checked(name)?;
        let base_stack = container
            .fs
            .image_layers()
            .iter()
            .map(|l| l.id())
            .collect();
        Ok(ContainerArchive {
            name: container.name.clone(),
            kind: container.kind,
            base_stack,
            diff: container.fs.diff().clone(),
        })
    }

    /// Borrows a container by name.
    pub fn get(&self, name: &str) -> Option<&Container> {
        self.containers.get(name)
    }

    /// Mutably borrows a container by name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Container> {
        self.containers.get_mut(name)
    }

    /// Finds a container by kernel id.
    pub fn by_id(&self, id: ContainerId) -> Option<&Container> {
        self.containers.values().find(|c| c.id == id)
    }

    /// The device namespace of a container, by kernel id.
    pub fn device_ns(&self, id: ContainerId) -> Option<DeviceNamespaceId> {
        self.by_id(id).map(|c| c.namespaces.device_ns)
    }

    /// Iterates all containers.
    pub fn list(&self) -> impl Iterator<Item = &Container> {
        self.containers.values()
    }

    /// Names of running containers of a given kind.
    pub fn running_of_kind(&self, kind: ContainerKind) -> Vec<String> {
        self.containers
            .values()
            .filter(|c| c.kind == kind && c.state == ContainerState::Running)
            .map(|c| c.name.clone())
            .collect()
    }

    /// Total board memory currently used (host base + containers).
    pub fn total_memory_used(&self) -> u64 {
        self.kernel.borrow().mem.used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use androne_simkern::{Kernel, KernelConfig};

    fn runtime() -> ContainerRuntime {
        let kernel = Kernel::boot_shared(KernelConfig::ANDRONE_DEFAULT, 1);
        let mut rt = ContainerRuntime::new(kernel).unwrap();
        let base = Layer::from_files([("/system/build.prop", "android-things")]);
        let id = rt.images_mut().put_layer(base);
        rt.images_mut().tag("android-things", vec![id]).unwrap();
        rt
    }

    #[test]
    fn base_memory_charged_at_runtime_creation() {
        let rt = runtime();
        assert_eq!(rt.total_memory_used(), HOST_BASE_MEMORY);
    }

    #[test]
    fn lifecycle_create_start_stop_remove() {
        let mut rt = runtime();
        rt.create("vd1", ContainerKind::VirtualDrone, "android-things", ResourceLimits::UNLIMITED)
            .unwrap();
        rt.start("vd1").unwrap();
        assert_eq!(rt.get("vd1").unwrap().state, ContainerState::Running);
        assert_eq!(
            rt.total_memory_used(),
            HOST_BASE_MEMORY + ContainerKind::VirtualDrone.boot_memory()
        );
        rt.stop("vd1").unwrap();
        assert_eq!(rt.total_memory_used(), HOST_BASE_MEMORY);
        rt.remove("vd1").unwrap();
        assert!(rt.get("vd1").is_none());
    }

    #[test]
    fn fourth_virtual_drone_ooms_without_disturbing_others() {
        let mut rt = runtime();
        // Start the device + flight containers and three virtual
        // drones, filling the 880 MB board (Figure 12).
        rt.create("device", ContainerKind::Device, "android-things", ResourceLimits::UNLIMITED)
            .unwrap();
        rt.create("flight", ContainerKind::Flight, "android-things", ResourceLimits::UNLIMITED)
            .unwrap();
        rt.start("device").unwrap();
        rt.start("flight").unwrap();
        for i in 1..=3 {
            rt.create(
                format!("vd{i}"),
                ContainerKind::VirtualDrone,
                "android-things",
                ResourceLimits::UNLIMITED,
            )
            .unwrap();
            rt.start(&format!("vd{i}")).unwrap();
        }
        rt.create("vd4", ContainerKind::VirtualDrone, "android-things", ResourceLimits::UNLIMITED)
            .unwrap();
        let err = rt.start("vd4").unwrap_err();
        assert!(matches!(err, ContainerError::Kernel(_)), "{err}");
        // The first three are still running and fully charged.
        for i in 1..=3 {
            assert_eq!(
                rt.get(&format!("vd{i}")).unwrap().state,
                ContainerState::Running
            );
        }
        assert_eq!(rt.get("vd4").unwrap().state, ContainerState::Created);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut rt = runtime();
        rt.create("x", ContainerKind::VirtualDrone, "android-things", ResourceLimits::UNLIMITED)
            .unwrap();
        assert!(matches!(
            rt.create("x", ContainerKind::VirtualDrone, "android-things", ResourceLimits::UNLIMITED),
            Err(ContainerError::DuplicateName(_))
        ));
    }

    #[test]
    fn memory_limit_blocks_start() {
        let mut rt = runtime();
        rt.create(
            "small",
            ContainerKind::VirtualDrone,
            "android-things",
            ResourceLimits {
                memory_bytes: Some(10 * MIB),
                ..ResourceLimits::UNLIMITED
            },
        )
        .unwrap();
        assert!(matches!(
            rt.start("small"),
            Err(ContainerError::LimitExceeded(_))
        ));
    }

    #[test]
    fn stop_kills_container_tasks() {
        let mut rt = runtime();
        rt.create("vd1", ContainerKind::VirtualDrone, "android-things", ResourceLimits::UNLIMITED)
            .unwrap();
        rt.start("vd1").unwrap();
        rt.spawn_task("vd1", "app", Euid(10_001), SchedPolicy::DEFAULT)
            .unwrap();
        let id = rt.get("vd1").unwrap().id;
        assert_eq!(rt.kernel().borrow().tasks.in_container(id).count(), 2);
        rt.stop("vd1").unwrap();
        assert_eq!(rt.kernel().borrow().tasks.in_container(id).count(), 0);
    }

    #[test]
    fn export_import_round_trip() {
        let mut rt = runtime();
        rt.create("vd1", ContainerKind::VirtualDrone, "android-things", ResourceLimits::UNLIMITED)
            .unwrap();
        rt.start("vd1").unwrap();
        rt.get_mut("vd1")
            .unwrap()
            .fs
            .write("/data/state.json", "{\"waypoint\":1}");
        rt.stop("vd1").unwrap();
        let archive = rt.export("vd1").unwrap();
        assert_eq!(archive.stored_bytes(), 14, "only the diff is stored");
        rt.remove("vd1").unwrap();

        let id = rt.create_from_archive(&archive, ResourceLimits::UNLIMITED).unwrap();
        assert!(id.0 > 0);
        let resumed = rt.get("vd1").unwrap();
        assert_eq!(
            resumed.fs.read("/data/state.json").unwrap(),
            bytes::Bytes::from("{\"waypoint\":1}")
        );
        assert_eq!(
            resumed.fs.read("/system/build.prop").unwrap(),
            bytes::Bytes::from("android-things"),
            "base layers reconstructed locally"
        );
    }

    #[test]
    fn operations_on_unknown_containers_fail() {
        let mut rt = runtime();
        assert!(matches!(rt.start("nope"), Err(ContainerError::UnknownContainer(_))));
        assert!(matches!(rt.stop("nope"), Err(ContainerError::UnknownContainer(_))));
        assert!(matches!(rt.export("nope"), Err(ContainerError::UnknownContainer(_))));
    }

    #[test]
    fn containers_get_private_device_namespaces() {
        let mut rt = runtime();
        let a = rt
            .create("a", ContainerKind::VirtualDrone, "android-things", ResourceLimits::UNLIMITED)
            .unwrap();
        let b = rt
            .create("b", ContainerKind::VirtualDrone, "android-things", ResourceLimits::UNLIMITED)
            .unwrap();
        assert_ne!(rt.device_ns(a), rt.device_ns(b));
    }
}
