//! Ground-truth vehicle state bus.
//!
//! The physics model (in `androne-flight`) owns the true vehicle
//! state and publishes it here; every sensor device samples this bus
//! (adding its own noise), and the motor device feeds actuator
//! commands back to the physics. This mirrors how the real Navio2
//! daughterboard sits between ArduPilot and the airframe.

use std::cell::RefCell;
use std::rc::Rc;

use crate::geo::{Attitude, GeoPoint, Vec3};

/// The true state of the vehicle, written by physics each step.
#[derive(Debug, Clone, Copy)]
pub struct VehicleTruth {
    /// True geodetic position.
    pub position: GeoPoint,
    /// NED velocity, m/s.
    pub velocity: Vec3,
    /// True attitude.
    pub attitude: Attitude,
    /// Body angular rates, rad/s.
    pub body_rates: Vec3,
    /// Specific force in body frame, m/s² (what an accelerometer
    /// feels).
    pub specific_force: Vec3,
    /// Whether the vehicle is on the ground.
    pub on_ground: bool,
    /// Commanded motor outputs, normalized `0.0..=1.0`, read by
    /// physics.
    pub motor_outputs: [f64; 4],
    /// Battery terminal voltage, volts.
    pub battery_voltage: f64,
    /// Instantaneous battery current draw, amps.
    pub battery_current: f64,
    /// Cumulative energy drawn from the battery, joules.
    pub energy_consumed_j: f64,
    /// Battery cell health in `(0.0, 1.0]`: degraded cells deliver
    /// each joule of mechanical work at `1/health` electrical cost.
    pub battery_health: f64,
}

impl VehicleTruth {
    /// A vehicle at rest on the ground at `home`, battery full.
    pub fn at_rest(home: GeoPoint) -> Self {
        VehicleTruth {
            position: home,
            velocity: Vec3::ZERO,
            attitude: Attitude::LEVEL,
            body_rates: Vec3::ZERO,
            specific_force: Vec3::new(0.0, 0.0, -9.80665),
            on_ground: true,
            motor_outputs: [0.0; 4],
            battery_voltage: 12.6,
            battery_current: 0.0,
            energy_consumed_j: 0.0,
            battery_health: 1.0,
        }
    }
}

/// Shared handle to the truth bus.
pub type TruthBus = Rc<RefCell<VehicleTruth>>;

/// Creates a truth bus with the vehicle at rest at `home`.
pub fn new_truth_bus(home: GeoPoint) -> TruthBus {
    Rc::new(RefCell::new(VehicleTruth::at_rest(home)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_rest_state_is_grounded_and_level() {
        let t = VehicleTruth::at_rest(GeoPoint::new(43.6, -85.8, 0.0));
        assert!(t.on_ground);
        assert_eq!(t.velocity, Vec3::ZERO);
        assert_eq!(t.motor_outputs, [0.0; 4]);
        assert!((t.specific_force.z + 9.80665).abs() < 1e-9);
    }

    #[test]
    fn bus_is_shared() {
        let bus = new_truth_bus(GeoPoint::new(0.0, 0.0, 0.0));
        let other = Rc::clone(&bus);
        bus.borrow_mut().on_ground = false;
        assert!(!other.borrow().on_ground);
    }
}
