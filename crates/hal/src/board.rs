//! The assembled hardware board: all devices plus the claim table.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::camera::Camera;
use crate::device::{AlreadyClaimed, ClaimTable, DeviceKind};
use crate::faults::SensorFaults;
use crate::geo::GeoPoint;
use crate::misc::{BatteryMonitor, Gimbal, Microphone, Motors, Speaker};
use crate::sensors::{Barometer, Gps, Imu, Magnetometer};
use crate::truth::{new_truth_bus, TruthBus};

/// Everything soldered onto the prototype (RPi3 + Navio2 + camera).
pub struct HardwareBoard {
    /// Shared ground-truth bus.
    pub truth: TruthBus,
    /// The camera module.
    pub camera: Camera,
    /// GPS receiver.
    pub gps: Gps,
    /// Inertial measurement unit.
    pub imu: Imu,
    /// Barometer.
    pub barometer: Barometer,
    /// Magnetometer.
    pub magnetometer: Magnetometer,
    /// Microphone.
    pub microphone: Microphone,
    /// Speaker.
    pub speaker: Speaker,
    /// ESC/motor outputs.
    pub motors: Motors,
    /// Battery monitor.
    pub battery: BatteryMonitor,
    /// Camera gimbal.
    pub gimbal: Gimbal,
    /// Exclusive device claims.
    pub claims: ClaimTable,
    /// Injected sensor fault modes (all nominal by default).
    pub faults: SensorFaults,
    /// Sensor-noise RNG (deterministic per seed).
    pub rng: SmallRng,
}

impl HardwareBoard {
    /// Builds a board resting at `home` with a deterministic sensor
    /// noise seed.
    pub fn new(home: GeoPoint, seed: u64) -> Self {
        HardwareBoard {
            truth: new_truth_bus(home),
            camera: Camera::default(),
            gps: Gps::default(),
            imu: Imu::default(),
            barometer: Barometer::default(),
            magnetometer: Magnetometer::default(),
            microphone: Microphone::default(),
            speaker: Speaker::default(),
            motors: Motors,
            battery: BatteryMonitor,
            gimbal: Gimbal::default(),
            claims: ClaimTable::new(),
            faults: SensorFaults::default(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Claims every physical device for one owner (what the device
    /// container does at boot).
    pub fn claim_all(&mut self, owner: &str) -> Result<(), AlreadyClaimed> {
        for kind in DeviceKind::ALL {
            if !kind.trivially_virtualizable() {
                self.claims.claim(kind, owner)?;
            }
        }
        Ok(())
    }
}

/// A board shared between the physics loop and the device services.
pub type SharedBoard = std::rc::Rc<std::cell::RefCell<HardwareBoard>>;

/// Wraps a board in a shared handle.
pub fn share(board: HardwareBoard) -> SharedBoard {
    std::rc::Rc::new(std::cell::RefCell::new(board))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_container_claims_everything_but_framebuffer() {
        let mut board = HardwareBoard::new(GeoPoint::new(0.0, 0.0, 0.0), 1);
        board.claim_all("device-container").unwrap();
        assert_eq!(board.claims.holder(DeviceKind::Camera), Some("device-container"));
        assert_eq!(board.claims.holder(DeviceKind::Framebuffer), None);
        // A virtual drone cannot grab the raw camera afterwards.
        assert!(board.claims.claim(DeviceKind::Camera, "vdrone-1").is_err());
    }

    #[test]
    fn sensors_read_through_the_bus() {
        let mut board = HardwareBoard::new(GeoPoint::new(43.6, -85.8, 10.0), 2);
        let truth = *board.truth.borrow();
        let fix = board.gps.fix(&truth, &mut board.rng);
        assert!(fix.valid);
        let frame = board.camera.capture(&truth);
        assert_eq!(frame.geotag.latitude, 43.6);
    }
}
