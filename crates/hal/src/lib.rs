//! # androne-hal
//!
//! Simulated drone hardware for the AnDrone reproduction: the
//! Raspberry Pi 3 + Emlid Navio2 + Camera Module v2 stack the paper's
//! prototype flies with.
//!
//! Sensors sample a shared ground-truth bus written by the physics
//! model in `androne-flight`, adding device-appropriate noise; the
//! motor device feeds actuator commands back. Devices enforce
//! single-opener semantics via a claim table — the property that
//! forces multiplexing up into the device container, which is the
//! heart of the paper's design.

pub mod board;
pub mod camera;
pub mod device;
pub mod faults;
pub mod geo;
pub mod misc;
pub mod sensors;
pub mod statehash;
pub mod truth;

pub use board::{share, HardwareBoard, SharedBoard};
pub use camera::{Camera, Frame};
pub use device::{AlreadyClaimed, ClaimTable, DeviceKind};
pub use faults::{SensorFaultMode, SensorFaults};
pub use geo::{Attitude, GeoPoint, Vec3, EARTH_RADIUS_M};
pub use misc::{BatteryMonitor, Gimbal, Microphone, Motors, Speaker, VirtualFramebuffer};
pub use sensors::{Barometer, Gps, GpsFix, Imu, ImuSample, Magnetometer, G};
pub use truth::{new_truth_bus, TruthBus, VehicleTruth};
