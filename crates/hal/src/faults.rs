//! Injectable sensor fault modes.
//!
//! Each sensor channel on the [`HardwareBoard`](crate::HardwareBoard)
//! carries a [`SensorFaultMode`] that the fault injector flips at
//! scheduled ticks. The SITL loop consults these modes when sampling:
//!
//! - `Dropout` skips the sample entirely — and, critically, skips the
//!   noise RNG draws too, so the fault is visible in the RNG stream
//!   only through the draws it *removes*, never through extra ones.
//! - `Stuck` replays the last good sample without drawing noise.
//! - `Bias` samples normally and adds a constant offset.
//!
//! The modes are plain data; the gating logic lives in
//! `androne-flight`'s SITL step where the samples are consumed.

use androne_simkern::{StateHash, StateHasher};

/// Fault mode of one sensor channel.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum SensorFaultMode {
    /// Healthy: sample normally.
    #[default]
    Nominal,
    /// No samples produced at all.
    Dropout,
    /// The last good sample is repeated.
    Stuck,
    /// Samples carry a constant additive bias (m/s² for the IMU,
    /// metres of position/altitude for GPS and baro).
    Bias(f64),
}

impl StateHash for SensorFaultMode {
    fn state_hash(&self, h: &mut StateHasher) {
        match self {
            SensorFaultMode::Nominal => h.write_u8(0),
            SensorFaultMode::Dropout => h.write_u8(1),
            SensorFaultMode::Stuck => h.write_u8(2),
            SensorFaultMode::Bias(b) => {
                h.write_u8(3);
                h.write_f64(*b);
            }
        }
    }
}

/// Fault modes of every sensor the estimator consumes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SensorFaults {
    /// IMU fault mode (bias applies to the accelerometer, m/s²).
    pub imu: SensorFaultMode,
    /// GPS fault mode (bias shifts the fix north, metres).
    pub gps: SensorFaultMode,
    /// Barometer fault mode (bias shifts altitude, metres).
    pub baro: SensorFaultMode,
}

impl SensorFaults {
    /// Whether every channel is healthy.
    pub fn all_nominal(&self) -> bool {
        self.imu == SensorFaultMode::Nominal
            && self.gps == SensorFaultMode::Nominal
            && self.baro == SensorFaultMode::Nominal
    }
}

impl StateHash for SensorFaults {
    fn state_hash(&self, h: &mut StateHasher) {
        self.imu.state_hash(h);
        self.gps.state_hash(h);
        self.baro.state_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_nominal() {
        let f = SensorFaults::default();
        assert!(f.all_nominal());
        assert_eq!(f.imu, SensorFaultMode::Nominal);
    }

    #[test]
    fn fault_modes_hash_distinctly() {
        let modes = [
            SensorFaultMode::Nominal,
            SensorFaultMode::Dropout,
            SensorFaultMode::Stuck,
            SensorFaultMode::Bias(1.0),
            SensorFaultMode::Bias(2.0),
        ];
        for (i, a) in modes.iter().enumerate() {
            for b in modes.iter().skip(i + 1) {
                assert_ne!(a.hash_value(), b.hash_value(), "{a:?} vs {b:?}");
            }
        }
    }
}
