//! Navio2-class sensors: GPS, IMU, barometer, magnetometer.
//!
//! Each sensor samples the shared [`TruthBus`](crate::truth::TruthBus)
//! and corrupts it with device-appropriate noise, so the estimator in
//! the flight stack has honest work to do.

use rand::Rng;

use crate::geo::{GeoPoint, Vec3};
use crate::truth::VehicleTruth;

/// Standard gravity, m/s².
pub const G: f64 = 9.80665;

/// A GPS fix as reported by the receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsFix {
    /// Reported position.
    pub position: GeoPoint,
    /// Ground speed, m/s.
    pub ground_speed: f64,
    /// Course over ground, radians from north.
    pub course: f64,
    /// Satellites visible.
    pub satellites: u8,
    /// Whether the fix is 3-D valid.
    pub valid: bool,
}

/// The u-blox-class GPS receiver on the Navio2.
#[derive(Debug, Clone)]
pub struct Gps {
    /// Horizontal 1-sigma noise, meters.
    pub horiz_noise_m: f64,
    /// Vertical 1-sigma noise, meters.
    pub vert_noise_m: f64,
}

impl Default for Gps {
    fn default() -> Self {
        Gps {
            horiz_noise_m: 1.2,
            vert_noise_m: 2.0,
        }
    }
}

impl Gps {
    /// Produces a fix from the current truth.
    pub fn fix(&self, truth: &VehicleTruth, rng: &mut impl Rng) -> GpsFix {
        let n = gauss(rng) * self.horiz_noise_m;
        let e = gauss(rng) * self.horiz_noise_m;
        let u = gauss(rng) * self.vert_noise_m;
        GpsFix {
            position: truth.position.offset_m(n, e, u),
            ground_speed: truth.velocity.norm_xy(),
            course: truth.velocity.y.atan2(truth.velocity.x),
            satellites: 11,
            valid: true,
        }
    }
}

/// One IMU sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImuSample {
    /// Specific force in the body frame, m/s².
    pub accel: Vec3,
    /// Body angular rates, rad/s.
    pub gyro: Vec3,
}

/// The MPU9250-class IMU.
#[derive(Debug, Clone)]
pub struct Imu {
    /// Accelerometer 1-sigma noise, m/s².
    pub accel_noise: f64,
    /// Gyro 1-sigma noise, rad/s.
    pub gyro_noise: f64,
    /// Gyro bias, rad/s (constant per power-up).
    pub gyro_bias: Vec3,
}

impl Default for Imu {
    fn default() -> Self {
        Imu {
            accel_noise: 0.08,
            gyro_noise: 0.002,
            gyro_bias: Vec3::new(0.001, -0.0006, 0.0004),
        }
    }
}

impl Imu {
    /// Produces a sample from the current truth.
    pub fn sample(&self, truth: &VehicleTruth, rng: &mut impl Rng) -> ImuSample {
        ImuSample {
            accel: truth.specific_force + noise3(rng, self.accel_noise),
            gyro: truth.body_rates + self.gyro_bias + noise3(rng, self.gyro_noise),
        }
    }
}

/// The MS5611-class barometer.
#[derive(Debug, Clone)]
pub struct Barometer {
    /// Altitude-equivalent 1-sigma noise, meters.
    pub alt_noise_m: f64,
}

impl Default for Barometer {
    fn default() -> Self {
        Barometer { alt_noise_m: 0.35 }
    }
}

impl Barometer {
    /// Pressure in pascals at the vehicle's true altitude (ISA model),
    /// with sensor noise folded in as altitude error.
    pub fn pressure_pa(&self, truth: &VehicleTruth, rng: &mut impl Rng) -> f64 {
        let alt = truth.position.altitude + gauss(rng) * self.alt_noise_m;
        // International Standard Atmosphere, troposphere.
        101_325.0 * (1.0 - 2.25577e-5 * alt).powf(5.25588)
    }

    /// Altitude in meters derived from a pressure reading (the inverse
    /// of [`Barometer::pressure_pa`]).
    pub fn altitude_from_pressure(pressure_pa: f64) -> f64 {
        (1.0 - (pressure_pa / 101_325.0).powf(1.0 / 5.25588)) / 2.25577e-5
    }
}

/// The magnetometer (heading reference).
#[derive(Debug, Clone)]
pub struct Magnetometer {
    /// Heading 1-sigma noise, radians.
    pub heading_noise: f64,
}

impl Default for Magnetometer {
    fn default() -> Self {
        Magnetometer {
            heading_noise: 0.015,
        }
    }
}

impl Magnetometer {
    /// Measured heading (yaw) in radians.
    pub fn heading(&self, truth: &VehicleTruth, rng: &mut impl Rng) -> f64 {
        truth.attitude.yaw + gauss(rng) * self.heading_noise
    }
}

/// A 3-vector of independent zero-mean Gaussian noise with sigma `s`.
fn noise3(rng: &mut impl Rng, s: f64) -> Vec3 {
    Vec3::new(gauss(rng) * s, gauss(rng) * s, gauss(rng) * s)
}

/// Standard normal draw via Box-Muller.
fn gauss(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn truth() -> VehicleTruth {
        let mut t = VehicleTruth::at_rest(GeoPoint::new(43.6, -85.8, 0.0));
        t.position.altitude = 50.0;
        t.velocity = Vec3::new(3.0, 4.0, 0.0);
        t
    }

    #[test]
    fn gps_noise_is_bounded_and_unbiased() {
        let gps = Gps::default();
        let t = truth();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum_n = 0.0;
        for _ in 0..2_000 {
            let fix = gps.fix(&t, &mut rng);
            let err = fix.position.ned_from(&t.position);
            assert!(err.norm_xy() < 10.0, "GPS error unreasonable");
            sum_n += err.x;
        }
        assert!((sum_n / 2_000.0).abs() < 0.2, "bias {}", sum_n / 2_000.0);
    }

    #[test]
    fn gps_reports_ground_speed() {
        let gps = Gps::default();
        let t = truth();
        let mut rng = SmallRng::seed_from_u64(2);
        let fix = gps.fix(&t, &mut rng);
        assert!((fix.ground_speed - 5.0).abs() < 1e-9);
        assert!(fix.valid);
    }

    #[test]
    fn imu_at_rest_reads_gravity() {
        let imu = Imu::default();
        let t = VehicleTruth::at_rest(GeoPoint::new(0.0, 0.0, 0.0));
        let mut rng = SmallRng::seed_from_u64(3);
        let mut z = 0.0;
        for _ in 0..1_000 {
            z += imu.sample(&t, &mut rng).accel.z;
        }
        assert!((z / 1_000.0 + G).abs() < 0.05, "mean z {}", z / 1_000.0);
    }

    #[test]
    fn barometer_round_trips_altitude() {
        let t = truth();
        let baro = Barometer { alt_noise_m: 0.0 };
        let mut rng = SmallRng::seed_from_u64(4);
        let p = baro.pressure_pa(&t, &mut rng);
        let alt = Barometer::altitude_from_pressure(p);
        assert!((alt - 50.0).abs() < 0.01, "alt {alt}");
    }

    #[test]
    fn pressure_decreases_with_altitude() {
        let baro = Barometer { alt_noise_m: 0.0 };
        let mut rng = SmallRng::seed_from_u64(5);
        let mut low = truth();
        low.position.altitude = 0.0;
        let mut high = truth();
        high.position.altitude = 100.0;
        assert!(baro.pressure_pa(&low, &mut rng) > baro.pressure_pa(&high, &mut rng));
    }

    #[test]
    fn magnetometer_tracks_yaw() {
        let mag = Magnetometer::default();
        let mut t = truth();
        t.attitude.yaw = 1.0;
        let mut rng = SmallRng::seed_from_u64(6);
        let h = mag.heading(&t, &mut rng);
        assert!((h - 1.0).abs() < 0.1);
    }
}
