//! The Raspberry Pi Camera Module v2.
//!
//! Frames are synthetic but geotagged from the truth bus, so tests
//! and examples can assert *where* footage was captured — which is
//! exactly what AnDrone's waypoint device-access policy is about.

use bytes::Bytes;

use crate::geo::{Attitude, GeoPoint};
use crate::truth::VehicleTruth;

/// One captured frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Monotonic frame sequence number.
    pub seq: u64,
    /// Position at capture time.
    pub geotag: GeoPoint,
    /// Attitude at capture time.
    pub attitude: Attitude,
    /// Encoded frame payload (synthetic).
    pub data: Bytes,
}

/// The physical camera device. Single-opener hardware: multiplexing
/// happens above it, in the device container's CameraService.
#[derive(Debug)]
pub struct Camera {
    /// Horizontal resolution.
    pub width: u32,
    /// Vertical resolution.
    pub height: u32,
    seq: u64,
}

impl Default for Camera {
    fn default() -> Self {
        // Camera Module v2 1080p30 mode.
        Camera {
            width: 1920,
            height: 1080,
            seq: 0,
        }
    }
}

impl Camera {
    /// Captures one frame geotagged from the truth bus.
    pub fn capture(&mut self, truth: &VehicleTruth) -> Frame {
        self.seq += 1;
        // A compact synthetic payload: header bytes encoding the
        // frame number; real pixel data is irrelevant to the system
        // behaviour under test.
        let data = Bytes::from(format!(
            "JPEG:{}x{}:seq={}:lat={:.7}:lon={:.7}",
            self.width, self.height, self.seq, truth.position.latitude, truth.position.longitude
        ));
        Frame {
            seq: self.seq,
            geotag: truth.position,
            attitude: truth.attitude,
            data,
        }
    }

    /// Frames captured so far.
    pub fn frames_captured(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_sequenced_and_geotagged() {
        let mut cam = Camera::default();
        let mut truth = VehicleTruth::at_rest(GeoPoint::new(43.6, -85.8, 15.0));
        let f1 = cam.capture(&truth);
        truth.position.latitude += 0.001;
        let f2 = cam.capture(&truth);
        assert_eq!(f1.seq, 1);
        assert_eq!(f2.seq, 2);
        assert_ne!(f1.geotag.latitude, f2.geotag.latitude);
        assert!(std::str::from_utf8(&f2.data).unwrap().contains("seq=2"));
    }
}
