//! Miscellaneous devices: audio, framebuffer, motors, battery
//! monitor, gimbal.

use bytes::Bytes;

use crate::truth::VehicleTruth;

/// The microphone: produces synthetic PCM chunks.
#[derive(Debug, Default)]
pub struct Microphone {
    seq: u64,
}

impl Microphone {
    /// Records one audio chunk.
    pub fn record_chunk(&mut self) -> Bytes {
        self.seq += 1;
        Bytes::from(format!("PCM16:chunk={}", self.seq))
    }
}

/// The speaker: swallows PCM chunks, counting playback.
#[derive(Debug, Default)]
pub struct Speaker {
    chunks_played: u64,
}

impl Speaker {
    /// Plays one chunk.
    pub fn play(&mut self, _chunk: &Bytes) {
        self.chunks_played += 1;
    }

    /// Chunks played so far.
    pub fn chunks_played(&self) -> u64 {
        self.chunks_played
    }
}

/// A *virtual* framebuffer: Android refuses to boot without one, but
/// drones are headless, so each container simply gets a private
/// memory region (paper Section 4.1). This is the one device that
/// needs no multiplexing at all.
#[derive(Debug)]
pub struct VirtualFramebuffer {
    buffer: Vec<u8>,
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl VirtualFramebuffer {
    /// Allocates a RGBA framebuffer.
    pub fn new(width: u32, height: u32) -> Self {
        VirtualFramebuffer {
            buffer: vec![0; (width * height * 4) as usize],
            width,
            height,
        }
    }

    /// Writes a pixel (no-op display; contents are never shown).
    pub fn put_pixel(&mut self, x: u32, y: u32, rgba: [u8; 4]) {
        if x < self.width && y < self.height {
            let i = ((y * self.width + x) * 4) as usize;
            self.buffer[i..i + 4].copy_from_slice(&rgba);
        }
    }

    /// Reads a pixel back.
    pub fn get_pixel(&self, x: u32, y: u32) -> Option<[u8; 4]> {
        if x < self.width && y < self.height {
            let i = ((y * self.width + x) * 4) as usize;
            let mut px = [0u8; 4];
            px.copy_from_slice(&self.buffer[i..i + 4]);
            Some(px)
        } else {
            None
        }
    }

    /// Bytes of memory backing the framebuffer.
    pub fn size_bytes(&self) -> usize {
        self.buffer.len()
    }
}

/// The four ESC/motor outputs. Commands are clamped to `0.0..=1.0`
/// and written to the truth bus for the physics to consume.
#[derive(Debug, Default)]
pub struct Motors;

impl Motors {
    /// Applies normalized motor commands.
    pub fn set_outputs(&self, truth: &mut VehicleTruth, outputs: [f64; 4]) {
        truth.motor_outputs = outputs.map(|o| {
            if o.is_finite() {
                o.clamp(0.0, 1.0)
            } else {
                0.0
            }
        });
    }
}

/// The battery monitor (Navio2 power module): reads voltage/current
/// from the truth bus.
#[derive(Debug, Default)]
pub struct BatteryMonitor;

impl BatteryMonitor {
    /// Terminal voltage, volts.
    pub fn voltage(&self, truth: &VehicleTruth) -> f64 {
        truth.battery_voltage
    }

    /// Instantaneous current, amps.
    pub fn current(&self, truth: &VehicleTruth) -> f64 {
        truth.battery_current
    }

    /// Cumulative energy drawn, joules.
    pub fn energy_consumed_j(&self, truth: &VehicleTruth) -> f64 {
        truth.energy_consumed_j
    }
}

/// A 2-axis camera gimbal.
#[derive(Debug, Default)]
pub struct Gimbal {
    /// Commanded pitch, radians (negative looks down).
    pub pitch: f64,
    /// Commanded yaw relative to the airframe, radians.
    pub yaw: f64,
}

impl Gimbal {
    /// Points the gimbal, clamping pitch to `[-pi/2, 0]` (straight
    /// down to level).
    pub fn point(&mut self, pitch: f64, yaw: f64) {
        self.pitch = pitch.clamp(-std::f64::consts::FRAC_PI_2, 0.0);
        self.yaw = yaw;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoPoint;

    #[test]
    fn framebuffer_round_trips_pixels() {
        let mut fb = VirtualFramebuffer::new(4, 4);
        fb.put_pixel(1, 2, [9, 8, 7, 255]);
        assert_eq!(fb.get_pixel(1, 2), Some([9, 8, 7, 255]));
        assert_eq!(fb.get_pixel(9, 9), None);
        assert_eq!(fb.size_bytes(), 64);
    }

    #[test]
    fn motors_clamp_commands() {
        let motors = Motors;
        let mut truth = VehicleTruth::at_rest(GeoPoint::new(0.0, 0.0, 0.0));
        motors.set_outputs(&mut truth, [1.5, -0.2, f64::NAN, 0.6]);
        assert_eq!(truth.motor_outputs, [1.0, 0.0, 0.0, 0.6]);
    }

    #[test]
    fn gimbal_clamps_pitch() {
        let mut g = Gimbal::default();
        g.point(-10.0, 0.5);
        assert_eq!(g.pitch, -std::f64::consts::FRAC_PI_2);
        g.point(1.0, 0.0);
        assert_eq!(g.pitch, 0.0);
    }

    #[test]
    fn audio_devices_count_traffic() {
        let mut mic = Microphone::default();
        let mut spk = Speaker::default();
        let chunk = mic.record_chunk();
        spk.play(&chunk);
        assert_eq!(spk.chunks_played(), 1);
    }
}
