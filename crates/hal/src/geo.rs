//! Geodetic and vector math shared across the stack.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// Mean Earth radius in meters (spherical model).
pub const EARTH_RADIUS_M: f64 = 6_371_000.0;

/// A 3-vector (used for NED velocities, body rates, accelerations).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component (north / roll axis, context dependent).
    pub x: f64,
    /// Y component (east / pitch axis).
    pub y: f64,
    /// Z component (down / yaw axis).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Horizontal (x, y) norm.
    pub fn norm_xy(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Clamps each component to `[-limit, limit]`.
    pub fn clamp_abs(self, limit: f64) -> Vec3 {
        Vec3 {
            x: self.x.clamp(-limit, limit),
            y: self.y.clamp(-limit, limit),
            z: self.z.clamp(-limit, limit),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A geodetic position: latitude/longitude in degrees, altitude in
/// meters above ground level (the paper's virtual drone definitions
/// use exactly these fields).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GeoPoint {
    /// Latitude in degrees.
    pub latitude: f64,
    /// Longitude in degrees.
    pub longitude: f64,
    /// Altitude in meters (AGL).
    pub altitude: f64,
}

impl GeoPoint {
    /// Creates a point.
    pub const fn new(latitude: f64, longitude: f64, altitude: f64) -> Self {
        GeoPoint {
            latitude,
            longitude,
            altitude,
        }
    }

    /// Great-circle ground distance to `other` in meters (haversine).
    pub fn ground_distance_m(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.latitude.to_radians(), self.longitude.to_radians());
        let (lat2, lon2) = (other.latitude.to_radians(), other.longitude.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2)
            + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// 3-D distance to `other` in meters (ground distance plus
    /// altitude difference, Pythagorean).
    pub fn distance_m(&self, other: &GeoPoint) -> f64 {
        let g = self.ground_distance_m(other);
        let dz = self.altitude - other.altitude;
        (g * g + dz * dz).sqrt()
    }

    /// Offsets this point by north/east/up meters (local tangent
    /// plane approximation — accurate at drone scales).
    pub fn offset_m(&self, north: f64, east: f64, up: f64) -> GeoPoint {
        let dlat = north / EARTH_RADIUS_M;
        let dlon = east / (EARTH_RADIUS_M * self.latitude.to_radians().cos());
        GeoPoint {
            latitude: self.latitude + dlat.to_degrees(),
            longitude: self.longitude + dlon.to_degrees(),
            altitude: self.altitude + up,
        }
    }

    /// North/east/up offset in meters from `origin` to this point.
    pub fn ned_from(&self, origin: &GeoPoint) -> Vec3 {
        let north = (self.latitude - origin.latitude).to_radians() * EARTH_RADIUS_M;
        let east = (self.longitude - origin.longitude).to_radians()
            * EARTH_RADIUS_M
            * origin.latitude.to_radians().cos();
        // NED: z is *down*.
        Vec3::new(north, east, origin.altitude - self.altitude)
    }

    /// Initial bearing toward `other` in radians from north.
    pub fn bearing_to(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.latitude.to_radians(), self.longitude.to_radians());
        let (lat2, lon2) = (other.latitude.to_radians(), other.longitude.to_radians());
        let dlon = lon2 - lon1;
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        y.atan2(x)
    }
}

/// Attitude as Euler angles in radians.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Attitude {
    /// Roll about the forward axis.
    pub roll: f64,
    /// Pitch about the right axis.
    pub pitch: f64,
    /// Yaw/heading from north.
    pub yaw: f64,
}

impl Attitude {
    /// Level attitude pointing north.
    pub const LEVEL: Attitude = Attitude {
        roll: 0.0,
        pitch: 0.0,
        yaw: 0.0,
    };

    /// Largest absolute lean angle (roll or pitch), radians.
    pub fn max_lean(&self) -> f64 {
        self.roll.abs().max(self.pitch.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOME: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

    #[test]
    fn distance_to_self_is_zero() {
        assert!(HOME.ground_distance_m(&HOME) < 1e-9);
    }

    #[test]
    fn offset_round_trips_through_ned() {
        let p = HOME.offset_m(120.0, -45.0, 15.0);
        let ned = p.ned_from(&HOME);
        assert!((ned.x - 120.0).abs() < 0.01, "north {}", ned.x);
        assert!((ned.y + 45.0).abs() < 0.01, "east {}", ned.y);
        assert!((ned.z + 15.0).abs() < 0.01, "down {}", ned.z);
    }

    #[test]
    fn distance_matches_offset_magnitude() {
        let p = HOME.offset_m(300.0, 400.0, 0.0);
        let d = HOME.ground_distance_m(&p);
        assert!((d - 500.0).abs() < 0.5, "distance {d}");
    }

    #[test]
    fn three_d_distance_includes_altitude() {
        let p = HOME.offset_m(0.0, 0.0, 30.0);
        assert!((HOME.distance_m(&p) - 30.0).abs() < 1e-6);
    }

    #[test]
    fn bearing_cardinal_directions() {
        let north = HOME.offset_m(100.0, 0.0, 0.0);
        let east = HOME.offset_m(0.0, 100.0, 0.0);
        assert!(HOME.bearing_to(&north).abs() < 0.01);
        assert!((HOME.bearing_to(&east) - std::f64::consts::FRAC_PI_2).abs() < 0.01);
    }

    #[test]
    fn vec3_algebra() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_xy(), 5.0);
        assert_eq!((v * 2.0).x, 6.0);
        assert_eq!((v - v).norm(), 0.0);
        assert_eq!((-v).x, -3.0);
        assert_eq!(v.dot(Vec3::new(1.0, 0.0, 0.0)), 3.0);
        assert_eq!(v.clamp_abs(2.0), Vec3::new(2.0, 2.0, 0.0));
    }
}
