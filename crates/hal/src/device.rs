//! Device identity and exclusive-claim semantics.
//!
//! Drone device stacks are "often not designed to support
//! multiplexing" (paper Section 1): each physical device supports one
//! opener. The device container works precisely because it is the
//! *only* claimant of every physical device, multiplexing access at
//! the Android-service level above. [`ClaimTable`] enforces the
//! one-claimant rule so that property is testable.

use std::collections::BTreeMap;
use std::fmt;

/// The kinds of physical devices on the prototype drone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceKind {
    /// Raspberry Pi Camera Module v2.
    Camera,
    /// Navio2 GPS receiver.
    Gps,
    /// Navio2 IMU (accelerometer + gyroscope).
    Imu,
    /// Navio2 barometer.
    Barometer,
    /// Navio2 magnetometer.
    Magnetometer,
    /// Microphone.
    Microphone,
    /// Speaker.
    Speaker,
    /// Framebuffer (virtualizable: drones are headless).
    Framebuffer,
    /// The four ESC/motor outputs.
    Motors,
    /// Battery monitor (voltage/current sense).
    Battery,
    /// Camera gimbal.
    Gimbal,
}

impl DeviceKind {
    /// Every device on the prototype.
    pub const ALL: [DeviceKind; 11] = [
        DeviceKind::Camera,
        DeviceKind::Gps,
        DeviceKind::Imu,
        DeviceKind::Barometer,
        DeviceKind::Magnetometer,
        DeviceKind::Microphone,
        DeviceKind::Speaker,
        DeviceKind::Framebuffer,
        DeviceKind::Motors,
        DeviceKind::Battery,
        DeviceKind::Gimbal,
    ];

    /// Whether the device can be trivially virtualized per container
    /// (a dummy suffices, e.g. the framebuffer on a headless drone).
    pub fn trivially_virtualizable(self) -> bool {
        matches!(self, DeviceKind::Framebuffer)
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceKind::Camera => "camera",
            DeviceKind::Gps => "gps",
            DeviceKind::Imu => "imu",
            DeviceKind::Barometer => "barometer",
            DeviceKind::Magnetometer => "magnetometer",
            DeviceKind::Microphone => "microphone",
            DeviceKind::Speaker => "speaker",
            DeviceKind::Framebuffer => "framebuffer",
            DeviceKind::Motors => "motors",
            DeviceKind::Battery => "battery",
            DeviceKind::Gimbal => "gimbal",
        };
        f.write_str(s)
    }
}

/// Error returned when claiming an already-claimed device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlreadyClaimed {
    /// The device in question.
    pub device: DeviceKind,
    /// Who holds it.
    pub holder: String,
}

impl fmt::Display for AlreadyClaimed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "device {} already claimed by {}", self.device, self.holder)
    }
}

impl std::error::Error for AlreadyClaimed {}

/// Tracks which single owner has claimed each physical device.
#[derive(Debug, Default)]
pub struct ClaimTable {
    claims: BTreeMap<DeviceKind, String>,
}

impl ClaimTable {
    /// Creates an empty claim table.
    pub fn new() -> Self {
        ClaimTable::default()
    }

    /// Claims a device exclusively for `owner`.
    pub fn claim(&mut self, device: DeviceKind, owner: impl Into<String>) -> Result<(), AlreadyClaimed> {
        let owner = owner.into();
        match self.claims.get(&device) {
            Some(holder) if *holder != owner => Err(AlreadyClaimed {
                device,
                holder: holder.clone(),
            }),
            _ => {
                self.claims.insert(device, owner);
                Ok(())
            }
        }
    }

    /// Releases a device if held by `owner`.
    pub fn release(&mut self, device: DeviceKind, owner: &str) {
        if self.claims.get(&device).is_some_and(|h| h == owner) {
            self.claims.remove(&device);
        }
    }

    /// Current holder of a device.
    pub fn holder(&self, device: DeviceKind) -> Option<&str> {
        self.claims.get(&device).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_one_claimant_per_device() {
        let mut t = ClaimTable::new();
        t.claim(DeviceKind::Camera, "device-container").unwrap();
        let err = t.claim(DeviceKind::Camera, "vdrone-1").unwrap_err();
        assert_eq!(err.holder, "device-container");
        // Re-claim by the same owner is idempotent.
        t.claim(DeviceKind::Camera, "device-container").unwrap();
    }

    #[test]
    fn release_requires_matching_owner() {
        let mut t = ClaimTable::new();
        t.claim(DeviceKind::Gps, "device-container").unwrap();
        t.release(DeviceKind::Gps, "someone-else");
        assert_eq!(t.holder(DeviceKind::Gps), Some("device-container"));
        t.release(DeviceKind::Gps, "device-container");
        assert_eq!(t.holder(DeviceKind::Gps), None);
    }

    #[test]
    fn framebuffer_is_the_trivially_virtualizable_one() {
        for d in DeviceKind::ALL {
            assert_eq!(
                d.trivially_virtualizable(),
                d == DeviceKind::Framebuffer,
                "{d}"
            );
        }
    }
}
