//! [`StateHash`] impls for the hardware-facing value types.
//!
//! These live here (not in the consuming crates) because the trait is
//! foreign and the types are local: the orphan rule lets `androne-hal`
//! implement `androne_simkern::StateHash` for its own structs, and
//! every sim-state crate above (flight, vdc, core) reuses them.

use androne_simkern::{StateHash, StateHasher};

use crate::geo::{Attitude, GeoPoint, Vec3};
use crate::sensors::{GpsFix, ImuSample};
use crate::truth::VehicleTruth;

impl StateHash for Vec3 {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_f64(self.x);
        h.write_f64(self.y);
        h.write_f64(self.z);
    }
}

impl StateHash for GeoPoint {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_f64(self.latitude);
        h.write_f64(self.longitude);
        h.write_f64(self.altitude);
    }
}

impl StateHash for Attitude {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_f64(self.roll);
        h.write_f64(self.pitch);
        h.write_f64(self.yaw);
    }
}

impl StateHash for VehicleTruth {
    fn state_hash(&self, h: &mut StateHasher) {
        self.position.state_hash(h);
        self.velocity.state_hash(h);
        self.attitude.state_hash(h);
        self.body_rates.state_hash(h);
        self.specific_force.state_hash(h);
        h.write_bool(self.on_ground);
        for m in self.motor_outputs {
            h.write_f64(m);
        }
        h.write_f64(self.battery_voltage);
        h.write_f64(self.battery_current);
        h.write_f64(self.energy_consumed_j);
        h.write_f64(self.battery_health);
    }
}

impl StateHash for ImuSample {
    fn state_hash(&self, h: &mut StateHasher) {
        self.accel.state_hash(h);
        self.gyro.state_hash(h);
    }
}

impl StateHash for GpsFix {
    fn state_hash(&self, h: &mut StateHasher) {
        self.position.state_hash(h);
        h.write_f64(self.ground_speed);
        h.write_f64(self.course);
        h.write_u8(self.satellites);
        h.write_bool(self.valid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec3_components_are_order_sensitive() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(3.0, 2.0, 1.0);
        assert_ne!(a.hash_value(), b.hash_value());
    }

    #[test]
    fn truth_hash_tracks_motor_outputs() {
        let home = GeoPoint::new(43.6, -85.8, 0.0);
        let a = VehicleTruth::at_rest(home);
        let mut b = a;
        b.motor_outputs[2] = 0.5;
        assert_ne!(a.hash_value(), b.hash_value());
    }
}
