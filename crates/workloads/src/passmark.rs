//! The PassMark PerformanceTest model.
//!
//! Figure 10 of the paper runs PassMark's multi-threaded CPU, disk,
//! and memory tests inside one to three virtual drones
//! simultaneously, normalized to a single instance on stock Android
//! Things (2D/3D graphics tests are skipped: Android Things has no
//! GPU acceleration). This model reproduces the benchmark's resource
//! behaviour:
//!
//! - the CPU test saturates all four cores on its own (demand 4.0),
//!   so N instances slow down ~N×;
//! - a single disk test drives the microSD card at ~67% of its
//!   bandwidth, so contention only bites past one instance and three
//!   instances land at ~2× (the paper's number);
//! - a single memory test drives DRAM at ~60% of peak, landing three
//!   instances at ~1.8×;
//! - running under a container adds ~1.2% overhead; the PREEMPT_RT
//!   kernel adds contention-dependent penalties (see
//!   [`KernelConfig::throughput_penalty`]).

use androne_simkern::{ClientId, Kernel, KernelConfig, ResourceKind};

/// Single-instance standalone demand per resource (fraction of the
/// bottleneck; CPU in cores).
pub const CPU_DEMAND: f64 = 4.0;
/// Disk-bandwidth demand of one instance.
pub const DISK_DEMAND: f64 = 0.67;
/// Memory-bandwidth demand of one instance.
pub const MEM_DEMAND: f64 = 0.60;

/// Multiplicative overhead of running inside a virtual drone
/// container (Docker + Binder indirection), calibrated to the
/// paper's "at most 1.5%" single-instance result.
pub const CONTAINER_OVERHEAD: f64 = 1.012;

/// Scores from one PassMark run. Scores are normalized rates: 1.0 is
/// a single stock instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassmarkScores {
    /// CPU test score.
    pub cpu: f64,
    /// Disk test score.
    pub disk: f64,
    /// Memory test score.
    pub memory: f64,
}

impl PassmarkScores {
    /// Normalized *overhead* relative to a baseline (lower is
    /// better; this is what Figure 10 plots).
    pub fn overhead_vs(&self, baseline: &PassmarkScores) -> PassmarkScores {
        PassmarkScores {
            cpu: baseline.cpu / self.cpu,
            disk: baseline.disk / self.disk,
            memory: baseline.memory / self.memory,
        }
    }
}

/// Runs `instances` simultaneous PassMark instances on `kernel`,
/// returning per-instance scores.
///
/// `in_container` selects whether instances run inside virtual drone
/// containers (AnDrone) or natively (the stock baseline).
pub fn run_concurrent(kernel: &mut Kernel, instances: usize, in_container: bool) -> Vec<PassmarkScores> {
    assert!(instances >= 1, "need at least one instance");
    let config = kernel.config();
    let mut out = Vec::with_capacity(instances);
    for kind in [
        ResourceKind::Cpu,
        ResourceKind::DiskBandwidth,
        ResourceKind::MemoryBandwidth,
    ] {
        let demand = match kind {
            ResourceKind::Cpu => CPU_DEMAND,
            ResourceKind::DiskBandwidth => DISK_DEMAND,
            _ => MEM_DEMAND,
        };
        let resource = kernel.resources.get_mut(kind);
        for i in 0..instances {
            resource.register(format!("passmark-{i}"), demand);
        }
    }
    for i in 0..instances {
        let id: ClientId = format!("passmark-{i}").into();
        let score = |kind: ResourceKind| -> f64 {
            let slowdown = kernel.resources.get(kind).slowdown_for(&id);
            let penalty = kernel_penalty(config, kind, instances);
            let container = if in_container { CONTAINER_OVERHEAD } else { 1.0 };
            1.0 / (slowdown * penalty * container)
        };
        out.push(PassmarkScores {
            cpu: score(ResourceKind::Cpu),
            disk: score(ResourceKind::DiskBandwidth),
            memory: score(ResourceKind::MemoryBandwidth),
        });
    }
    // Benchmark finished: release the demands.
    for kind in [
        ResourceKind::Cpu,
        ResourceKind::DiskBandwidth,
        ResourceKind::MemoryBandwidth,
    ] {
        let resource = kernel.resources.get_mut(kind);
        for i in 0..instances {
            resource.unregister(&format!("passmark-{i}").into());
        }
    }
    out
}

fn kernel_penalty(config: KernelConfig, kind: ResourceKind, contenders: usize) -> f64 {
    config.throughput_penalty(kind, contenders)
}

/// The stock baseline: one native instance on the stock kernel.
pub fn stock_baseline() -> PassmarkScores {
    let mut kernel = Kernel::boot(KernelConfig::STOCK, 0);
    run_concurrent(&mut kernel, 1, false)[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overheads(config: KernelConfig, instances: usize) -> PassmarkScores {
        let baseline = stock_baseline();
        let mut kernel = Kernel::boot(config, 1);
        let scores = run_concurrent(&mut kernel, instances, true);
        scores[0].overhead_vs(&baseline)
    }

    #[test]
    fn single_vdrone_overhead_is_under_1_5_percent() {
        // Paper: "with a single virtual drone running, CPU, disk, and
        // memory performance remained relatively constant with at
        // most 1.5% overhead".
        for config in [KernelConfig::NAVIO2_DEFAULT, KernelConfig::ANDRONE_DEFAULT] {
            let o = overheads(config, 1);
            assert!(o.cpu <= 1.02, "cpu {}", o.cpu);
            assert!(o.disk <= 1.02, "disk {}", o.disk);
            assert!(o.memory <= 1.02, "memory {}", o.memory);
            assert!(o.cpu > 1.0, "virtualization is not free");
        }
    }

    #[test]
    fn cpu_scales_linearly_with_instances() {
        let o2 = overheads(KernelConfig::NAVIO2_DEFAULT, 2);
        let o3 = overheads(KernelConfig::NAVIO2_DEFAULT, 3);
        assert!((o2.cpu / 2.0 - 1.0).abs() < 0.05, "2 instances ~2x: {}", o2.cpu);
        assert!((o3.cpu / 3.0 - 1.0).abs() < 0.05, "3 instances ~3x: {}", o3.cpu);
    }

    #[test]
    fn disk_and_memory_match_figure_10_at_three_instances() {
        // Paper: disk ~2x / 2.2x (PREEMPT / PREEMPT_RT), memory
        // ~1.8x / 2.3x.
        let p = overheads(KernelConfig::NAVIO2_DEFAULT, 3);
        let rt = overheads(KernelConfig::ANDRONE_DEFAULT, 3);
        assert!((p.disk - 2.0).abs() < 0.15, "PREEMPT disk {}", p.disk);
        assert!((rt.disk - 2.2).abs() < 0.15, "RT disk {}", rt.disk);
        assert!((p.memory - 1.8).abs() < 0.15, "PREEMPT mem {}", p.memory);
        assert!((rt.memory - 2.3).abs() < 0.15, "RT mem {}", rt.memory);
    }

    #[test]
    fn rt_kernel_is_somewhat_worse_at_three_instances() {
        let p = overheads(KernelConfig::NAVIO2_DEFAULT, 3);
        let rt = overheads(KernelConfig::ANDRONE_DEFAULT, 3);
        assert!(rt.cpu > p.cpu, "RT trails PREEMPT on CPU");
        assert!(rt.memory > p.memory);
    }

    #[test]
    fn benchmark_releases_its_demands() {
        let mut kernel = Kernel::boot(KernelConfig::ANDRONE_DEFAULT, 1);
        run_concurrent(&mut kernel, 3, true);
        assert_eq!(kernel.resources.cpu_utilization(), 0.0);
    }
}
