//! The `stress` workload generator and iperf.
//!
//! The paper's worst-case latency scenario runs `stress` with four
//! CPU workers, two I/O workers, two memory workers, and two disk
//! workers, plus iperf over Gigabit Ethernet, all natively on the
//! host (Section 6.2). Starting a workload registers both its
//! resource demands (for throughput contention) and its scheduling
//! interference (for latency).

use androne_simkern::latency::profiles;
use androne_simkern::{ClientId, Kernel, ResourceKind};

/// `stress` configuration (worker counts).
#[derive(Debug, Clone, Copy)]
pub struct StressConfig {
    /// CPU spinner workers.
    pub cpu_workers: u32,
    /// `sync()` I/O workers.
    pub io_workers: u32,
    /// Memory (malloc/touch) workers.
    pub vm_workers: u32,
    /// Disk write workers.
    pub hdd_workers: u32,
}

impl StressConfig {
    /// The paper's configuration: `stress -c 4 -i 2 -m 2 -d 2`.
    pub fn paper() -> Self {
        StressConfig {
            cpu_workers: 4,
            io_workers: 2,
            vm_workers: 2,
            hdd_workers: 2,
        }
    }
}

/// A running stress workload; dropping it does NOT stop it (call
/// [`StressHandle::stop`]), mirroring that `stress` keeps running
/// until killed.
pub struct StressHandle {
    id: ClientId,
}

/// Starts `stress` (plus iperf interference) on the kernel.
pub fn start_stress(kernel: &mut Kernel, config: StressConfig) -> StressHandle {
    let id: ClientId = "stress".into();
    kernel
        .resources
        .get_mut(ResourceKind::Cpu)
        .register(id.clone(), config.cpu_workers as f64);
    kernel
        .resources
        .get_mut(ResourceKind::DiskBandwidth)
        .register(id.clone(), 0.4 * (config.hdd_workers + config.io_workers) as f64);
    kernel
        .resources
        .get_mut(ResourceKind::MemoryBandwidth)
        .register(id.clone(), 0.35 * config.vm_workers as f64);
    kernel.add_interference(profiles::stress_load());
    StressHandle { id }
}

impl StressHandle {
    /// Stops the workload, releasing its resource demands. (The
    /// latency interference source remains registered on the kernel;
    /// boot a fresh kernel for a clean-room run, as the benchmarks
    /// do.)
    pub fn stop(self, kernel: &mut Kernel) {
        kernel.resources.unregister_everywhere(&self.id);
    }
}

/// iperf network throughput test model.
#[derive(Debug, Clone, Copy)]
pub struct Iperf {
    /// Peak link throughput, Mbit/s (Gigabit Ethernet minus
    /// protocol overhead on the RPi3's USB-attached NIC: ~300).
    pub peak_mbps: f64,
}

impl Default for Iperf {
    fn default() -> Self {
        // The RPi3's Ethernet hangs off USB 2.0: peak throughput
        // lands well under line rate; measured boards do ~94-230.
        Iperf { peak_mbps: 230.0 }
    }
}

impl Iperf {
    /// Starts iperf: registers network demand + IRQ interference,
    /// returning the achieved throughput under current contention.
    pub fn run(&self, kernel: &mut Kernel, client: &str) -> f64 {
        let id: ClientId = client.into();
        kernel
            .resources
            .get_mut(ResourceKind::NetworkBandwidth)
            .register(id.clone(), 1.0);
        kernel.add_interference(profiles::iperf_load());
        let slowdown = kernel
            .resources
            .get(ResourceKind::NetworkBandwidth)
            .slowdown_for(&id);
        self.peak_mbps / slowdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use androne_simkern::KernelConfig;

    #[test]
    fn stress_occupies_the_cpu() {
        let mut kernel = Kernel::boot(KernelConfig::ANDRONE_DEFAULT, 1);
        let h = start_stress(&mut kernel, StressConfig::paper());
        assert_eq!(kernel.resources.cpu_utilization(), 1.0);
        h.stop(&mut kernel);
        assert_eq!(kernel.resources.cpu_utilization(), 0.0);
    }

    #[test]
    fn stress_raises_rt_latency_tail() {
        let mut quiet = Kernel::boot(KernelConfig::NAVIO2_DEFAULT, 5);
        let mut stressed = Kernel::boot(KernelConfig::NAVIO2_DEFAULT, 5);
        start_stress(&mut stressed, StressConfig::paper());
        let mut max_q = 0.0f64;
        let mut max_s = 0.0f64;
        for _ in 0..100_000 {
            max_q = max_q.max(quiet.sample_rt_latency().as_micros_f64());
            max_s = max_s.max(stressed.sample_rt_latency().as_micros_f64());
        }
        assert!(max_s > max_q * 2.0, "stress tail {max_s} vs idle {max_q}");
    }

    #[test]
    fn iperf_throughput_halves_under_two_streams() {
        let mut kernel = Kernel::boot(KernelConfig::ANDRONE_DEFAULT, 1);
        let iperf = Iperf::default();
        let t1 = iperf.run(&mut kernel, "iperf-1");
        assert!((t1 - 230.0).abs() < 1.0);
        let t2 = iperf.run(&mut kernel, "iperf-2");
        assert!((t2 - 115.0).abs() < 2.0, "two streams share: {t2}");
    }
}
