//! Closed-loop adaptive adversaries: attacker *brains* that re-plan
//! every tick from their own admission feedback.
//!
//! An [`AttackPlan`](crate::AttackPlan) is open-loop: the schedule is
//! fixed at generation time and the attacker never reacts to the
//! defense. An [`AdaptivePlan`] instead names a roster of
//! [`AttackerBrain`]s — per-tenant feedback policies that observe the
//! signals a *real* hostile tenant can see through the SDK surface
//! (its own admission results, its own suspension flag) and choose
//! the next tick's Binder load accordingly. Strategies:
//!
//! - **Refill probing** ([`AdaptiveStrategy::RefillProbe`]): slam the
//!   admission path until the token-bucket boundary shows, learn the
//!   per-tick refill quantum from what got through, then ride just
//!   above it so nearly every rejection the ladder counts is spent
//!   re-finding the edge. Refill-boundary jitter in the driver is
//!   the counter: the quantum stops being learnable.
//! - **Rung-edge riding** ([`AdaptiveStrategy::RungEdgeRide`]): the
//!   published defense thresholds are the prior; the brain budgets
//!   its *cumulative* rejections to stay a safety margin below
//!   `halve_after`, bursting while rejection budget remains and
//!   gliding at the learned quantum once it is spent.
//! - **Collusion** ([`AdaptiveStrategy::Collude`]): a group cycles
//!   save → burst → steady so each member stays inside its own
//!   bucket (no rejections, no ladder movement) while the *aggregate*
//!   admitted load spikes every burst phase. The aggregate admission
//!   cap in the driver is the counter: no per-tenant discipline can
//!   push the group past it.
//!
//! Determinism contract: brains draw only from the dedicated
//! adversary feedback stream
//! ([`androne_simkern::adversary_stream_rng`]), one substream per
//! attacker index, so adaptive runs never perturb the kernel or
//! board streams and an empty plan consumes zero draws.

use rand::Rng;

use androne_simkern::statehash::{StateHash, StateHasher};

/// Wire size of every adaptive probe transaction, bytes. Small and
/// constant: the adaptive strategies attack the *rate* dimension;
/// parcel-size games are the open-loop `ParcelBomb`'s job.
pub const ADAPTIVE_WIRE_SIZE: u64 = 64;

/// The steady per-tick load a brain falls back to before it has
/// learned anything (no rejection ever observed — e.g. running
/// against a driver with no budgets armed at all).
const FALLBACK_STEADY: u64 = 160;

/// Publicly-known defaults an informed adversary starts from (the
/// repo documents `TenantQos::DEFENSIVE_DEFAULT` and the ladder
/// thresholds; assuming the attacker read them is the conservative
/// threat model). Feedback overrides these priors within a few ticks.
const PRIOR_QUANTUM: u64 = 120;
const PRIOR_BANK: u64 = 240;
const PRIOR_HALVE_AFTER: u64 = 256;

/// How many cumulative rejections below `halve_after` the rung-edge
/// rider keeps in reserve.
const RUNG_SAFETY: u64 = 32;

/// One closed-loop strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveStrategy {
    /// Learn the token-bucket refill quantum from admission feedback
    /// and ride it.
    RefillProbe,
    /// Stay one safety margin below the halving threshold while
    /// extracting the maximum admitted load.
    RungEdgeRide,
    /// Synchronized (or, with distinct slots, rotating) group cycle:
    /// save a quantum, dump the bank, glide — per-tenant clean,
    /// aggregate spiky.
    Collude {
        /// Number of members in the colluding group.
        group: u32,
        /// This member's phase offset within the cycle. Equal slots
        /// synchronize the group's bursts (the aggregate spike);
        /// distinct slots rotate the burster.
        slot: u32,
    },
}

impl AdaptiveStrategy {
    /// Number of distinct strategies (coverage accounting).
    pub const COUNT: usize = 3;

    /// Stable discriminant for hashing and coverage accounting.
    pub fn tag(self) -> u8 {
        match self {
            AdaptiveStrategy::RefillProbe => 0,
            AdaptiveStrategy::RungEdgeRide => 1,
            AdaptiveStrategy::Collude { .. } => 2,
        }
    }

    /// Short human-readable name (trace events, counters).
    pub fn name(self) -> &'static str {
        match self {
            AdaptiveStrategy::RefillProbe => "refill-probe",
            AdaptiveStrategy::RungEdgeRide => "rung-edge-ride",
            AdaptiveStrategy::Collude { .. } => "collude",
        }
    }
}

impl StateHash for AdaptiveStrategy {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u8(self.tag());
        if let AdaptiveStrategy::Collude { group, slot } = self {
            h.write_u32(*group);
            h.write_u32(*slot);
        }
    }
}

/// One adaptive attacker: a hostile tenant (by virtual-drone name)
/// running one strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveAttacker {
    /// The hostile tenant's virtual-drone name.
    pub name: String,
    pub strategy: AdaptiveStrategy,
}

impl StateHash for AdaptiveAttacker {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_str(&self.name);
        self.strategy.state_hash(h);
    }
}

/// A closed-loop adversarial campaign over one flight: every attacker
/// in the roster runs its brain from `arm_tick` (inclusive) to
/// `disarm_tick` (exclusive).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptivePlan {
    /// Seed for the adversary feedback streams (0 for hand-built
    /// plans — a valid stream seed, not a sentinel).
    pub seed: u64,
    pub arm_tick: u64,
    pub disarm_tick: u64,
    /// The roster, in brain-index order (index = feedback substream).
    pub attackers: Vec<AdaptiveAttacker>,
}

impl AdaptivePlan {
    /// A plan with no attackers. Running it must not perturb
    /// anything.
    pub fn empty() -> AdaptivePlan {
        AdaptivePlan {
            seed: 0,
            arm_tick: 0,
            disarm_tick: 0,
            attackers: Vec::new(),
        }
    }

    /// A plan with exactly one attacker, for targeted tests.
    pub fn single(
        strategy: AdaptiveStrategy,
        attacker: impl Into<String>,
        arm_tick: u64,
        disarm_tick: u64,
    ) -> AdaptivePlan {
        AdaptivePlan {
            seed: 0,
            arm_tick,
            disarm_tick,
            attackers: vec![AdaptiveAttacker {
                name: attacker.into(),
                strategy,
            }],
        }
    }

    /// A synchronized colluding group over the whole roster: every
    /// member bursts on the same phase, the aggregate-spike worst
    /// case the admission cap exists for.
    pub fn colluding(
        roster: &[String],
        arm_tick: u64,
        disarm_tick: u64,
    ) -> AdaptivePlan {
        let group = roster.len() as u32;
        AdaptivePlan {
            seed: 0,
            arm_tick,
            disarm_tick,
            attackers: roster
                .iter()
                .map(|name| AdaptiveAttacker {
                    name: name.clone(),
                    strategy: AdaptiveStrategy::Collude { group, slot: 0 },
                })
                .collect(),
        }
    }

    /// Generates a campaign for a flight of `horizon_ticks` seconds.
    /// Draws come from the plan-generation substream of the adversary
    /// family (`attacker = u64::MAX`, reserved — brain substreams use
    /// their roster index), so generating a plan never perturbs the
    /// streams the brains will later draw from, nor any sim stream.
    pub fn generate(seed: u64, horizon_ticks: u64, roster: &[String]) -> AdaptivePlan {
        let mut rng = androne_simkern::adversary_stream_rng(seed, u64::MAX);
        if roster.is_empty() {
            return AdaptivePlan::empty();
        }
        let horizon = horizon_ticks.max(24);
        let count = rng.gen_range(1..=roster.len().min(3));
        let start = rng.gen_range(0..roster.len());
        let arm_tick = rng.gen_range(2..horizon / 2);
        let duration = rng.gen_range(20u64..=45);
        let attackers = (0..count)
            .map(|i| {
                let name = roster[(start + i) % roster.len()].clone();
                let strategy = match rng.gen_range(0..3u32) {
                    0 => AdaptiveStrategy::RefillProbe,
                    1 => AdaptiveStrategy::RungEdgeRide,
                    _ => AdaptiveStrategy::Collude {
                        group: count as u32,
                        // Distinct slots: generated collusion rotates
                        // the burster. The synchronized worst case is
                        // pinned by [`AdaptivePlan::colluding`].
                        slot: i as u32,
                    },
                };
                AdaptiveAttacker { name, strategy }
            })
            .collect();
        AdaptivePlan {
            seed,
            arm_tick,
            disarm_tick: arm_tick + duration,
            attackers,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.attackers.is_empty()
    }

    /// The sorted, deduplicated roster of attacker names.
    pub fn attacker_names(&self) -> Vec<String> {
        let mut out: Vec<String> = self.attackers.iter().map(|a| a.name.clone()).collect();
        out.sort();
        out.dedup();
        out
    }
}

impl StateHash for AdaptivePlan {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u64(self.seed);
        h.write_u64(self.arm_tick);
        h.write_u64(self.disarm_tick);
        h.write_usize(self.attackers.len());
        for a in &self.attackers {
            a.state_hash(h);
        }
    }
}

/// What one attacker observed about its *own* previous tick — exactly
/// the feedback a real hostile tenant gets back through the SDK
/// surface: which of its transactions were admitted or rejected, and
/// whether the ladder currently holds it suspended. Nothing here is
/// defender-private state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttackerObservation {
    /// The tick being planned (collusion phases key off it).
    pub tick: u64,
    /// Transactions this attacker sent last tick.
    pub sent: u64,
    /// ...of which the driver admitted.
    pub admitted: u64,
    /// ...and rejected (throttled on any dimension).
    pub rejected: u64,
    /// Whether the SDK currently reports this tenant suspended.
    pub suspended: bool,
}

/// The load one brain chose for the next tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackerCommand {
    /// Binder transactions to issue this tick.
    pub txns: u32,
    /// Wire size of each, bytes.
    pub wire_size: u64,
}

/// One attacker's feedback policy: give it the previous tick's
/// [`AttackerObservation`], get the next tick's [`AttackerCommand`].
/// All randomness comes from the brain's own adversary substream.
#[derive(Debug, Clone)]
pub struct AttackerBrain {
    strategy: AdaptiveStrategy,
    rng: rand::rngs::SmallRng,
    /// Learned per-tick refill quantum (what a steady send admits).
    quantum: u64,
    /// Learned bucket capacity (what a post-save burst admits).
    bank: u64,
    /// What the brain commanded last tick (to attribute rejections
    /// to the bank or the quantum estimate).
    last_cmd: u64,
    /// Rejections accumulated over the campaign (the rung-edge
    /// rider's ladder-distance estimate).
    cum_rejected: u64,
    /// Whether any rejection has been observed yet (before the first
    /// one there is no evidence a budget is armed at all).
    edge_seen: bool,
}

impl AttackerBrain {
    /// Builds the brain for roster index `index` of a plan seeded
    /// `plan_seed`. Each index gets its own adversary substream, so
    /// adding an attacker never shifts another's draws.
    pub fn new(plan_seed: u64, index: u64, strategy: AdaptiveStrategy) -> AttackerBrain {
        AttackerBrain {
            strategy,
            rng: androne_simkern::adversary_stream_rng(plan_seed, index),
            quantum: 0,
            bank: 0,
            last_cmd: 0,
            cum_rejected: 0,
            edge_seen: false,
        }
    }

    /// The strategy this brain runs.
    pub fn strategy(&self) -> AdaptiveStrategy {
        self.strategy
    }

    /// The learned per-tick quantum so far (0 = not learned).
    pub fn learned_quantum(&self) -> u64 {
        self.quantum
    }

    /// Digests feedback and picks the next tick's load.
    pub fn plan_tick(&mut self, obs: &AttackerObservation) -> AttackerCommand {
        // Learn from the admission boundary whenever it was visible:
        // a tick with both admissions and rejections measured the
        // bucket exactly. A burst well above the quantum estimate
        // measured the bank; anything else measured the quantum
        // (including a halved quantum after a ladder step — admitted
        // simply comes back smaller and the estimate follows).
        if obs.admitted > 0 && obs.rejected > 0 {
            if self.edge_seen && self.last_cmd > self.quantum.max(1) * 3 / 2 {
                self.bank = obs.admitted;
            } else {
                self.quantum = obs.admitted;
                self.bank = self.bank.max(obs.admitted);
            }
            self.edge_seen = true;
        }
        self.cum_rejected += obs.rejected;
        if obs.suspended {
            // The ladder holds this tenant suspended: go fully quiet
            // so the hysteresis decay (if the defender runs one)
            // steps it back down. An attacker that keeps pushing
            // while suspended only walks toward revocation.
            self.last_cmd = 0;
            return AttackerCommand {
                txns: 0,
                wire_size: ADAPTIVE_WIRE_SIZE,
            };
        }
        let txns = match self.strategy {
            AdaptiveStrategy::RefillProbe => {
                if self.quantum == 0 {
                    // No boundary seen yet: slam until it shows.
                    320 + self.rng.gen_range(0..64u64)
                } else {
                    // Ride the learned quantum with a small probe on
                    // top; under refill jitter the quantum drifts and
                    // the probe keeps re-finding (and paying for) the
                    // edge.
                    self.quantum + self.rng.gen_range(0..4u64)
                }
            }
            AdaptiveStrategy::RungEdgeRide => {
                let quantum = if self.quantum > 0 {
                    self.quantum
                } else {
                    PRIOR_QUANTUM
                };
                let budget = PRIOR_HALVE_AFTER
                    .saturating_sub(RUNG_SAFETY)
                    .saturating_sub(self.cum_rejected);
                if budget > 0 {
                    // Overshoot by at most the remaining rejection
                    // budget: every rejection spends ladder distance.
                    quantum + budget.min(48 + self.rng.gen_range(0..16u64))
                } else {
                    // Budget spent: glide exactly at the quantum.
                    quantum
                }
            }
            AdaptiveStrategy::Collude { slot, .. } => {
                let quantum = if self.quantum > 0 { self.quantum } else { PRIOR_QUANTUM };
                let bank = if self.bank > 0 { self.bank } else { PRIOR_BANK };
                match (obs.tick + u64::from(slot)) % 3 {
                    // Save: bank a refill quantum.
                    0 => 0,
                    // Burst: dump the bank (plus a boundary probe).
                    1 => bank + self.rng.gen_range(0..8u64),
                    // Glide: exactly the refill quantum.
                    _ => quantum,
                }
            }
        };
        // No budget ever bit: settle on a heavy steady load rather
        // than ramping unboundedly (keeps unenforced runs finite).
        let txns = if !self.edge_seen && txns == 0 {
            0
        } else if !self.edge_seen {
            txns.max(FALLBACK_STEADY)
        } else {
            txns
        };
        self.last_cmd = txns;
        AttackerCommand {
            txns: u32::try_from(txns).unwrap_or(u32::MAX),
            wire_size: ADAPTIVE_WIRE_SIZE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_roster_bound() {
        let roster = vec!["vd1".to_string(), "vd2".to_string(), "vd3".to_string()];
        let a = AdaptivePlan::generate(42, 120, &roster);
        let b = AdaptivePlan::generate(42, 120, &roster);
        assert_eq!(a, b);
        assert_eq!(a.hash_value(), b.hash_value());
        assert_ne!(a, AdaptivePlan::generate(43, 120, &roster));
        assert!(!a.is_empty());
        for att in &a.attackers {
            assert!(roster.contains(&att.name));
        }
        assert!(a.arm_tick >= 2 && a.disarm_tick > a.arm_tick);
        assert!(AdaptivePlan::generate(42, 120, &[]).is_empty());
    }

    #[test]
    fn seed_sweep_reaches_every_strategy() {
        let roster = vec!["vd1".to_string(), "vd2".to_string(), "vd3".to_string()];
        let mut seen = [false; AdaptiveStrategy::COUNT];
        for seed in 0..256 {
            for a in &AdaptivePlan::generate(seed, 120, &roster).attackers {
                seen[a.strategy.tag() as usize] = true;
            }
        }
        for (tag, hit) in seen.iter().enumerate() {
            assert!(hit, "strategy tag {tag} never drawn across 256 seeds");
        }
    }

    #[test]
    fn refill_probe_learns_the_quantum_from_feedback() {
        let mut brain = AttackerBrain::new(7, 0, AdaptiveStrategy::RefillProbe);
        // Tick 0: nothing known, the brain slams.
        let cmd = brain.plan_tick(&AttackerObservation { tick: 0, ..Default::default() });
        assert!(cmd.txns >= 320, "probe phase should slam: {}", cmd.txns);
        // Feedback: 120 admitted, the rest rejected — the boundary.
        let cmd = brain.plan_tick(&AttackerObservation {
            tick: 1,
            sent: u64::from(cmd.txns),
            admitted: 120,
            rejected: u64::from(cmd.txns) - 120,
            suspended: false,
        });
        assert!(
            (120..140).contains(&cmd.txns),
            "brain should ride the learned quantum: {}",
            cmd.txns
        );
        assert_eq!(brain.learned_quantum(), 120);
        // A halved quantum is re-learned the same way.
        let cmd = brain.plan_tick(&AttackerObservation {
            tick: 2,
            sent: u64::from(cmd.txns),
            admitted: 60,
            rejected: u64::from(cmd.txns) - 60,
            suspended: false,
        });
        assert!((60..80).contains(&cmd.txns), "re-learn after halving: {}", cmd.txns);
    }

    #[test]
    fn suspended_brains_go_quiet() {
        for strategy in [
            AdaptiveStrategy::RefillProbe,
            AdaptiveStrategy::RungEdgeRide,
            AdaptiveStrategy::Collude { group: 3, slot: 0 },
        ] {
            let mut brain = AttackerBrain::new(7, 0, strategy);
            let cmd = brain.plan_tick(&AttackerObservation {
                tick: 4,
                suspended: true,
                ..Default::default()
            });
            assert_eq!(cmd.txns, 0, "{} must go quiet when suspended", strategy.name());
        }
    }

    #[test]
    fn rung_edge_rider_spends_a_bounded_rejection_budget() {
        let mut brain = AttackerBrain::new(7, 0, AdaptiveStrategy::RungEdgeRide);
        let mut cum = 0u64;
        let mut obs = AttackerObservation { tick: 0, ..Default::default() };
        for tick in 0..64 {
            let cmd = brain.plan_tick(&obs);
            let sent = u64::from(cmd.txns);
            // Driver model: admit exactly 120/tick, reject the rest.
            let admitted = sent.min(120);
            let rejected = sent - admitted;
            cum += rejected;
            obs = AttackerObservation {
                tick: tick + 1,
                sent,
                admitted,
                rejected,
                suspended: false,
            };
        }
        assert!(
            cum < PRIOR_HALVE_AFTER,
            "the rider crossed the halving threshold it was avoiding: {cum}"
        );
        assert!(cum > 0, "the rider never rode the edge at all");
    }

    #[test]
    fn synchronized_colluders_cycle_save_burst_glide() {
        let roster = vec!["vd1".to_string(), "vd2".to_string(), "vd3".to_string()];
        let plan = AdaptivePlan::colluding(&roster, 2, 40);
        assert_eq!(plan.attackers.len(), 3);
        let mut brains: Vec<AttackerBrain> = plan
            .attackers
            .iter()
            .enumerate()
            .map(|(i, a)| AttackerBrain::new(plan.seed, i as u64, a.strategy))
            .collect();
        // All slots equal: on every tick the three commands agree to
        // within the burst probe jitter, and across a cycle the
        // phases are save(0) / burst / glide.
        let mut by_phase = [0u64; 3];
        for tick in 0..9 {
            let cmds: Vec<u32> = brains
                .iter_mut()
                .map(|b| {
                    b.plan_tick(&AttackerObservation { tick, ..Default::default() }).txns
                })
                .collect();
            let spread = cmds.iter().max().unwrap() - cmds.iter().min().unwrap();
            assert!(spread < 8, "synchronized group diverged: {cmds:?}");
            by_phase[(tick % 3) as usize] = u64::from(cmds[0]);
        }
        assert_eq!(by_phase[0], 0, "save phase must be silent");
        assert!(
            by_phase[1] > by_phase[2] && by_phase[2] > 0,
            "burst must exceed glide: {by_phase:?}"
        );
    }

    #[test]
    fn brains_are_deterministic_per_substream() {
        let run = || {
            let mut brain = AttackerBrain::new(9, 2, AdaptiveStrategy::RefillProbe);
            (0..16)
                .map(|tick| {
                    brain
                        .plan_tick(&AttackerObservation { tick, ..Default::default() })
                        .txns
                })
                .collect::<Vec<u32>>()
        };
        assert_eq!(run(), run());
        // A different roster index draws a different probe sequence.
        let mut other = AttackerBrain::new(9, 3, AdaptiveStrategy::RefillProbe);
        let first: Vec<u32> = (0..16)
            .map(|tick| {
                other
                    .plan_tick(&AttackerObservation { tick, ..Default::default() })
                    .txns
            })
            .collect();
        assert_ne!(run(), first);
    }
}
