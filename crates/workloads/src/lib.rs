//! # androne-workloads
//!
//! The evaluation workloads of the paper's Section 6, rebuilt over
//! the simulated kernel:
//!
//! - [`passmark`]: the PassMark PerformanceTest CPU/disk/memory model
//!   (Figure 10).
//! - [`cyclictest`]: the real-time wakeup-latency benchmark, run as
//!   the flight controller runs (Figure 11).
//! - [`stress`]: the `stress` generator and iperf (worst-case load
//!   scenarios, network throughput).
//! - [`attacks`]: deterministic adversarial-tenant attack plans
//!   (Binder floods, parcel bombs, telemetry storms, CPU saturation,
//!   fd exhaustion) mirroring `simkern::faults`.
//! - [`adaptive`]: closed-loop adversaries — attacker brains that
//!   re-plan each tick from their own admission feedback (refill
//!   probing, rung-edge riding, collusion).

pub mod adaptive;
pub mod attacks;
pub mod cyclictest;
pub mod passmark;
pub mod stress;

pub use adaptive::{
    AdaptiveAttacker, AdaptivePlan, AdaptiveStrategy, AttackerBrain, AttackerCommand,
    AttackerObservation, ADAPTIVE_WIRE_SIZE,
};
pub use attacks::{AttackClock, AttackEvent, AttackKind, AttackPlan, AttackTransition};
pub use cyclictest::{run as run_cyclictest, CyclictestResult, ARDUPILOT_DEADLINE_US};
pub use passmark::{run_concurrent, stock_baseline, PassmarkScores, CONTAINER_OVERHEAD};
pub use stress::{start_stress, Iperf, StressConfig, StressHandle};
