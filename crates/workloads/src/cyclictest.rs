//! The cyclictest latency benchmark.
//!
//! Configured exactly as the paper runs it (Section 6.2): memory
//! locked, highest SCHED_FIFO priority, a timer thread whose wakeup
//! latency is measured on every loop; 100 million loops in the
//! full-fidelity run "to provide sufficient samples to have a high
//! confidence in encountering worst case latencies".

use androne_simkern::{
    ContainerId, Euid, Kernel, LogHistogram, SchedPolicy, SimDuration, Summary,
};

/// Result of a cyclictest run.
#[derive(Debug, Clone)]
pub struct CyclictestResult {
    /// Streaming summary of latencies in microseconds.
    pub summary: Summary,
    /// Log-bucketed histogram (for Figure 11's log-log plot).
    pub histogram: LogHistogram,
    /// Number of samples exceeding ArduPilot's 2500 µs fast-loop
    /// budget.
    pub deadline_misses: u64,
}

impl CyclictestResult {
    /// Average latency, µs.
    pub fn avg_us(&self) -> f64 {
        self.summary.mean()
    }

    /// Maximum latency, µs.
    pub fn max_us(&self) -> f64 {
        self.summary.max()
    }
}

/// ArduPilot's fast loop period at 400 Hz, µs.
pub const ARDUPILOT_DEADLINE_US: f64 = 2_500.0;

/// Runs cyclictest for `loops` iterations in `container` on the
/// given kernel. Interference sources must already be registered on
/// the kernel (via [`Kernel::add_interference`]).
pub fn run(kernel: &mut Kernel, container: ContainerId, loops: u64) -> CyclictestResult {
    // Cyclictest runs as the flight controller does: locked memory,
    // top FIFO priority. A full task table degrades to sampling
    // without the pinned task rather than aborting the benchmark.
    let pid = kernel
        .tasks
        .spawn("cyclictest", Euid(0), container, SchedPolicy::MAX_RT)
        .ok();
    if let Some(pid) = pid {
        if let Some(task) = kernel.tasks.get_mut(pid) {
            task.mlocked = true;
        }
    }

    let mut summary = Summary::new();
    let mut histogram = LogHistogram::new(1.0, 100_000.0, 10);
    let mut deadline_misses = 0;
    for _ in 0..loops {
        let us = kernel.sample_rt_latency().as_micros_f64();
        summary.record(us);
        histogram.record(us);
        if us > ARDUPILOT_DEADLINE_US {
            deadline_misses += 1;
        }
    }
    if let Some(pid) = pid {
        let _ = kernel.tasks.kill(pid);
        kernel.tasks.reap();
    }

    // Account the simulated wall time of the run (1 ms interval per
    // loop, cyclictest's default -i 1000).
    kernel.advance(SimDuration::from_micros(1_000) * loops);

    CyclictestResult {
        summary,
        histogram,
        deadline_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use androne_simkern::latency::profiles;
    use androne_simkern::KernelConfig;

    const LOOPS: u64 = 300_000;

    fn run_with(config: KernelConfig, load: Option<fn() -> androne_simkern::InterferenceSource>) -> CyclictestResult {
        let mut kernel = Kernel::boot(config, 11);
        if let Some(load) = load {
            kernel.add_interference(load());
        }
        run(&mut kernel, ContainerId(2), LOOPS)
    }

    #[test]
    fn rt_idle_matches_paper_band() {
        // Paper: PREEMPT_RT idle avg 10 µs, max 103 µs.
        let r = run_with(KernelConfig::ANDRONE_DEFAULT, None);
        assert!((7.0..14.0).contains(&r.avg_us()), "avg {}", r.avg_us());
        assert!(r.max_us() < 120.0, "max {}", r.max_us());
        assert_eq!(r.deadline_misses, 0);
    }

    #[test]
    fn preempt_stress_shows_millisecond_tail() {
        // Paper: PREEMPT stress avg 162 µs, max 17,819 µs.
        let r = run_with(KernelConfig::NAVIO2_DEFAULT, Some(profiles::stress_load));
        assert!(r.avg_us() > 100.0, "avg {}", r.avg_us());
        assert!(r.max_us() > 5_000.0, "max {}", r.max_us());
        assert!(r.deadline_misses > 0, "PREEMPT misses the fast loop");
    }

    #[test]
    fn rt_stress_meets_ardupilot_deadline() {
        let r = run_with(KernelConfig::ANDRONE_DEFAULT, Some(profiles::stress_load));
        assert!(r.max_us() < ARDUPILOT_DEADLINE_US, "max {}", r.max_us());
        assert_eq!(r.deadline_misses, 0);
    }

    #[test]
    fn histogram_covers_all_samples() {
        let r = run_with(KernelConfig::NAVIO2_DEFAULT, Some(profiles::passmark_load));
        assert_eq!(r.histogram.total(), LOOPS);
    }

    #[test]
    fn run_advances_simulated_time_and_cleans_up() {
        let mut kernel = Kernel::boot(KernelConfig::ANDRONE_DEFAULT, 1);
        let t0 = kernel.now();
        run(&mut kernel, ContainerId(2), 1_000);
        assert_eq!((kernel.now() - t0).as_millis(), 1_000);
        assert_eq!(kernel.tasks.len(), 0, "cyclictest task reaped");
    }
}
