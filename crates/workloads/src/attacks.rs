//! Deterministic adversarial-tenant attack plans.
//!
//! An [`AttackPlan`] is the hostile twin of
//! [`androne_simkern::FaultPlan`]: a seeded schedule of typed
//! denial-of-service attempts a co-tenant launches against the shared
//! board. Each event arms at an exact observer tick and disarms at a
//! later one; plans are generated from the dedicated attack RNG
//! stream ([`androne_simkern::attack_stream_rng`]) so:
//!
//! - the same `(seed, horizon, attackers)` always yields the same
//!   plan, and
//! - building or running an **empty** plan consumes zero draws from
//!   the kernel or board RNG streams — a flight with no adversary is
//!   byte-identical to a flight on a build with no attack machinery.
//!
//! The plan is pure data; it knows nothing about drones or Binder.
//! An [`AttackClock`] walks the schedule tick by tick and reports
//! which events arm or disarm, and the consumer (the attack injector
//! in the core crate) maps each [`AttackKind`] onto the simulated
//! system: Binder transaction floods and parcel bombs hit the
//! driver's per-tenant QoS budgets, CPU saturation hits the
//! cgroup-style bandwidth caps, fd exhaustion hits the fd budget,
//! telemetry storms hit the subscription budget. Everything hashes
//! through [`StateHash`] so armed attacks are part of the dual-run
//! determinism check.

use rand::rngs::SmallRng;
use rand::Rng;

use androne_simkern::statehash::{StateHash, StateHasher};

/// A typed denial-of-service attempt an adversarial tenant can mount.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackKind {
    /// The tenant issues `per_tick` Binder transactions per observer
    /// tick, trying to starve the flight loop of driver time.
    BinderFlood { per_tick: u32 },
    /// The tenant sends oversized parcels of `wire_size` bytes,
    /// trying to blow the per-transaction copy budget.
    ParcelBomb { wire_size: u64 },
    /// The tenant opens `subscribers` telemetry subscriptions at
    /// once, multiplying every telemetry fan-out.
    TelemetryStorm { subscribers: u32 },
    /// The tenant spins busy loops demanding `demand` cores' worth of
    /// CPU, trying to saturate the shared quota.
    CpuSaturation { demand: f64 },
    /// The tenant installs `per_tick` file descriptors per tick into
    /// its Binder process, trying to exhaust the fd table.
    FdExhaustion { per_tick: u32 },
}

impl AttackKind {
    /// Number of distinct kinds (seed-sweep coverage arrays).
    pub const COUNT: usize = 5;

    /// Stable discriminant for hashing and coverage accounting.
    pub fn tag(self) -> u8 {
        match self {
            AttackKind::BinderFlood { .. } => 0,
            AttackKind::ParcelBomb { .. } => 1,
            AttackKind::TelemetryStorm { .. } => 2,
            AttackKind::CpuSaturation { .. } => 3,
            AttackKind::FdExhaustion { .. } => 4,
        }
    }

    /// Short human-readable name (trace events, counters).
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::BinderFlood { .. } => "binder-flood",
            AttackKind::ParcelBomb { .. } => "parcel-bomb",
            AttackKind::TelemetryStorm { .. } => "telemetry-storm",
            AttackKind::CpuSaturation { .. } => "cpu-saturation",
            AttackKind::FdExhaustion { .. } => "fd-exhaustion",
        }
    }

    /// The interference-source name the injector registers on the
    /// kernel's latency model while this attack runs unthrottled.
    /// Removal by name on the throttle edge must find exactly the
    /// sources this attack added, so names are per-kind statics.
    pub fn source_name(self) -> &'static str {
        match self {
            AttackKind::BinderFlood { .. } => "attack:binder-flood",
            AttackKind::ParcelBomb { .. } => "attack:parcel-bomb",
            AttackKind::TelemetryStorm { .. } => "attack:telemetry-storm",
            AttackKind::CpuSaturation { .. } => "attack:cpu-saturation",
            AttackKind::FdExhaustion { .. } => "attack:fd-exhaustion",
        }
    }
}

impl StateHash for AttackKind {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u8(self.tag());
        match self {
            AttackKind::BinderFlood { per_tick } | AttackKind::FdExhaustion { per_tick } => {
                h.write_u32(*per_tick);
            }
            AttackKind::ParcelBomb { wire_size } => h.write_u64(*wire_size),
            AttackKind::TelemetryStorm { subscribers } => h.write_u32(*subscribers),
            AttackKind::CpuSaturation { demand } => h.write_f64(*demand),
        }
    }
}

/// One scheduled attack: `attacker` (the hostile tenant's virtual
/// drone name) mounts `kind` from `arm_tick` (inclusive) until
/// `disarm_tick` (exclusive). Ticks are the per-second observer ticks
/// of the flight loop.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackEvent {
    pub kind: AttackKind,
    pub attacker: String,
    pub arm_tick: u64,
    pub disarm_tick: u64,
}

impl StateHash for AttackEvent {
    fn state_hash(&self, h: &mut StateHasher) {
        self.kind.state_hash(h);
        h.write_str(&self.attacker);
        h.write_u64(self.arm_tick);
        h.write_u64(self.disarm_tick);
    }
}

/// A seeded schedule of attacks over one flight.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackPlan {
    /// The seed the plan was generated from (0 for hand-built plans).
    pub seed: u64,
    /// Events in generation order; overlaps are allowed.
    pub events: Vec<AttackEvent>,
}

impl AttackPlan {
    /// A plan with no events. Running it must not perturb anything.
    pub fn empty() -> AttackPlan {
        AttackPlan { seed: 0, events: Vec::new() }
    }

    /// A plan with exactly one event, for targeted tests.
    pub fn single(
        kind: AttackKind,
        attacker: impl Into<String>,
        arm_tick: u64,
        disarm_tick: u64,
    ) -> AttackPlan {
        AttackPlan {
            seed: 0,
            events: vec![AttackEvent {
                kind,
                attacker: attacker.into(),
                arm_tick,
                disarm_tick,
            }],
        }
    }

    /// Generates a random plan for a flight of `horizon_ticks`
    /// seconds from the dedicated attack RNG stream seeded by `seed`
    /// alone. `attackers` is the roster of hostile tenants; each
    /// event draws its attacker from it (an empty roster falls back
    /// to a fixed name so generation stays total).
    pub fn generate(seed: u64, horizon_ticks: u64, attackers: &[String]) -> AttackPlan {
        let mut rng = androne_simkern::attack_stream_rng(seed);
        let horizon = horizon_ticks.max(12);
        let count = rng.gen_range(1..=3);
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let kind = match rng.gen_range(0..5u32) {
                0 => AttackKind::BinderFlood { per_tick: rng.gen_range(200..=800) },
                1 => AttackKind::ParcelBomb {
                    wire_size: rng.gen_range(262_144..=2_097_152),
                },
                2 => AttackKind::TelemetryStorm { subscribers: rng.gen_range(64..=512) },
                3 => AttackKind::CpuSaturation { demand: rng.gen_range(4.0..16.0) },
                _ => AttackKind::FdExhaustion { per_tick: rng.gen_range(32..=128) },
            };
            // Arm within the first three quarters so the attack has
            // airtime; windows are long enough that the escalation
            // ladder (throttle -> suspend -> revoke) can climb.
            let arm_tick = rng.gen_range(4..horizon * 3 / 4);
            let duration = rng.gen_range(5u64..=20);
            events.push(AttackEvent {
                kind,
                attacker: Self::pick_attacker(&mut rng, attackers),
                arm_tick,
                disarm_tick: arm_tick + duration,
            });
        }
        AttackPlan { seed, events }
    }

    /// Draws an attacker from the roster; the fixed fallback name
    /// keeps hand-run plans total when no roster is supplied.
    /// Drawing only on a non-empty roster keeps the no-roster draw
    /// sequence independent of roster size.
    fn pick_attacker(rng: &mut SmallRng, attackers: &[String]) -> String {
        if attackers.is_empty() {
            "vd-attacker".to_string()
        } else {
            attackers
                .get(rng.gen_range(0..attackers.len()))
                .cloned()
                .unwrap_or_else(|| "vd-attacker".to_string())
        }
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The tick after which no event is armed any more.
    pub fn last_disarm_tick(&self) -> u64 {
        self.events.iter().map(|e| e.disarm_tick).max().unwrap_or(0)
    }

    /// The sorted, deduplicated set of tenants named as attackers
    /// anywhere in the plan.
    pub fn attackers(&self) -> Vec<String> {
        let mut out: Vec<String> =
            self.events.iter().map(|e| e.attacker.clone()).collect();
        out.sort();
        out.dedup();
        out
    }
}

impl StateHash for AttackPlan {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u64(self.seed);
        h.write_usize(self.events.len());
        for e in &self.events {
            e.state_hash(h);
        }
    }
}

/// A transition reported by the [`AttackClock`]: event `index` of the
/// plan armed (`armed == true`) or disarmed at the queried tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackTransition {
    pub index: usize,
    pub armed: bool,
}

/// Walks an [`AttackPlan`] tick by tick, reporting arm/disarm edges.
#[derive(Debug, Clone)]
pub struct AttackClock {
    plan: AttackPlan,
    active: Vec<bool>,
}

impl AttackClock {
    pub fn new(plan: AttackPlan) -> AttackClock {
        let active = vec![false; plan.events.len()];
        AttackClock { plan, active }
    }

    pub fn plan(&self) -> &AttackPlan {
        &self.plan
    }

    /// Whether event `index` is currently armed.
    pub fn is_armed(&self, index: usize) -> bool {
        self.active.get(index).copied().unwrap_or(false)
    }

    /// Advances the clock to `tick` and returns the edges that fire
    /// there, in plan order. Skipped ticks still deliver their edges
    /// on the next query.
    pub fn transitions_at(&mut self, tick: u64) -> Vec<AttackTransition> {
        let mut out = Vec::new();
        for (i, e) in self.plan.events.iter().enumerate() {
            let should_be_armed = tick >= e.arm_tick && tick < e.disarm_tick;
            if should_be_armed != self.active[i] {
                self.active[i] = should_be_armed;
                out.push(AttackTransition { index: i, armed: should_be_armed });
            }
        }
        out
    }
}

impl StateHash for AttackClock {
    fn state_hash(&self, h: &mut StateHasher) {
        self.plan.state_hash(h);
        for a in &self.active {
            h.write_bool(*a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let roster = vec!["vd-evil".to_string()];
        let a = AttackPlan::generate(42, 120, &roster);
        let b = AttackPlan::generate(42, 120, &roster);
        assert_eq!(a, b);
        assert_eq!(a.hash_value(), b.hash_value());
        let c = AttackPlan::generate(43, 120, &roster);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn generated_events_fit_the_horizon() {
        let roster = vec!["vd-evil".to_string()];
        for seed in 0..64 {
            let plan = AttackPlan::generate(seed, 120, &roster);
            assert!(
                (1..=3).contains(&plan.events.len()),
                "seed {seed}: {} events",
                plan.events.len()
            );
            for e in &plan.events {
                assert!(e.arm_tick >= 4);
                assert!(e.disarm_tick > e.arm_tick);
                assert!(e.arm_tick < 120 * 3 / 4);
                assert_eq!(e.attacker, "vd-evil");
            }
        }
    }

    #[test]
    fn seed_sweep_reaches_every_attack_kind() {
        let roster = vec!["vd-evil".to_string()];
        let mut seen = [false; AttackKind::COUNT];
        for seed in 0..512 {
            for e in &AttackPlan::generate(seed, 120, &roster).events {
                seen[e.kind.tag() as usize] = true;
            }
        }
        for (tag, hit) in seen.iter().enumerate() {
            assert!(hit, "AttackKind tag {tag} never drawn across 512 seeds");
        }
    }

    #[test]
    fn attackers_are_drawn_from_the_roster() {
        let roster = vec!["vd-a".to_string(), "vd-b".to_string(), "vd-c".to_string()];
        let mut named: std::collections::BTreeSet<String> = Default::default();
        for seed in 0..256 {
            for e in &AttackPlan::generate(seed, 120, &roster).events {
                assert!(roster.contains(&e.attacker), "unknown attacker {}", e.attacker);
                named.insert(e.attacker.clone());
            }
        }
        assert!(named.len() > 1, "roster draw never varied across 256 seeds");
    }

    #[test]
    fn empty_roster_falls_back_to_fixed_attacker() {
        for seed in 0..32 {
            for e in &AttackPlan::generate(seed, 120, &[]).events {
                assert_eq!(e.attacker, "vd-attacker");
            }
        }
    }

    #[test]
    fn source_names_are_distinct_per_kind() {
        let kinds = [
            AttackKind::BinderFlood { per_tick: 1 },
            AttackKind::ParcelBomb { wire_size: 1 },
            AttackKind::TelemetryStorm { subscribers: 1 },
            AttackKind::CpuSaturation { demand: 1.0 },
            AttackKind::FdExhaustion { per_tick: 1 },
        ];
        let names: std::collections::BTreeSet<&str> =
            kinds.iter().map(|k| k.source_name()).collect();
        assert_eq!(names.len(), AttackKind::COUNT);
        for k in kinds {
            assert!(k.source_name().starts_with("attack:"));
        }
    }

    #[test]
    fn clock_reports_arm_and_disarm_edges() {
        let plan =
            AttackPlan::single(AttackKind::BinderFlood { per_tick: 400 }, "vd-evil", 10, 20);
        let mut clock = AttackClock::new(plan);
        assert!(clock.transitions_at(9).is_empty());
        assert_eq!(
            clock.transitions_at(10),
            vec![AttackTransition { index: 0, armed: true }]
        );
        assert!(clock.transitions_at(15).is_empty());
        assert!(clock.is_armed(0));
        assert_eq!(
            clock.transitions_at(20),
            vec![AttackTransition { index: 0, armed: false }]
        );
        assert!(!clock.is_armed(0));
        assert!(clock.transitions_at(21).is_empty());
    }

    #[test]
    fn empty_plan_never_transitions() {
        let mut clock = AttackClock::new(AttackPlan::empty());
        for tick in 0..300 {
            assert!(clock.transitions_at(tick).is_empty());
        }
        assert!(clock.plan().is_empty());
        assert_eq!(clock.plan().last_disarm_tick(), 0);
    }

    #[test]
    fn clock_handles_skipped_ticks() {
        // A flight that ends early may jump the clock past windows;
        // the disarm edge still fires on the next query.
        let plan =
            AttackPlan::single(AttackKind::CpuSaturation { demand: 8.0 }, "vd-evil", 5, 8);
        let mut clock = AttackClock::new(plan);
        assert_eq!(clock.transitions_at(6).len(), 1);
        assert_eq!(clock.transitions_at(30).len(), 1);
        assert!(!clock.is_armed(0));
    }

    #[test]
    fn plans_hash_their_events() {
        let a = AttackPlan::single(AttackKind::ParcelBomb { wire_size: 1 << 20 }, "vd-x", 5, 9);
        let b = AttackPlan::single(AttackKind::ParcelBomb { wire_size: 1 << 21 }, "vd-x", 5, 9);
        assert_ne!(a.hash_value(), b.hash_value());
        let c = AttackPlan::single(AttackKind::ParcelBomb { wire_size: 1 << 20 }, "vd-y", 5, 9);
        assert_ne!(a.hash_value(), c.hash_value());
    }
}
