//! Simulated tasks (processes/threads).
//!
//! Tasks carry the identity that the Binder driver and the VDC rely
//! on: a PID, an effective UID, an optional owning container, and a
//! scheduling policy. The table mirrors the parts of the Linux task
//! struct that AnDrone's mechanisms observe.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::KernelError;
use crate::statehash::{StateHash, StateHasher};

/// A process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

/// An effective user id, as carried in Binder transaction data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Euid(pub u32);

/// Identifier of the container a task runs in.
///
/// The host itself is represented by [`ContainerId::HOST`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContainerId(pub u32);

impl ContainerId {
    /// The host (init) container identifier, i.e. no container.
    pub const HOST: ContainerId = ContainerId(0);
}

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == ContainerId::HOST {
            write!(f, "host")
        } else {
            write!(f, "ctr:{}", self.0)
        }
    }
}

/// Linux-style scheduling policy for a simulated task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// SCHED_OTHER with a nice value in `-20..=19`.
    Normal { nice: i8 },
    /// SCHED_FIFO with a real-time priority in `1..=99`.
    Fifo { rt_prio: u8 },
    /// SCHED_RR with a real-time priority in `1..=99`.
    RoundRobin { rt_prio: u8 },
}

impl SchedPolicy {
    /// The default timesharing policy.
    pub const DEFAULT: SchedPolicy = SchedPolicy::Normal { nice: 0 };

    /// The highest available real-time FIFO priority, used by the
    /// flight controller's fast loop and by cyclictest.
    pub const MAX_RT: SchedPolicy = SchedPolicy::Fifo { rt_prio: 99 };

    /// Returns `true` for real-time policies (SCHED_FIFO / SCHED_RR).
    pub fn is_realtime(self) -> bool {
        matches!(
            self,
            SchedPolicy::Fifo { .. } | SchedPolicy::RoundRobin { .. }
        )
    }

    /// Returns the real-time priority, or 0 for normal tasks.
    pub fn rt_priority(self) -> u8 {
        match self {
            SchedPolicy::Fifo { rt_prio } | SchedPolicy::RoundRobin { rt_prio } => rt_prio,
            SchedPolicy::Normal { .. } => 0,
        }
    }

    /// Validates the policy parameters.
    pub fn validate(self) -> Result<(), KernelError> {
        match self {
            SchedPolicy::Normal { nice } if !(-20..=19).contains(&nice) => {
                Err(KernelError::InvalidArgument("nice out of range".into()))
            }
            SchedPolicy::Fifo { rt_prio } | SchedPolicy::RoundRobin { rt_prio }
                if !(1..=99).contains(&rt_prio) =>
            {
                Err(KernelError::InvalidArgument("rt_prio out of range".into()))
            }
            _ => Ok(()),
        }
    }
}

/// Lifecycle state of a simulated task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Runnable or running.
    Running,
    /// Blocked waiting on an event.
    Sleeping,
    /// Terminated; kept in the table until reaped.
    Dead,
}

/// A simulated task record.
#[derive(Debug, Clone)]
pub struct Task {
    /// The task's process id.
    pub pid: Pid,
    /// Human-readable command name.
    pub name: String,
    /// Effective UID (Android app UIDs start at 10000).
    pub euid: Euid,
    /// Container the task belongs to.
    pub container: ContainerId,
    /// Scheduling policy.
    pub policy: SchedPolicy,
    /// Lifecycle state.
    pub state: TaskState,
    /// Whether the task has locked its memory (`mlockall`), as the
    /// flight controller and cyclictest do.
    pub mlocked: bool,
}

/// The kernel task table.
#[derive(Debug, Default)]
pub struct TaskTable {
    tasks: BTreeMap<Pid, Task>,
    next_pid: u32,
}

impl TaskTable {
    /// Creates an empty task table. PID 1 is the first allocation.
    pub fn new() -> Self {
        TaskTable {
            tasks: BTreeMap::new(),
            next_pid: 1,
        }
    }

    /// Spawns a new task and returns its PID.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        euid: Euid,
        container: ContainerId,
        policy: SchedPolicy,
    ) -> Result<Pid, KernelError> {
        policy.validate()?;
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.tasks.insert(
            pid,
            Task {
                pid,
                name: name.into(),
                euid,
                container,
                policy,
                state: TaskState::Running,
                mlocked: false,
            },
        );
        Ok(pid)
    }

    /// Looks up a task by PID.
    pub fn get(&self, pid: Pid) -> Option<&Task> {
        self.tasks.get(&pid)
    }

    /// Looks up a task mutably by PID.
    pub fn get_mut(&mut self, pid: Pid) -> Option<&mut Task> {
        self.tasks.get_mut(&pid)
    }

    /// Kills a task (marks it dead). Idempotent.
    pub fn kill(&mut self, pid: Pid) -> Result<(), KernelError> {
        match self.tasks.get_mut(&pid) {
            Some(t) => {
                t.state = TaskState::Dead;
                Ok(())
            }
            None => Err(KernelError::NoSuchTask(pid)),
        }
    }

    /// Removes dead tasks from the table, returning how many were
    /// reaped.
    pub fn reap(&mut self) -> usize {
        let before = self.tasks.len();
        self.tasks.retain(|_, t| t.state != TaskState::Dead);
        before - self.tasks.len()
    }

    /// Kills every live task belonging to `container`, returning the
    /// PIDs killed. Used when a container is stopped and when the VDC
    /// terminates processes that ignore device revocation.
    pub fn kill_container(&mut self, container: ContainerId) -> Vec<Pid> {
        let mut killed = Vec::new();
        for t in self.tasks.values_mut() {
            if t.container == container && t.state != TaskState::Dead {
                t.state = TaskState::Dead;
                killed.push(t.pid);
            }
        }
        killed
    }

    /// Iterates over live tasks.
    pub fn live(&self) -> impl Iterator<Item = &Task> {
        self.tasks.values().filter(|t| t.state != TaskState::Dead)
    }

    /// Iterates over live tasks in a container.
    pub fn in_container(&self, container: ContainerId) -> impl Iterator<Item = &Task> {
        self.live().filter(move |t| t.container == container)
    }

    /// Number of live tasks.
    pub fn len(&self) -> usize {
        self.live().count()
    }

    /// Returns `true` when no live tasks exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl StateHash for SchedPolicy {
    fn state_hash(&self, h: &mut StateHasher) {
        match self {
            SchedPolicy::Normal { nice } => {
                h.write_u8(0);
                h.write_i64(i64::from(*nice));
            }
            SchedPolicy::Fifo { rt_prio } => {
                h.write_u8(1);
                h.write_u8(*rt_prio);
            }
            SchedPolicy::RoundRobin { rt_prio } => {
                h.write_u8(2);
                h.write_u8(*rt_prio);
            }
        }
    }
}

impl StateHash for Task {
    fn state_hash(&self, h: &mut StateHasher) {
        self.pid.state_hash(h);
        h.write_str(&self.name);
        self.euid.state_hash(h);
        self.container.state_hash(h);
        self.policy.state_hash(h);
        h.write_u8(match self.state {
            TaskState::Running => 0,
            TaskState::Sleeping => 1,
            TaskState::Dead => 2,
        });
        h.write_bool(self.mlocked);
    }
}

impl StateHash for TaskTable {
    fn state_hash(&self, h: &mut StateHasher) {
        // Dead-but-unreaped tasks are part of the state: a run that
        // reaped earlier than another has diverged.
        h.write_usize(self.tasks.len());
        for task in self.tasks.values() {
            task.state_hash(h);
        }
        h.write_u32(self.next_pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(n: usize, container: ContainerId) -> TaskTable {
        let mut t = TaskTable::new();
        for i in 0..n {
            t.spawn(format!("task{i}"), Euid(10_000), container, SchedPolicy::DEFAULT)
                .unwrap();
        }
        t
    }

    #[test]
    fn spawn_allocates_increasing_pids() {
        let mut t = TaskTable::new();
        let a = t
            .spawn("a", Euid(0), ContainerId::HOST, SchedPolicy::DEFAULT)
            .unwrap();
        let b = t
            .spawn("b", Euid(0), ContainerId::HOST, SchedPolicy::DEFAULT)
            .unwrap();
        assert!(b.0 > a.0);
        assert_eq!(a, Pid(1));
    }

    #[test]
    fn invalid_policies_are_rejected() {
        let mut t = TaskTable::new();
        assert!(t
            .spawn("x", Euid(0), ContainerId::HOST, SchedPolicy::Fifo { rt_prio: 0 })
            .is_err());
        assert!(t
            .spawn("x", Euid(0), ContainerId::HOST, SchedPolicy::Fifo { rt_prio: 100 })
            .is_err());
        assert!(t
            .spawn("x", Euid(0), ContainerId::HOST, SchedPolicy::Normal { nice: 42 })
            .is_err());
    }

    #[test]
    fn kill_container_only_touches_that_container() {
        let mut t = table_with(3, ContainerId(1));
        t.spawn("other", Euid(0), ContainerId(2), SchedPolicy::DEFAULT)
            .unwrap();
        let killed = t.kill_container(ContainerId(1));
        assert_eq!(killed.len(), 3);
        assert_eq!(t.in_container(ContainerId(1)).count(), 0);
        assert_eq!(t.in_container(ContainerId(2)).count(), 1);
    }

    #[test]
    fn reap_removes_dead_tasks() {
        let mut t = table_with(2, ContainerId(1));
        t.kill(Pid(1)).unwrap();
        assert_eq!(t.reap(), 1);
        assert_eq!(t.len(), 1);
        assert!(t.get(Pid(1)).is_none());
    }

    #[test]
    fn kill_missing_task_errors() {
        let mut t = TaskTable::new();
        assert!(matches!(t.kill(Pid(7)), Err(KernelError::NoSuchTask(_))));
    }

    #[test]
    fn rt_priority_accessor() {
        assert_eq!(SchedPolicy::MAX_RT.rt_priority(), 99);
        assert!(SchedPolicy::MAX_RT.is_realtime());
        assert!(!SchedPolicy::DEFAULT.is_realtime());
        assert_eq!(SchedPolicy::DEFAULT.rt_priority(), 0);
    }
}
