//! Generic discrete-event queue.
//!
//! The simulated kernel, the flight stack, and the workload models all
//! advance on the same virtual clock. `EventQueue` is a priority queue
//! of `(time, closure)` pairs with stable FIFO ordering for events
//! scheduled at the same instant, which keeps runs bit-for-bit
//! reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A closure scheduled to run at a simulated instant against a world
/// of type `W`.
type EventFn<W> = Box<dyn FnOnce(&mut W, &mut EventQueue<W>)>;

struct Entry<W> {
    at: SimTime,
    seq: u64,
    run: EventFn<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<W> Eq for Entry<W> {}

impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event (and
        // lowest sequence number among ties) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue over a world type `W`.
pub struct EventQueue<W> {
    heap: BinaryHeap<Entry<W>>,
    now: SimTime,
    next_seq: u64,
}

impl<W> Default for EventQueue<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> EventQueue<W> {
    /// Creates an empty queue starting at boot time.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
        }
    }

    /// Returns the current simulated time (the time of the most
    /// recently executed event, or the run-until horizon).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `run` at absolute time `at`.
    ///
    /// Events scheduled in the past execute at the current time on the
    /// next run step (time never moves backwards).
    pub fn schedule_at<F>(&mut self, at: SimTime, run: F)
    where
        F: FnOnce(&mut W, &mut EventQueue<W>) + 'static,
    {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at: at.max(self.now),
            seq,
            run: Box::new(run),
        });
    }

    /// Schedules `run` after a delay from the current time.
    pub fn schedule_after<F>(&mut self, delay: SimDuration, run: F)
    where
        F: FnOnce(&mut W, &mut EventQueue<W>) + 'static,
    {
        self.schedule_at(self.now + delay, run);
    }

    fn pop_due(&mut self, horizon: SimTime) -> Option<Entry<W>> {
        if self.heap.peek().is_some_and(|e| e.at <= horizon) {
            self.heap.pop()
        } else {
            None
        }
    }

    /// Executes a single pending event if one is due at or before
    /// `horizon`, returning `true` if an event ran.
    pub fn step(&mut self, world: &mut W, horizon: SimTime) -> bool {
        match self.pop_due(horizon) {
            Some(entry) => {
                self.now = self.now.max(entry.at);
                (entry.run)(world, self);
                true
            }
            None => false,
        }
    }

    /// Runs all events up to and including `horizon`, then advances the
    /// clock to `horizon`.
    pub fn run_until(&mut self, world: &mut W, horizon: SimTime) {
        while self.step(world, horizon) {}
        self.now = self.now.max(horizon);
    }

    /// Runs events for a span of simulated time from now.
    pub fn run_for(&mut self, world: &mut W, span: SimDuration) {
        let horizon = self.now + span;
        self.run_until(world, horizon);
    }

    /// Drains every pending event regardless of time, advancing the
    /// clock as it goes. Useful for "run to completion" tests.
    pub fn run_to_completion(&mut self, world: &mut W) {
        while let Some(entry) = self.heap.pop() {
            self.now = self.now.max(entry.at);
            (entry.run)(world, self);
        }
    }
}

impl<W> crate::statehash::StateHash for EventQueue<W> {
    fn state_hash(&self, h: &mut crate::statehash::StateHasher) {
        // Closures cannot be hashed; the schedule's shape can. The
        // deadline multiset plus the allocation counter pins down
        // when every pending event fires and in what order, which is
        // exactly the determinism-relevant part of the queue.
        crate::statehash::StateHash::state_hash(&self.now, h);
        h.write_u64(self.next_seq);
        h.write_usize(self.heap.len());
        let mut deadlines: Vec<(SimTime, u64)> =
            self.heap.iter().map(|e| (e.at, e.seq)).collect();
        deadlines.sort_unstable();
        for (at, seq) in deadlines {
            crate::statehash::StateHash::state_hash(&at, h);
            h.write_u64(seq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut q: EventQueue<Vec<u32>> = EventQueue::new();
        let mut world = Vec::new();
        q.schedule_at(SimTime::from_nanos(30), |w: &mut Vec<u32>, _| w.push(3));
        q.schedule_at(SimTime::from_nanos(10), |w: &mut Vec<u32>, _| w.push(1));
        q.schedule_at(SimTime::from_nanos(20), |w: &mut Vec<u32>, _| w.push(2));
        q.run_to_completion(&mut world);
        assert_eq!(world, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_run_fifo() {
        let mut q: EventQueue<Vec<u32>> = EventQueue::new();
        let mut world = Vec::new();
        for i in 0..10 {
            q.schedule_at(SimTime::from_nanos(5), move |w: &mut Vec<u32>, _| {
                w.push(i)
            });
        }
        q.run_to_completion(&mut world);
        assert_eq!(world, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut q: EventQueue<Vec<u32>> = EventQueue::new();
        let mut world = Vec::new();
        q.schedule_at(SimTime::from_nanos(10), |w: &mut Vec<u32>, _| w.push(1));
        q.schedule_at(SimTime::from_nanos(100), |w: &mut Vec<u32>, _| w.push(2));
        q.run_until(&mut world, SimTime::from_nanos(50));
        assert_eq!(world, vec![1]);
        assert_eq!(q.now(), SimTime::from_nanos(50));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn events_can_schedule_followups() {
        let mut q: EventQueue<Vec<u64>> = EventQueue::new();
        let mut world = Vec::new();
        fn tick(w: &mut Vec<u64>, q: &mut EventQueue<Vec<u64>>) {
            w.push(q.now().as_nanos());
            if w.len() < 4 {
                q.schedule_after(SimDuration::from_nanos(10), tick);
            }
        }
        q.schedule_at(SimTime::from_nanos(10), tick);
        q.run_to_completion(&mut world);
        assert_eq!(world, vec![10, 20, 30, 40]);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q: EventQueue<Vec<u64>> = EventQueue::new();
        let mut world = Vec::new();
        q.run_until(&mut world, SimTime::from_nanos(100));
        q.schedule_at(SimTime::from_nanos(5), |w: &mut Vec<u64>, q| {
            w.push(q.now().as_nanos())
        });
        q.run_to_completion(&mut world);
        assert_eq!(world, vec![100], "past event executes at current time");
    }
}
