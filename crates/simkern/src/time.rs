//! Simulated time primitives.
//!
//! All of AnDrone's simulated substrate runs on a virtual monotonic
//! clock expressed in nanoseconds. Using a dedicated newtype (rather
//! than `std::time::Instant`) keeps every experiment deterministic and
//! independent of host scheduling.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point on the simulated monotonic clock, in nanoseconds since boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The instant of simulated boot.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw nanoseconds since boot.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the raw nanosecond count since boot.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional seconds since boot.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// Saturates to zero if `earlier` is in the future, mirroring
    /// `Instant::saturating_duration_since`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Creates a duration from fractional microseconds.
    ///
    /// Negative or non-finite inputs clamp to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in whole microseconds (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration in whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns `self - other`, saturating at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Scales the duration by a non-negative factor.
    ///
    /// Non-finite or negative factors clamp to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    /// Divides the duration evenly.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).as_nanos(), 8_000);
    }

    #[test]
    fn saturating_subtraction_never_underflows() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(100);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_nanos(), 90);
    }

    #[test]
    fn duration_unit_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(
            SimDuration::from_millis(1),
            SimDuration::from_micros(1_000)
        );
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
    }

    #[test]
    fn fractional_constructors_clamp_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(1.5).as_millis(),
            1_500,
            "positive values convert normally"
        );
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(2.0).as_millis(), 200);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.0us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.0ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }
}
