//! Physical memory accounting.
//!
//! The prototype hardware is a Raspberry Pi 3 Model B with 1 GB of
//! RAM, of which only 880 MB is available to the OS after peripheral
//! I/O reserved space and the GPU carve-out for the camera (paper
//! Section 6.3). Memory is the binding constraint on how many virtual
//! drones can run: the fourth virtual drone fails to start with OOM
//! but must not disturb the ones already running.

use std::collections::BTreeMap;

use crate::error::KernelError;

/// One mebibyte in bytes.
pub const MIB: u64 = 1024 * 1024;

/// Total RAM soldered on the Raspberry Pi 3 Model B.
pub const RPI3_TOTAL_RAM: u64 = 1024 * MIB;

/// RAM actually available to the OS on the prototype (880 MB) after
/// peripheral reserved space and the GPU/camera allocation.
pub const RPI3_USABLE_RAM: u64 = 880 * MIB;

/// The board's memory budget as Figure 12 itemizes it: fixed
/// residents (host OS + VDC, device container, flight container)
/// against usable RAM, with the remainder divided among virtual-drone
/// containers. The planner's party capacity derives from this profile
/// instead of a hardcoded cap, so a board with different RAM or
/// container footprints reflows the cap automatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoardMemoryProfile {
    /// RAM usable by the OS, bytes.
    pub usable_ram: u64,
    /// Host OS plus the virtual drone controller, bytes.
    pub host_os_vdc: u64,
    /// The device container multiplexing hardware services, bytes.
    pub device_container: u64,
    /// The real-time flight container, bytes.
    pub flight_container: u64,
    /// One virtual-drone (Android Things) container's RSS, bytes.
    pub vdrone_container: u64,
}

impl BoardMemoryProfile {
    /// The prototype profile: 880 MiB usable, 95 MiB host OS + VDC,
    /// 110 MiB device container, 40 MiB flight container, 185 MiB
    /// per virtual drone (Figure 12).
    pub const fn rpi3() -> Self {
        BoardMemoryProfile {
            usable_ram: RPI3_USABLE_RAM,
            host_os_vdc: 95 * MIB,
            device_container: 110 * MIB,
            flight_container: 40 * MIB,
            vdrone_container: 185 * MIB,
        }
    }

    /// Bytes left for virtual-drone containers after the fixed
    /// residents (saturating: an over-committed board leaves zero).
    pub const fn vdrone_budget(&self) -> u64 {
        self.usable_ram
            .saturating_sub(self.host_os_vdc)
            .saturating_sub(self.device_container)
            .saturating_sub(self.flight_container)
    }

    /// How many virtual-drone containers fit in the budget — the
    /// planner's per-flight party capacity. On the RPi3 profile this
    /// is exactly 3: 635 MiB of budget seats three 185 MiB
    /// containers, and a fourth would OOM at deploy.
    pub const fn max_vdrones(&self) -> usize {
        match self.vdrone_budget().checked_div(self.vdrone_container) {
            Some(n) => n as usize,
            None => 0,
        }
    }
}

/// An opaque owner of memory; allocations are tagged so that usage can
/// be reported per subsystem/container (Figure 12).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemOwner(pub String);

impl<T: Into<String>> From<T> for MemOwner {
    fn from(s: T) -> Self {
        MemOwner(s.into())
    }
}

/// Ledger of physical memory allocations.
#[derive(Debug)]
pub struct MemoryLedger {
    usable: u64,
    allocated: BTreeMap<MemOwner, u64>,
}

impl MemoryLedger {
    /// Creates a ledger with the given usable capacity in bytes.
    pub fn new(usable: u64) -> Self {
        MemoryLedger {
            usable,
            allocated: BTreeMap::new(),
        }
    }

    /// Creates the prototype's ledger (880 MB usable).
    pub fn rpi3() -> Self {
        Self::new(RPI3_USABLE_RAM)
    }

    /// Total usable capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.usable
    }

    /// Bytes currently allocated across all owners.
    pub fn used(&self) -> u64 {
        self.allocated.values().sum()
    }

    /// Bytes still free.
    pub fn free(&self) -> u64 {
        self.usable - self.used()
    }

    /// Bytes held by a specific owner.
    pub fn used_by(&self, owner: &MemOwner) -> u64 {
        self.allocated.get(owner).copied().unwrap_or(0)
    }

    /// Allocates `bytes` on behalf of `owner`.
    ///
    /// Fails with [`KernelError::OutOfMemory`] without any partial
    /// allocation, so a failed container start leaves running
    /// containers untouched.
    pub fn allocate(&mut self, owner: impl Into<MemOwner>, bytes: u64) -> Result<(), KernelError> {
        let free = self.free();
        if bytes > free {
            return Err(KernelError::OutOfMemory {
                requested: bytes,
                available: free,
            });
        }
        *self.allocated.entry(owner.into()).or_insert(0) += bytes;
        Ok(())
    }

    /// Frees up to `bytes` held by `owner` (saturating).
    pub fn free_bytes(&mut self, owner: &MemOwner, bytes: u64) {
        if let Some(held) = self.allocated.get_mut(owner) {
            *held = held.saturating_sub(bytes);
            if *held == 0 {
                self.allocated.remove(owner);
            }
        }
    }

    /// Releases everything held by `owner`, returning the amount freed.
    pub fn release_owner(&mut self, owner: &MemOwner) -> u64 {
        self.allocated.remove(owner).unwrap_or(0)
    }

    /// Snapshot of per-owner usage, sorted by owner name.
    pub fn usage_report(&self) -> Vec<(MemOwner, u64)> {
        self.allocated
            .iter()
            .map(|(o, b)| (o.clone(), *b))
            .collect()
    }
}

impl crate::statehash::StateHash for MemoryLedger {
    fn state_hash(&self, h: &mut crate::statehash::StateHasher) {
        h.write_u64(self.usable);
        h.write_usize(self.allocated.len());
        for (owner, bytes) in &self.allocated {
            h.write_str(&owner.0);
            h.write_u64(*bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_free_round_trip() {
        let mut m = MemoryLedger::new(100 * MIB);
        m.allocate("a", 30 * MIB).unwrap();
        m.allocate("b", 20 * MIB).unwrap();
        assert_eq!(m.used(), 50 * MIB);
        assert_eq!(m.used_by(&"a".into()), 30 * MIB);
        m.free_bytes(&"a".into(), 10 * MIB);
        assert_eq!(m.used_by(&"a".into()), 20 * MIB);
        assert_eq!(m.release_owner(&"b".into()), 20 * MIB);
        assert_eq!(m.used(), 20 * MIB);
    }

    #[test]
    fn oom_is_atomic_and_reports_availability() {
        let mut m = MemoryLedger::new(100 * MIB);
        m.allocate("a", 90 * MIB).unwrap();
        let err = m.allocate("b", 20 * MIB).unwrap_err();
        assert_eq!(
            err,
            KernelError::OutOfMemory {
                requested: 20 * MIB,
                available: 10 * MIB
            }
        );
        // The failed allocation must not leave partial state behind.
        assert_eq!(m.used_by(&"b".into()), 0);
        assert_eq!(m.used(), 90 * MIB);
    }

    #[test]
    fn rpi3_capacity_matches_paper() {
        let m = MemoryLedger::rpi3();
        assert_eq!(m.capacity(), 880 * MIB);
    }

    #[test]
    fn rpi3_profile_reproduces_the_figure_12_cap() {
        let p = BoardMemoryProfile::rpi3();
        assert_eq!(p.vdrone_budget(), 635 * MIB);
        // Three 185 MiB containers fit; the fourth does not.
        assert_eq!(p.max_vdrones(), 3);
        assert!(p.vdrone_budget() >= 3 * p.vdrone_container);
        assert!(p.vdrone_budget() < 4 * p.vdrone_container);
    }

    #[test]
    fn profile_cap_reflows_with_board_parameters() {
        // A 2 GiB board seats more tenants; a starved board seats
        // none; a zero-RSS container cannot divide by zero.
        let mut p = BoardMemoryProfile::rpi3();
        p.usable_ram = 2048 * MIB;
        assert_eq!(p.max_vdrones(), 9);
        p.usable_ram = 200 * MIB;
        assert_eq!(p.max_vdrones(), 0);
        p.vdrone_container = 0;
        assert_eq!(p.max_vdrones(), 0);
    }

    #[test]
    fn over_free_saturates() {
        let mut m = MemoryLedger::new(10 * MIB);
        m.allocate("a", 5 * MIB).unwrap();
        m.free_bytes(&"a".into(), 50 * MIB);
        assert_eq!(m.used(), 0);
        assert_eq!(m.free(), 10 * MIB);
    }
}
