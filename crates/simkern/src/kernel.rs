//! The simulated kernel: configuration plus the subsystem ledgers.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::SmallRng;

use crate::cpu::{ResourceKind, ResourceSet};
use crate::latency::{profiles, InterferenceSource, LatencyModel, Preemption};
use crate::mem::MemoryLedger;
use crate::task::TaskTable;
use crate::time::{SimDuration, SimTime};

/// Kernel build configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Preemption model compiled into the kernel.
    pub preemption: Preemption,
}

impl KernelConfig {
    /// AnDrone's default configuration (PREEMPT_RT patches applied).
    pub const ANDRONE_DEFAULT: KernelConfig = KernelConfig {
        preemption: Preemption::PreemptRt,
    };

    /// The Navio2 vendor kernel configuration (CONFIG_PREEMPT only).
    pub const NAVIO2_DEFAULT: KernelConfig = KernelConfig {
        preemption: Preemption::Preempt,
    };

    /// Stock Android Things (no preemption support): the Figure 10
    /// normalization baseline.
    pub const STOCK: KernelConfig = KernelConfig {
        preemption: Preemption::None,
    };

    /// Multiplicative throughput penalty a benchmark instance pays on
    /// this kernel, as a function of the bottleneck resource and the
    /// number of simultaneously contending instances.
    ///
    /// Greater preemptibility is not free: PREEMPT_RT converts IRQ
    /// handlers and lock sections into schedulable entities, adding
    /// context switches that grow with the number of running tasks.
    /// Figure 10 shows the effect: with three virtual drones the
    /// PREEMPT_RT kernel trails the PREEMPT kernel on every resource,
    /// most visibly on memory (2.3x vs 1.8x) where lock and TLB
    /// shootdown traffic dominates. Coefficients are calibrated to
    /// those measurements.
    pub fn throughput_penalty(&self, kind: ResourceKind, contenders: usize) -> f64 {
        let extra = contenders.saturating_sub(1) as f64;
        match self.preemption {
            Preemption::None => 1.0,
            Preemption::Preempt => match kind {
                ResourceKind::Cpu => 1.0 + 0.003 * extra,
                ResourceKind::DiskBandwidth => 1.0 + 0.005 * extra,
                ResourceKind::MemoryBandwidth => 1.0 + 0.004 * extra,
                ResourceKind::NetworkBandwidth => 1.0 + 0.004 * extra,
            },
            Preemption::PreemptRt => match kind {
                ResourceKind::Cpu => 1.005 + 0.030 * extra,
                ResourceKind::DiskBandwidth => 1.005 + 0.050 * extra,
                ResourceKind::MemoryBandwidth => 1.005 + 0.139 * extra,
                ResourceKind::NetworkBandwidth => 1.005 + 0.030 * extra,
            },
        }
    }
}

/// A kernel handle shared across simulated subsystems (the container
/// runtime, the Binder driver, the workload models all account
/// against the same board).
///
/// Single-threaded by design: a board and everything simulated on it
/// lives inside one flight island (`core::pool` moves whole flights,
/// never kernels, across threads), so the handle is `Rc<RefCell<..>>`
/// rather than a lock — dronelint R9 bans lock acquisition on
/// island-reachable paths precisely so this stays true.
pub type SharedKernel = Rc<RefCell<Kernel>>;

/// The simulated kernel instance for one board.
pub struct Kernel {
    config: KernelConfig,
    /// Task table (processes/threads).
    pub tasks: TaskTable,
    /// Physical memory ledger.
    pub mem: MemoryLedger,
    /// Contended hardware resources.
    pub resources: ResourceSet,
    latency: LatencyModel,
    rng: SmallRng,
    now: SimTime,
}

impl Kernel {
    /// Boots a kernel on Raspberry Pi 3-class hardware.
    pub fn boot(config: KernelConfig, seed: u64) -> Self {
        let latency = LatencyModel::new(
            config.preemption,
            vec![profiles::idle_housekeeping()],
        );
        Kernel {
            config,
            tasks: TaskTable::new(),
            mem: MemoryLedger::rpi3(),
            resources: ResourceSet::rpi3(),
            latency,
            rng: crate::rng::stream_rng(seed),
            now: SimTime::ZERO,
        }
    }

    /// Boots a kernel and wraps it in a shared handle.
    pub fn boot_shared(config: KernelConfig, seed: u64) -> SharedKernel {
        Rc::new(RefCell::new(Self::boot(config, seed)))
    }

    /// The kernel's build configuration.
    pub fn config(&self) -> KernelConfig {
        self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the simulated clock.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Registers an interference source (a workload starting).
    pub fn add_interference(&mut self, source: InterferenceSource) {
        self.latency.add_source(source);
    }

    /// Removes every interference source with `name` (a throttled or
    /// ended workload). Returns whether anything was removed.
    pub fn remove_interference(&mut self, name: &str) -> bool {
        self.latency.remove_source(name)
    }

    /// Samples one real-time wakeup latency for the highest-priority
    /// FIFO task under the current interference load.
    pub fn sample_rt_latency(&mut self) -> SimDuration {
        self.latency.sample(&mut self.rng)
    }

    /// Borrows the latency model without touching the kernel RNG.
    ///
    /// Monitors that sample the model at high rates (the RT-deadline
    /// probe samples one 400 Hz period per tick) must bring their own
    /// dedicated stream ([`crate::rng::rt_monitor_stream_rng`]) so
    /// their draws stay invisible to the kernel stream the pinned
    /// chaos baselines fingerprint.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Borrows the deterministic RNG (for subsystems that need
    /// randomness tied to the kernel's seed).
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

impl crate::statehash::StateHash for Kernel {
    fn state_hash(&self, h: &mut crate::statehash::StateHasher) {
        // The RNG's internal counter is not observable, but every
        // draw it makes lands in hashed state (sensor noise reaches
        // the estimator, latency samples reach histograms), so a
        // skewed draw sequence still surfaces as a divergence.
        h.write_u8(match self.config.preemption {
            Preemption::None => 0,
            Preemption::Preempt => 1,
            Preemption::PreemptRt => 2,
        });
        crate::statehash::StateHash::state_hash(&self.now, h);
        crate::statehash::StateHash::state_hash(&self.tasks, h);
        crate::statehash::StateHash::state_hash(&self.mem, h);
        crate::statehash::StateHash::state_hash(&self.resources, h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{ContainerId, Euid, SchedPolicy};

    #[test]
    fn boot_produces_idle_system() {
        let k = Kernel::boot(KernelConfig::ANDRONE_DEFAULT, 1);
        assert_eq!(k.tasks.len(), 0);
        assert_eq!(k.mem.used(), 0);
        assert_eq!(k.resources.cpu_utilization(), 0.0);
    }

    #[test]
    fn stock_kernel_has_no_penalty() {
        let c = KernelConfig::STOCK;
        for kind in ResourceKind::ALL {
            assert_eq!(c.throughput_penalty(kind, 3), 1.0);
        }
    }

    #[test]
    fn rt_memory_penalty_matches_figure_10_ratio() {
        // Figure 10: at 3 contenders, memory overhead is 1.8x on
        // PREEMPT vs 2.3x on PREEMPT_RT, a ratio of ~1.28.
        let preempt = KernelConfig::NAVIO2_DEFAULT
            .throughput_penalty(ResourceKind::MemoryBandwidth, 3);
        let rt = KernelConfig::ANDRONE_DEFAULT
            .throughput_penalty(ResourceKind::MemoryBandwidth, 3);
        let ratio = rt / preempt;
        assert!((1.2..1.35).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn penalty_grows_with_contenders() {
        let c = KernelConfig::ANDRONE_DEFAULT;
        let p1 = c.throughput_penalty(ResourceKind::Cpu, 1);
        let p3 = c.throughput_penalty(ResourceKind::Cpu, 3);
        assert!(p3 > p1);
        assert!(p1 < 1.02, "single instance overhead stays small: {p1}");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut k = Kernel::boot(KernelConfig::ANDRONE_DEFAULT, 2);
        let t0 = k.now();
        k.advance(SimDuration::from_millis(5));
        assert_eq!((k.now() - t0).as_millis(), 5);
    }

    #[test]
    fn tasks_spawn_under_kernel() {
        let mut k = Kernel::boot(KernelConfig::ANDRONE_DEFAULT, 3);
        let pid = k
            .tasks
            .spawn("ardupilot", Euid(0), ContainerId(2), SchedPolicy::MAX_RT)
            .unwrap();
        assert!(k.tasks.get(pid).unwrap().policy.is_realtime());
    }

    #[test]
    fn latency_sampling_uses_kernel_seed() {
        let mut a = Kernel::boot(KernelConfig::ANDRONE_DEFAULT, 7);
        let mut b = Kernel::boot(KernelConfig::ANDRONE_DEFAULT, 7);
        for _ in 0..100 {
            assert_eq!(a.sample_rt_latency(), b.sample_rt_latency());
        }
    }
}
