//! Small statistics helpers shared by the evaluation harnesses.

/// Streaming summary of a series of f64 samples.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Population standard deviation (0.0 when empty).
    pub fn stddev(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let mean = self.mean();
        let var = (self.sum_sq / self.n as f64 - mean * mean).max(0.0);
        var.sqrt()
    }

    /// Minimum sample (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// A logarithmically-bucketed histogram, matching the log-log
/// presentation of the paper's Figure 11 (latency on a log axis,
/// sample counts on a log axis).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    /// Bucket upper bounds (exclusive), ascending.
    bounds: Vec<f64>,
    counts: Vec<u64>,
    overflow: u64,
}

impl LogHistogram {
    /// Creates a histogram with `buckets_per_decade` buckets per
    /// decade spanning `lo..hi` (both > 0).
    ///
    /// # Panics
    ///
    /// Panics if `lo` or `hi` are non-positive or `lo >= hi`; bucket
    /// geometry would be meaningless.
    pub fn new(lo: f64, hi: f64, buckets_per_decade: usize) -> Self {
        assert!(lo > 0.0 && hi > lo, "invalid histogram range");
        assert!(buckets_per_decade > 0, "need at least one bucket");
        let decades = (hi / lo).log10();
        let n = (decades * buckets_per_decade as f64).ceil() as usize;
        let ratio = 10f64.powf(1.0 / buckets_per_decade as f64);
        let mut bounds = Vec::with_capacity(n);
        let mut b = lo;
        for _ in 0..n {
            b *= ratio;
            bounds.push(b);
        }
        let len = bounds.len();
        LogHistogram {
            bounds,
            counts: vec![0; len],
            overflow: 0,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, x: f64) {
        match self.bounds.iter().position(|&b| x < b) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
    }

    /// Iterates `(bucket_upper_bound, count)` pairs.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bounds.iter().copied().zip(self.counts.iter().copied())
    }

    /// Samples that exceeded the top bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow
    }
}

/// Percentile from a sorted slice (nearest-rank). Returns 0.0 for an
/// empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!((s.stddev() - 1.118).abs() < 1e-3);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn histogram_buckets_cover_range() {
        let mut h = LogHistogram::new(1.0, 10_000.0, 4);
        h.record(1.5);
        h.record(150.0);
        h.record(9_999.0);
        h.record(1e9); // Overflow.
        assert_eq!(h.total(), 4);
        assert_eq!(h.overflow(), 1);
        let counted: u64 = h.buckets().map(|(_, c)| c).sum();
        assert_eq!(counted, 3);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
