//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is a seeded schedule of typed fault events, each
//! arming at an exact simulated tick and disarming at a later one.
//! Plans are generated from a dedicated [`SmallRng`] stream seeded by
//! the plan seed alone, so:
//!
//! - the same `(seed, horizon)` always yields the same plan, and
//! - building or running an **empty** plan consumes zero draws from
//!   the kernel or board RNG streams — a flight with no faults is
//!   byte-identical to a flight on a build with no fault machinery.
//!
//! The plan itself is pure data; it knows nothing about drones. A
//! [`FaultClock`] walks the schedule tick by tick and reports which
//! events arm or disarm, and the consumer (the fault injector in the
//! core crate) maps each [`FaultKind`] onto the simulated hardware.
//! Everything hashes through [`StateHash`] so armed faults are part
//! of the dual-run determinism check.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::net::BurstLoss;
use crate::statehash::{StateHash, StateHasher};

/// Which simulated sensor a sensor fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorChannel {
    /// The inertial measurement unit (accelerometer + gyro).
    Imu,
    /// The GPS receiver.
    Gps,
    /// The barometric altimeter.
    Baro,
}

impl SensorChannel {
    const ALL: [SensorChannel; 3] = [SensorChannel::Imu, SensorChannel::Gps, SensorChannel::Baro];

    fn tag(self) -> u8 {
        match self {
            SensorChannel::Imu => 0,
            SensorChannel::Gps => 1,
            SensorChannel::Baro => 2,
        }
    }
}

impl StateHash for SensorChannel {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u8(self.tag());
    }
}

/// A typed fault the injector can arm on the simulated system.
///
/// Not `Copy`: a [`FaultKind::ContainerCrash`] may carry the name of
/// the virtual drone it targets.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The sensor stops producing samples entirely.
    SensorDropout { channel: SensorChannel },
    /// The sensor keeps repeating its last good sample.
    SensorStuck { channel: SensorChannel },
    /// The sensor reports with a constant additive bias.
    SensorBias { channel: SensorChannel, bias: f64 },
    /// Total GPS loss (alias for a GPS dropout; the estimator must
    /// dead-reckon on IMU alone).
    GpsLoss,
    /// The ground↔drone command link is fully partitioned.
    LinkPartition,
    /// The command uplink degrades to Gilbert–Elliott burst loss.
    LinkBurstLoss { burst: BurstLoss },
    /// Every `period`-th Binder transaction fails.
    BinderFailure { period: u32 },
    /// Every `period`-th Binder transaction times out.
    BinderTimeout { period: u32 },
    /// A virtual-drone container crashes; on disarm it is restarted
    /// from its checkpoint under supervision. `target` names the
    /// virtual drone to crash; `None` falls back to the first
    /// deployed one (legacy single-tenant plans).
    ContainerCrash { target: Option<String> },
    /// Battery cells degrade: the pack delivers each joule of thrust
    /// at `1/health` times the electrical cost.
    BatteryDegradation { health: f64 },
}

impl FaultKind {
    fn tag(&self) -> u8 {
        match self {
            FaultKind::SensorDropout { .. } => 0,
            FaultKind::SensorStuck { .. } => 1,
            FaultKind::SensorBias { .. } => 2,
            FaultKind::GpsLoss => 3,
            FaultKind::LinkPartition => 4,
            FaultKind::LinkBurstLoss { .. } => 5,
            FaultKind::BinderFailure { .. } => 6,
            FaultKind::BinderTimeout { .. } => 7,
            FaultKind::ContainerCrash { .. } => 8,
            FaultKind::BatteryDegradation { .. } => 9,
        }
    }
}

impl StateHash for FaultKind {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u8(self.tag());
        match self {
            FaultKind::SensorDropout { channel } | FaultKind::SensorStuck { channel } => {
                channel.state_hash(h);
            }
            FaultKind::SensorBias { channel, bias } => {
                channel.state_hash(h);
                h.write_f64(*bias);
            }
            FaultKind::GpsLoss | FaultKind::LinkPartition => {}
            FaultKind::ContainerCrash { target } => {
                match target {
                    Some(name) => {
                        h.write_u8(1);
                        h.write_str(name);
                    }
                    None => h.write_u8(0),
                }
            }
            FaultKind::LinkBurstLoss { burst } => {
                h.write_f64(burst.p_good_to_bad);
                h.write_f64(burst.p_bad_to_good);
                h.write_f64(burst.loss_good);
                h.write_f64(burst.loss_bad);
            }
            FaultKind::BinderFailure { period } | FaultKind::BinderTimeout { period } => {
                h.write_u32(*period);
            }
            FaultKind::BatteryDegradation { health } => h.write_f64(*health),
        }
    }
}

/// One scheduled fault: arms at `arm_tick` (inclusive) and disarms
/// at `disarm_tick` (exclusive). Ticks are the per-second observer
/// ticks of the flight loop, i.e. whole simulated seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    pub kind: FaultKind,
    pub arm_tick: u64,
    pub disarm_tick: u64,
}

impl StateHash for FaultEvent {
    fn state_hash(&self, h: &mut StateHasher) {
        self.kind.state_hash(h);
        h.write_u64(self.arm_tick);
        h.write_u64(self.disarm_tick);
    }
}

/// A seeded schedule of fault events over one flight.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The seed the plan was generated from (0 for hand-built plans).
    pub seed: u64,
    /// Events in generation order; overlaps are allowed.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no events. Running it must not perturb anything.
    pub fn empty() -> FaultPlan {
        FaultPlan { seed: 0, events: Vec::new() }
    }

    /// A plan with exactly one event, for targeted tests.
    pub fn single(kind: FaultKind, arm_tick: u64, disarm_tick: u64) -> FaultPlan {
        FaultPlan {
            seed: 0,
            events: vec![FaultEvent { kind, arm_tick, disarm_tick }],
        }
    }

    /// Generates a random plan for a flight of `horizon_ticks`
    /// seconds from a dedicated RNG stream seeded by `seed` alone.
    pub fn generate(seed: u64, horizon_ticks: u64) -> FaultPlan {
        // No targets: container crashes fall back to the first
        // deployed virtual drone. The draw sequence is identical to
        // the targeted variant with an empty set, so plans generated
        // before targeting existed reproduce bit-for-bit.
        Self::generate_targeted(seed, horizon_ticks, &[])
    }

    /// Like [`FaultPlan::generate`], but container-crash events pick
    /// their victim deterministically from `targets` (the set of
    /// virtual drones expected on the flight).
    pub fn generate_targeted(seed: u64, horizon_ticks: u64, targets: &[String]) -> FaultPlan {
        let mut rng = crate::rng::fault_stream_rng(seed);
        let horizon = horizon_ticks.max(12);
        let count = rng.gen_range(2..=5);
        let mut events = Vec::with_capacity(count);
        let mut crash_used = false;
        for _ in 0..count {
            let kind = match rng.gen_range(0..10u32) {
                0 => FaultKind::SensorDropout { channel: Self::pick_channel(&mut rng) },
                1 => FaultKind::SensorStuck { channel: Self::pick_channel(&mut rng) },
                2 => FaultKind::SensorBias {
                    channel: Self::pick_channel(&mut rng),
                    bias: rng.gen_range(-2.0..2.0),
                },
                3 => FaultKind::GpsLoss,
                4 => FaultKind::LinkPartition,
                5 => FaultKind::LinkBurstLoss { burst: BurstLoss::cellular_fade() },
                6 => FaultKind::BinderFailure { period: rng.gen_range(2..6) },
                7 => FaultKind::BinderTimeout { period: rng.gen_range(2..6) },
                8 if !crash_used => {
                    crash_used = true;
                    FaultKind::ContainerCrash { target: Self::pick_target(&mut rng, targets) }
                }
                8 => FaultKind::GpsLoss,
                _ => FaultKind::BatteryDegradation { health: rng.gen_range(0.6..0.95) },
            };
            // Arm within the first three quarters so the fault has
            // airtime; keep windows short enough that failsafes can
            // hand control back before the flight budget runs out.
            let arm_tick = rng.gen_range(4..horizon * 3 / 4);
            let duration = rng.gen_range(3u64..=15);
            events.push(FaultEvent { kind, arm_tick, disarm_tick: arm_tick + duration });
        }
        FaultPlan { seed, events }
    }

    /// Draws a crash victim from `targets`; `None` (first-deployed
    /// fallback) when the set is empty. Drawing only on a non-empty
    /// set keeps legacy `generate` sequences unchanged.
    fn pick_target(rng: &mut SmallRng, targets: &[String]) -> Option<String> {
        if targets.is_empty() {
            None
        } else {
            targets.get(rng.gen_range(0..targets.len())).cloned()
        }
    }

    fn pick_channel(rng: &mut SmallRng) -> SensorChannel {
        SensorChannel::ALL[rng.gen_range(0..SensorChannel::ALL.len())]
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The tick after which no event is armed any more.
    pub fn last_disarm_tick(&self) -> u64 {
        self.events.iter().map(|e| e.disarm_tick).max().unwrap_or(0)
    }
}

impl StateHash for FaultPlan {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u64(self.seed);
        h.write_usize(self.events.len());
        for e in &self.events {
            e.state_hash(h);
        }
    }
}

/// A cloud-side fault: the failure domain is the AnDrone service
/// itself (portal, planner, repository, storage), not the drone.
///
/// Cloud faults are windowed by fleet *wave* (one planning round =
/// one batch of physical flights), not by simulated tick: the cloud
/// is consulted between flights, so a finer clock would never be
/// observed.
#[derive(Debug, Clone, PartialEq)]
pub enum CloudFaultKind {
    /// The customer portal is down: order intake and flight planning
    /// are unavailable for the wave; pending orders queue.
    PortalDown,
    /// The virtual-drone repository is unreachable: interrupted
    /// drones cannot be checked out for resume this wave.
    VdrUnavailable,
    /// Cloud object storage rejects writes. The first
    /// `transient_failures` attempts of an offload fail (exercising
    /// the deterministic retry/backoff path); if retries are
    /// exhausted the offload buffers on-drone and drains on heal.
    StorageWriteFail { transient_failures: u32 },
    /// The flight planner rejects the wave's solution (capacity
    /// exhausted); orders stay queued for the next wave.
    PlannerReject,
}

impl CloudFaultKind {
    fn tag(&self) -> u8 {
        match self {
            CloudFaultKind::PortalDown => 0,
            CloudFaultKind::VdrUnavailable => 1,
            CloudFaultKind::StorageWriteFail { .. } => 2,
            CloudFaultKind::PlannerReject => 3,
        }
    }
}

impl StateHash for CloudFaultKind {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u8(self.tag());
        if let CloudFaultKind::StorageWriteFail { transient_failures } = self {
            h.write_u32(*transient_failures);
        }
    }
}

/// One scheduled cloud fault: armed for waves in
/// `[arm_wave, disarm_wave)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudFaultEvent {
    pub kind: CloudFaultKind,
    pub arm_wave: u64,
    pub disarm_wave: u64,
}

impl StateHash for CloudFaultEvent {
    fn state_hash(&self, h: &mut StateHasher) {
        self.kind.state_hash(h);
        h.write_u64(self.arm_wave);
        h.write_u64(self.disarm_wave);
    }
}

/// A fault schedule for a whole fleet run: per-flight plans,
/// correlated events shared by every flight (a regional GPS-denial
/// window, weather-grade battery degradation, a link partition), and
/// cloud-side faults windowed by wave.
///
/// Like [`FaultPlan`], the fleet plan is pure data generated from a
/// dedicated RNG stream; an empty fleet plan injects nothing and
/// must leave the run bit-identical to a build with no fault
/// machinery at all.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetFaultPlan {
    /// The seed the plan was generated from (0 for hand-built plans).
    pub seed: u64,
    /// Per-physical-flight plans, indexed by flight order.
    pub flights: Vec<FaultPlan>,
    /// Events injected into *every* flight of the run.
    pub correlated: Vec<FaultEvent>,
    /// Cloud-side faults, windowed by wave index.
    pub cloud: Vec<CloudFaultEvent>,
}

impl FleetFaultPlan {
    /// A plan injecting nothing anywhere.
    pub fn empty() -> FleetFaultPlan {
        FleetFaultPlan { seed: 0, flights: Vec::new(), correlated: Vec::new(), cloud: Vec::new() }
    }

    pub fn is_empty(&self) -> bool {
        self.flights.iter().all(FaultPlan::is_empty)
            && self.correlated.is_empty()
            && self.cloud.is_empty()
    }

    /// The single-flight plan effective for physical flight `flight`:
    /// that flight's own events followed by every correlated event.
    /// Flights past the planned horizon get correlated events only.
    pub fn effective_plan(&self, flight: usize) -> FaultPlan {
        let mut events = self
            .flights
            .get(flight)
            .map(|p| p.events.clone())
            .unwrap_or_default();
        events.extend(self.correlated.iter().cloned());
        FaultPlan { seed: self.seed, events }
    }

    /// The cloud fault kinds armed for `wave`, in schedule order.
    pub fn cloud_armed(&self, wave: u64) -> Vec<CloudFaultKind> {
        self.cloud
            .iter()
            .filter(|e| wave >= e.arm_wave && wave < e.disarm_wave)
            .map(|e| e.kind.clone())
            .collect()
    }

    /// The sub-plan containing only tenant-targeted container
    /// crashes (no correlated or cloud events). Crashing one tenant
    /// must never change a healthy tenant's outcome, so this slice of
    /// the plan is what the fleet gate replays against the no-fault
    /// baseline.
    pub fn crash_only(&self) -> FleetFaultPlan {
        let flights = self
            .flights
            .iter()
            .map(|p| FaultPlan {
                seed: p.seed,
                events: p
                    .events
                    .iter()
                    .filter(|e| {
                        matches!(e.kind, FaultKind::ContainerCrash { target: Some(_) })
                    })
                    .cloned()
                    .collect(),
            })
            .collect();
        FleetFaultPlan { seed: self.seed, flights, correlated: Vec::new(), cloud: Vec::new() }
    }

    /// The sorted, deduplicated set of tenants named by container
    /// crashes anywhere in the plan.
    pub fn crash_targets(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .flights
            .iter()
            .flat_map(|p| p.events.iter())
            .chain(self.correlated.iter())
            .filter_map(|e| match &e.kind {
                FaultKind::ContainerCrash { target: Some(name) } => Some(name.clone()),
                _ => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Generates a fleet plan for `n_flights` physical flights
    /// carrying `tenants`, each flight `horizon_ticks` seconds long,
    /// from a dedicated RNG stream seeded by `seed` alone.
    ///
    /// Container crashes always name a victim (drawn from `tenants`)
    /// so the healthy set is well defined; correlated events are
    /// drawn from the shared-environment family (GPS denial, link
    /// partition/fade, battery weather); cloud faults use single-wave
    /// windows so the fleet always makes progress between outages.
    ///
    /// The per-flight family spans every [`FaultKind`] except
    /// [`FaultKind::LinkPartition`], which is correlated-only: a
    /// partition long enough to matter latches the RTL failsafe on
    /// every flight sharing the link, so it is modeled as a shared
    /// environment event rather than a single-drone one.
    pub fn generate(
        seed: u64,
        n_flights: usize,
        tenants: &[String],
        horizon_ticks: u64,
    ) -> FleetFaultPlan {
        let mut rng = crate::rng::fleet_fault_stream_rng(seed);
        let horizon = horizon_ticks.max(12);
        let arm_span = (horizon * 3 / 4).max(5);

        let mut flights = Vec::with_capacity(n_flights);
        for _ in 0..n_flights {
            let count = rng.gen_range(0..=2);
            let mut events = Vec::with_capacity(count);
            for _ in 0..count {
                let kind = match rng.gen_range(0..9u32) {
                    0 => FaultKind::SensorDropout { channel: FaultPlan::pick_channel(&mut rng) },
                    1 => FaultKind::SensorStuck { channel: FaultPlan::pick_channel(&mut rng) },
                    2 => FaultKind::SensorBias {
                        channel: FaultPlan::pick_channel(&mut rng),
                        bias: rng.gen_range(-1.5..1.5),
                    },
                    3 => FaultKind::GpsLoss,
                    4 => FaultKind::LinkBurstLoss { burst: BurstLoss::cellular_fade() },
                    5 => FaultKind::BinderFailure { period: rng.gen_range(2..6) },
                    6 => FaultKind::BinderTimeout { period: rng.gen_range(2..6) },
                    7 if !tenants.is_empty() => FaultKind::ContainerCrash {
                        target: FaultPlan::pick_target(&mut rng, tenants),
                    },
                    7 => FaultKind::GpsLoss,
                    _ => FaultKind::BatteryDegradation { health: rng.gen_range(0.7..0.95) },
                };
                let arm_tick = rng.gen_range(4..4 + arm_span);
                let duration = rng.gen_range(3u64..=10);
                events.push(FaultEvent { kind, arm_tick, disarm_tick: arm_tick + duration });
            }
            flights.push(FaultPlan { seed, events });
        }

        let correlated_count = rng.gen_range(0..=2);
        let mut correlated = Vec::with_capacity(correlated_count);
        for _ in 0..correlated_count {
            let kind = match rng.gen_range(0..4u32) {
                0 => FaultKind::GpsLoss,
                // A long shared partition latches the RTL failsafe
                // and ends flights early — the path that exercises
                // cross-flight resume.
                1 => FaultKind::LinkPartition,
                2 => FaultKind::LinkBurstLoss { burst: BurstLoss::cellular_fade() },
                _ => FaultKind::BatteryDegradation { health: rng.gen_range(0.75..0.95) },
            };
            let duration = if matches!(kind, FaultKind::LinkPartition) {
                rng.gen_range(12u64..=20)
            } else {
                rng.gen_range(4u64..=12)
            };
            let arm_tick = rng.gen_range(4..4 + arm_span);
            correlated.push(FaultEvent { kind, arm_tick, disarm_tick: arm_tick + duration });
        }

        let waves = n_flights.max(1) as u64;
        let cloud_count = rng.gen_range(0..=2);
        let mut cloud = Vec::with_capacity(cloud_count);
        for _ in 0..cloud_count {
            let kind = match rng.gen_range(0..4u32) {
                0 => CloudFaultKind::PortalDown,
                1 => CloudFaultKind::VdrUnavailable,
                2 => CloudFaultKind::StorageWriteFail {
                    transient_failures: rng.gen_range(1..=5),
                },
                _ => CloudFaultKind::PlannerReject,
            };
            let arm_wave = rng.gen_range(0..waves);
            cloud.push(CloudFaultEvent { kind, arm_wave, disarm_wave: arm_wave + 1 });
        }

        FleetFaultPlan { seed, flights, correlated, cloud }
    }
}

impl StateHash for FleetFaultPlan {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u64(self.seed);
        h.write_usize(self.flights.len());
        for p in &self.flights {
            p.state_hash(h);
        }
        h.write_usize(self.correlated.len());
        for e in &self.correlated {
            e.state_hash(h);
        }
        h.write_usize(self.cloud.len());
        for e in &self.cloud {
            e.state_hash(h);
        }
    }
}

/// A transition reported by the [`FaultClock`]: event `index` of the
/// plan armed (`armed == true`) or disarmed at the queried tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultTransition {
    pub index: usize,
    pub armed: bool,
}

/// Walks a [`FaultPlan`] tick by tick, reporting arm/disarm edges.
#[derive(Debug, Clone)]
pub struct FaultClock {
    plan: FaultPlan,
    active: Vec<bool>,
}

impl FaultClock {
    pub fn new(plan: FaultPlan) -> FaultClock {
        let active = vec![false; plan.events.len()];
        FaultClock { plan, active }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether event `index` is currently armed.
    pub fn is_armed(&self, index: usize) -> bool {
        self.active.get(index).copied().unwrap_or(false)
    }

    /// Advances the clock to `tick` and returns the edges that fire
    /// there, in plan order (arms before disarms never interleave
    /// within one event since windows are non-empty).
    pub fn transitions_at(&mut self, tick: u64) -> Vec<FaultTransition> {
        let mut out = Vec::new();
        for (i, e) in self.plan.events.iter().enumerate() {
            let should_be_armed = tick >= e.arm_tick && tick < e.disarm_tick;
            if should_be_armed != self.active[i] {
                self.active[i] = should_be_armed;
                out.push(FaultTransition { index: i, armed: should_be_armed });
            }
        }
        out
    }
}

impl StateHash for FaultClock {
    fn state_hash(&self, h: &mut StateHasher) {
        self.plan.state_hash(h);
        for a in &self.active {
            h.write_bool(*a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = FaultPlan::generate(42, 120);
        let b = FaultPlan::generate(42, 120);
        assert_eq!(a, b);
        assert_eq!(a.hash_value(), b.hash_value());
        let c = FaultPlan::generate(43, 120);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn generated_events_fit_the_horizon() {
        for seed in 0..64 {
            let plan = FaultPlan::generate(seed, 120);
            assert!(
                (2..=5).contains(&plan.events.len()),
                "seed {seed}: {} events",
                plan.events.len()
            );
            for e in &plan.events {
                assert!(e.arm_tick >= 4);
                assert!(e.disarm_tick > e.arm_tick);
                assert!(e.arm_tick < 120 * 3 / 4);
            }
            let crashes = plan
                .events
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::ContainerCrash { .. }))
                .count();
            assert!(crashes <= 1, "seed {seed}: {crashes} container crashes");
        }
    }

    #[test]
    fn targeted_generation_names_deployed_tenants() {
        let targets = vec!["vd-a".to_string(), "vd-b".to_string(), "vd-c".to_string()];
        let mut named = 0;
        for seed in 0..256 {
            let plan = FaultPlan::generate_targeted(seed, 120, &targets);
            for e in &plan.events {
                if let FaultKind::ContainerCrash { target } = &e.kind {
                    let t = target.as_deref().expect("targeted plans always name a victim");
                    assert!(targets.iter().any(|x| x == t), "unknown target {t}");
                    named += 1;
                }
            }
        }
        assert!(named > 0, "no crash drawn across 256 seeds");
    }

    #[test]
    fn untargeted_generation_matches_legacy_sequence() {
        for seed in 0..64 {
            assert_eq!(
                FaultPlan::generate(seed, 120),
                FaultPlan::generate_targeted(seed, 120, &[]),
            );
        }
    }

    #[test]
    fn seed_sweep_reaches_every_fault_kind() {
        let targets = vec!["vd-a".to_string()];
        let mut seen = [false; 10];
        for seed in 0..512 {
            for e in &FaultPlan::generate_targeted(seed, 120, &targets).events {
                seen[e.kind.tag() as usize] = true;
            }
        }
        for (tag, hit) in seen.iter().enumerate() {
            assert!(hit, "FaultKind tag {tag} never drawn across 512 seeds");
        }
    }

    #[test]
    fn fleet_seed_sweep_reaches_every_fault_kind() {
        let tenants = vec!["vd-a".to_string(), "vd-b".to_string()];
        let mut flight_seen = [false; 10];
        let mut cloud_seen = [false; 4];
        let mut named_crash = false;
        for seed in 0..512 {
            let plan = FleetFaultPlan::generate(seed, 3, &tenants, 90);
            for e in plan.flights.iter().flat_map(|p| p.events.iter()) {
                flight_seen[e.kind.tag() as usize] = true;
                if matches!(&e.kind, FaultKind::ContainerCrash { target: Some(_) }) {
                    named_crash = true;
                }
            }
            for e in &plan.correlated {
                flight_seen[e.kind.tag() as usize] = true;
            }
            for e in &plan.cloud {
                cloud_seen[e.kind.tag() as usize] = true;
            }
        }
        // LinkPartition (tag 4) is correlated-only by design; folding
        // correlated events in, every FaultKind must be reachable.
        for (tag, hit) in flight_seen.iter().enumerate() {
            assert!(hit, "FaultKind tag {tag} unreachable from fleet plans");
        }
        for (tag, hit) in cloud_seen.iter().enumerate() {
            assert!(hit, "CloudFaultKind tag {tag} unreachable from fleet plans");
        }
        assert!(named_crash, "no named container crash across 512 seeds");
    }

    #[test]
    fn fleet_generation_is_deterministic() {
        let tenants = vec!["vd-a".to_string(), "vd-b".to_string()];
        let a = FleetFaultPlan::generate(7, 3, &tenants, 90);
        let b = FleetFaultPlan::generate(7, 3, &tenants, 90);
        assert_eq!(a, b);
        assert_eq!(a.hash_value(), b.hash_value());
        assert_eq!(a.flights.len(), 3);
        let c = FleetFaultPlan::generate(8, 3, &tenants, 90);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn fleet_crashes_always_name_a_victim() {
        let tenants = vec!["vd-a".to_string(), "vd-b".to_string()];
        for seed in 0..256 {
            let plan = FleetFaultPlan::generate(seed, 3, &tenants, 90);
            for e in plan.flights.iter().flat_map(|p| p.events.iter()) {
                if let FaultKind::ContainerCrash { target } = &e.kind {
                    assert!(target.is_some(), "seed {seed}: unnamed fleet crash");
                }
            }
            for t in plan.crash_targets() {
                assert!(tenants.contains(&t));
            }
        }
    }

    #[test]
    fn empty_fleet_plan_yields_empty_effective_plans() {
        let fleet = FleetFaultPlan::empty();
        assert!(fleet.is_empty());
        for flight in 0..4 {
            let p = fleet.effective_plan(flight);
            assert!(p.is_empty());
            assert_eq!(p, FaultPlan::empty());
        }
        assert!(fleet.cloud_armed(0).is_empty());
    }

    #[test]
    fn effective_plan_merges_flight_and_correlated_events() {
        let mut fleet = FleetFaultPlan::empty();
        fleet.flights.push(FaultPlan::single(FaultKind::GpsLoss, 5, 10));
        fleet.correlated.push(FaultEvent {
            kind: FaultKind::LinkPartition,
            arm_tick: 20,
            disarm_tick: 40,
        });
        let p0 = fleet.effective_plan(0);
        assert_eq!(p0.events.len(), 2);
        assert_eq!(p0.events[0].kind, FaultKind::GpsLoss);
        assert_eq!(p0.events[1].kind, FaultKind::LinkPartition);
        // Past the planned horizon: correlated events only.
        let p1 = fleet.effective_plan(1);
        assert_eq!(p1.events.len(), 1);
        assert_eq!(p1.events[0].kind, FaultKind::LinkPartition);
    }

    #[test]
    fn cloud_windows_are_wave_scoped() {
        let mut fleet = FleetFaultPlan::empty();
        fleet.cloud.push(CloudFaultEvent {
            kind: CloudFaultKind::PortalDown,
            arm_wave: 1,
            disarm_wave: 2,
        });
        fleet.cloud.push(CloudFaultEvent {
            kind: CloudFaultKind::StorageWriteFail { transient_failures: 2 },
            arm_wave: 1,
            disarm_wave: 3,
        });
        assert!(fleet.cloud_armed(0).is_empty());
        assert_eq!(
            fleet.cloud_armed(1),
            vec![
                CloudFaultKind::PortalDown,
                CloudFaultKind::StorageWriteFail { transient_failures: 2 },
            ]
        );
        assert_eq!(
            fleet.cloud_armed(2),
            vec![CloudFaultKind::StorageWriteFail { transient_failures: 2 }]
        );
    }

    #[test]
    fn crash_only_keeps_named_crashes_and_drops_everything_else() {
        let mut fleet = FleetFaultPlan::empty();
        fleet.flights.push(FaultPlan {
            seed: 0,
            events: vec![
                FaultEvent {
                    kind: FaultKind::ContainerCrash { target: Some("vd-a".into()) },
                    arm_tick: 5,
                    disarm_tick: 9,
                },
                FaultEvent { kind: FaultKind::GpsLoss, arm_tick: 6, disarm_tick: 12 },
                FaultEvent {
                    kind: FaultKind::ContainerCrash { target: None },
                    arm_tick: 7,
                    disarm_tick: 11,
                },
            ],
        });
        fleet.correlated.push(FaultEvent {
            kind: FaultKind::LinkPartition,
            arm_tick: 3,
            disarm_tick: 30,
        });
        fleet.cloud.push(CloudFaultEvent {
            kind: CloudFaultKind::PlannerReject,
            arm_wave: 0,
            disarm_wave: 1,
        });
        let crash = fleet.crash_only();
        assert_eq!(crash.flights.len(), 1);
        assert_eq!(crash.flights[0].events.len(), 1, "unnamed crash dropped too");
        assert!(crash.correlated.is_empty());
        assert!(crash.cloud.is_empty());
        assert_eq!(fleet.crash_targets(), vec!["vd-a".to_string()]);
    }

    #[test]
    fn clock_reports_arm_and_disarm_edges() {
        let plan = FaultPlan::single(FaultKind::GpsLoss, 10, 20);
        let mut clock = FaultClock::new(plan);
        assert!(clock.transitions_at(9).is_empty());
        assert_eq!(
            clock.transitions_at(10),
            vec![FaultTransition { index: 0, armed: true }]
        );
        assert!(clock.transitions_at(15).is_empty());
        assert!(clock.is_armed(0));
        assert_eq!(
            clock.transitions_at(20),
            vec![FaultTransition { index: 0, armed: false }]
        );
        assert!(!clock.is_armed(0));
        assert!(clock.transitions_at(21).is_empty());
    }

    #[test]
    fn empty_plan_never_transitions() {
        let mut clock = FaultClock::new(FaultPlan::empty());
        for tick in 0..300 {
            assert!(clock.transitions_at(tick).is_empty());
        }
    }

    #[test]
    fn clock_handles_skipped_ticks() {
        // A flight that ends early may jump the clock past windows;
        // the disarm edge still fires on the next query.
        let plan = FaultPlan::single(FaultKind::LinkPartition, 5, 8);
        let mut clock = FaultClock::new(plan);
        assert_eq!(clock.transitions_at(6).len(), 1);
        assert_eq!(clock.transitions_at(30).len(), 1);
        assert!(!clock.is_armed(0));
    }
}
