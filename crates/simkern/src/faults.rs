//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is a seeded schedule of typed fault events, each
//! arming at an exact simulated tick and disarming at a later one.
//! Plans are generated from a dedicated [`SmallRng`] stream seeded by
//! the plan seed alone, so:
//!
//! - the same `(seed, horizon)` always yields the same plan, and
//! - building or running an **empty** plan consumes zero draws from
//!   the kernel or board RNG streams — a flight with no faults is
//!   byte-identical to a flight on a build with no fault machinery.
//!
//! The plan itself is pure data; it knows nothing about drones. A
//! [`FaultClock`] walks the schedule tick by tick and reports which
//! events arm or disarm, and the consumer (the fault injector in the
//! core crate) maps each [`FaultKind`] onto the simulated hardware.
//! Everything hashes through [`StateHash`] so armed faults are part
//! of the dual-run determinism check.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::net::BurstLoss;
use crate::statehash::{StateHash, StateHasher};

/// Which simulated sensor a sensor fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorChannel {
    /// The inertial measurement unit (accelerometer + gyro).
    Imu,
    /// The GPS receiver.
    Gps,
    /// The barometric altimeter.
    Baro,
}

impl SensorChannel {
    const ALL: [SensorChannel; 3] = [SensorChannel::Imu, SensorChannel::Gps, SensorChannel::Baro];

    fn tag(self) -> u8 {
        match self {
            SensorChannel::Imu => 0,
            SensorChannel::Gps => 1,
            SensorChannel::Baro => 2,
        }
    }
}

impl StateHash for SensorChannel {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u8(self.tag());
    }
}

/// A typed fault the injector can arm on the simulated system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The sensor stops producing samples entirely.
    SensorDropout { channel: SensorChannel },
    /// The sensor keeps repeating its last good sample.
    SensorStuck { channel: SensorChannel },
    /// The sensor reports with a constant additive bias.
    SensorBias { channel: SensorChannel, bias: f64 },
    /// Total GPS loss (alias for a GPS dropout; the estimator must
    /// dead-reckon on IMU alone).
    GpsLoss,
    /// The ground↔drone command link is fully partitioned.
    LinkPartition,
    /// The command uplink degrades to Gilbert–Elliott burst loss.
    LinkBurstLoss { burst: BurstLoss },
    /// Every `period`-th Binder transaction fails.
    BinderFailure { period: u32 },
    /// Every `period`-th Binder transaction times out.
    BinderTimeout { period: u32 },
    /// A virtual-drone container crashes; on disarm it is restarted
    /// from its checkpoint under supervision.
    ContainerCrash,
    /// Battery cells degrade: the pack delivers each joule of thrust
    /// at `1/health` times the electrical cost.
    BatteryDegradation { health: f64 },
}

impl FaultKind {
    fn tag(&self) -> u8 {
        match self {
            FaultKind::SensorDropout { .. } => 0,
            FaultKind::SensorStuck { .. } => 1,
            FaultKind::SensorBias { .. } => 2,
            FaultKind::GpsLoss => 3,
            FaultKind::LinkPartition => 4,
            FaultKind::LinkBurstLoss { .. } => 5,
            FaultKind::BinderFailure { .. } => 6,
            FaultKind::BinderTimeout { .. } => 7,
            FaultKind::ContainerCrash => 8,
            FaultKind::BatteryDegradation { .. } => 9,
        }
    }
}

impl StateHash for FaultKind {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u8(self.tag());
        match self {
            FaultKind::SensorDropout { channel } | FaultKind::SensorStuck { channel } => {
                channel.state_hash(h);
            }
            FaultKind::SensorBias { channel, bias } => {
                channel.state_hash(h);
                h.write_f64(*bias);
            }
            FaultKind::GpsLoss | FaultKind::LinkPartition | FaultKind::ContainerCrash => {}
            FaultKind::LinkBurstLoss { burst } => {
                h.write_f64(burst.p_good_to_bad);
                h.write_f64(burst.p_bad_to_good);
                h.write_f64(burst.loss_good);
                h.write_f64(burst.loss_bad);
            }
            FaultKind::BinderFailure { period } | FaultKind::BinderTimeout { period } => {
                h.write_u32(*period);
            }
            FaultKind::BatteryDegradation { health } => h.write_f64(*health),
        }
    }
}

/// One scheduled fault: arms at `arm_tick` (inclusive) and disarms
/// at `disarm_tick` (exclusive). Ticks are the per-second observer
/// ticks of the flight loop, i.e. whole simulated seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    pub kind: FaultKind,
    pub arm_tick: u64,
    pub disarm_tick: u64,
}

impl StateHash for FaultEvent {
    fn state_hash(&self, h: &mut StateHasher) {
        self.kind.state_hash(h);
        h.write_u64(self.arm_tick);
        h.write_u64(self.disarm_tick);
    }
}

/// A seeded schedule of fault events over one flight.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The seed the plan was generated from (0 for hand-built plans).
    pub seed: u64,
    /// Events in generation order; overlaps are allowed.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no events. Running it must not perturb anything.
    pub fn empty() -> FaultPlan {
        FaultPlan { seed: 0, events: Vec::new() }
    }

    /// A plan with exactly one event, for targeted tests.
    pub fn single(kind: FaultKind, arm_tick: u64, disarm_tick: u64) -> FaultPlan {
        FaultPlan {
            seed: 0,
            events: vec![FaultEvent { kind, arm_tick, disarm_tick }],
        }
    }

    /// Generates a random plan for a flight of `horizon_ticks`
    /// seconds from a dedicated RNG stream seeded by `seed` alone.
    pub fn generate(seed: u64, horizon_ticks: u64) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xFA17_7C0D_E5EE_D000);
        let horizon = horizon_ticks.max(12);
        let count = rng.gen_range(2..=5);
        let mut events = Vec::with_capacity(count);
        let mut crash_used = false;
        for _ in 0..count {
            let kind = match rng.gen_range(0..10u32) {
                0 => FaultKind::SensorDropout { channel: Self::pick_channel(&mut rng) },
                1 => FaultKind::SensorStuck { channel: Self::pick_channel(&mut rng) },
                2 => FaultKind::SensorBias {
                    channel: Self::pick_channel(&mut rng),
                    bias: rng.gen_range(-2.0..2.0),
                },
                3 => FaultKind::GpsLoss,
                4 => FaultKind::LinkPartition,
                5 => FaultKind::LinkBurstLoss { burst: BurstLoss::cellular_fade() },
                6 => FaultKind::BinderFailure { period: rng.gen_range(2..6) },
                7 => FaultKind::BinderTimeout { period: rng.gen_range(2..6) },
                8 if !crash_used => {
                    crash_used = true;
                    FaultKind::ContainerCrash
                }
                8 => FaultKind::GpsLoss,
                _ => FaultKind::BatteryDegradation { health: rng.gen_range(0.6..0.95) },
            };
            // Arm within the first three quarters so the fault has
            // airtime; keep windows short enough that failsafes can
            // hand control back before the flight budget runs out.
            let arm_tick = rng.gen_range(4..horizon * 3 / 4);
            let duration = rng.gen_range(3u64..=15);
            events.push(FaultEvent { kind, arm_tick, disarm_tick: arm_tick + duration });
        }
        FaultPlan { seed, events }
    }

    fn pick_channel(rng: &mut SmallRng) -> SensorChannel {
        SensorChannel::ALL[rng.gen_range(0..SensorChannel::ALL.len())]
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The tick after which no event is armed any more.
    pub fn last_disarm_tick(&self) -> u64 {
        self.events.iter().map(|e| e.disarm_tick).max().unwrap_or(0)
    }
}

impl StateHash for FaultPlan {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u64(self.seed);
        h.write_usize(self.events.len());
        for e in &self.events {
            e.state_hash(h);
        }
    }
}

/// A transition reported by the [`FaultClock`]: event `index` of the
/// plan armed (`armed == true`) or disarmed at the queried tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultTransition {
    pub index: usize,
    pub armed: bool,
}

/// Walks a [`FaultPlan`] tick by tick, reporting arm/disarm edges.
#[derive(Debug, Clone)]
pub struct FaultClock {
    plan: FaultPlan,
    active: Vec<bool>,
}

impl FaultClock {
    pub fn new(plan: FaultPlan) -> FaultClock {
        let active = vec![false; plan.events.len()];
        FaultClock { plan, active }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether event `index` is currently armed.
    pub fn is_armed(&self, index: usize) -> bool {
        self.active.get(index).copied().unwrap_or(false)
    }

    /// Advances the clock to `tick` and returns the edges that fire
    /// there, in plan order (arms before disarms never interleave
    /// within one event since windows are non-empty).
    pub fn transitions_at(&mut self, tick: u64) -> Vec<FaultTransition> {
        let mut out = Vec::new();
        for (i, e) in self.plan.events.iter().enumerate() {
            let should_be_armed = tick >= e.arm_tick && tick < e.disarm_tick;
            if should_be_armed != self.active[i] {
                self.active[i] = should_be_armed;
                out.push(FaultTransition { index: i, armed: should_be_armed });
            }
        }
        out
    }
}

impl StateHash for FaultClock {
    fn state_hash(&self, h: &mut StateHasher) {
        self.plan.state_hash(h);
        for a in &self.active {
            h.write_bool(*a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = FaultPlan::generate(42, 120);
        let b = FaultPlan::generate(42, 120);
        assert_eq!(a, b);
        assert_eq!(a.hash_value(), b.hash_value());
        let c = FaultPlan::generate(43, 120);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn generated_events_fit_the_horizon() {
        for seed in 0..64 {
            let plan = FaultPlan::generate(seed, 120);
            assert!(
                (2..=5).contains(&plan.events.len()),
                "seed {seed}: {} events",
                plan.events.len()
            );
            for e in &plan.events {
                assert!(e.arm_tick >= 4);
                assert!(e.disarm_tick > e.arm_tick);
                assert!(e.arm_tick < 120 * 3 / 4);
            }
            let crashes = plan
                .events
                .iter()
                .filter(|e| e.kind == FaultKind::ContainerCrash)
                .count();
            assert!(crashes <= 1, "seed {seed}: {crashes} container crashes");
        }
    }

    #[test]
    fn clock_reports_arm_and_disarm_edges() {
        let plan = FaultPlan::single(FaultKind::GpsLoss, 10, 20);
        let mut clock = FaultClock::new(plan);
        assert!(clock.transitions_at(9).is_empty());
        assert_eq!(
            clock.transitions_at(10),
            vec![FaultTransition { index: 0, armed: true }]
        );
        assert!(clock.transitions_at(15).is_empty());
        assert!(clock.is_armed(0));
        assert_eq!(
            clock.transitions_at(20),
            vec![FaultTransition { index: 0, armed: false }]
        );
        assert!(!clock.is_armed(0));
        assert!(clock.transitions_at(21).is_empty());
    }

    #[test]
    fn empty_plan_never_transitions() {
        let mut clock = FaultClock::new(FaultPlan::empty());
        for tick in 0..300 {
            assert!(clock.transitions_at(tick).is_empty());
        }
    }

    #[test]
    fn clock_handles_skipped_ticks() {
        // A flight that ends early may jump the clock past windows;
        // the disarm edge still fires on the next query.
        let plan = FaultPlan::single(FaultKind::LinkPartition, 5, 8);
        let mut clock = FaultClock::new(plan);
        assert_eq!(clock.transitions_at(6).len(), 1);
        assert_eq!(clock.transitions_at(30).len(), 1);
        assert!(!clock.is_armed(0));
    }
}
