//! The audited home for RNG construction (dronelint R10).
//!
//! Every random stream in the simulation must be a pure function of
//! the run seed, or determinism silently dies: an ad-hoc
//! `SmallRng::seed_from_u64(seed + 1)` in one subsystem collides with
//! another subsystem's stream, and a refactor that reorders draws
//! perturbs every digest downstream. R10 therefore bans RNG
//! construction everywhere in sim-state crates *except this file* —
//! constructing a stream means calling one of these funnels, each of
//! which documents which stream family it creates and how the seed
//! was derived.
//!
//! Stream families:
//!
//! - **kernel/root streams** ([`stream_rng`]): the per-kernel RNG and
//!   any consumer handed a seed already derived through
//!   [`substream_seed`](crate::substream_seed) (e.g. the planner's
//!   annealer, seeded per solve by its caller).
//! - **fault streams** ([`fault_stream_rng`],
//!   [`fleet_fault_stream_rng`]): dedicated XOR-separated streams for
//!   fault-plan generation, so generating a plan never perturbs the
//!   simulation streams it will be injected into.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Constructs a simulation stream directly from `seed`.
///
/// `seed` must itself be deterministic: the run seed, or a value
/// derived from it via [`substream_seed`](crate::substream_seed).
pub fn stream_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// XOR separator for the per-flight fault-plan stream. The constant
/// predates this module; changing it would reseed every pinned chaos
/// baseline.
const FAULT_STREAM: u64 = 0xFA17_7C0D_E5EE_D000;

/// XOR separator for the fleet-level fault-plan stream.
const FLEET_FAULT_STREAM: u64 = 0xF1EE_7FA1_7000_0000;

/// XOR separator for the adversarial attack-plan stream
/// (`workloads::attacks`). Attacks mirror faults: plan generation
/// draws from its own family so arming an attack never perturbs the
/// kernel or board streams of the flight it targets.
const ATTACK_STREAM: u64 = 0xA77A_C4ED_7E4A_4700;

/// XOR separator for the RT-deadline monitor stream. The monitor
/// samples the kernel's latency *model* hundreds of times per tick;
/// giving it a dedicated stream keeps those draws invisible to the
/// kernel RNG the pinned chaos baselines fingerprint.
const RT_MONITOR_STREAM: u64 = 0x4007_11E4_D11E_5500;

/// Constructs the dedicated per-flight fault-plan stream for `seed`.
pub fn fault_stream_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ FAULT_STREAM)
}

/// Constructs the dedicated fleet fault-plan stream for `seed`.
pub fn fleet_fault_stream_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ FLEET_FAULT_STREAM)
}

/// Constructs the dedicated attack-plan stream for `seed`.
pub fn attack_stream_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ ATTACK_STREAM)
}

/// Constructs the dedicated RT-deadline-monitor stream for `seed`.
pub fn rt_monitor_stream_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ RT_MONITOR_STREAM)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_reproducible() {
        let a: u64 = stream_rng(7).gen();
        let b: u64 = stream_rng(7).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn stream_families_are_separated() {
        let draws: Vec<u64> = vec![
            stream_rng(7).gen(),
            fault_stream_rng(7).gen(),
            fleet_fault_stream_rng(7).gen(),
            attack_stream_rng(7).gen(),
            rt_monitor_stream_rng(7).gen(),
        ];
        for (i, a) in draws.iter().enumerate() {
            for (j, b) in draws.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "families {i} and {j} collide");
                }
            }
        }
    }

    #[test]
    fn fault_stream_matches_the_historical_xor_derivation() {
        // The pinned chaos baselines depend on these exact streams.
        let legacy: u64 = SmallRng::seed_from_u64(9 ^ 0xFA17_7C0D_E5EE_D000).gen();
        assert_eq!(legacy, fault_stream_rng(9).gen::<u64>());
        let legacy_fleet: u64 = SmallRng::seed_from_u64(9 ^ 0xF1EE_7FA1_7000_0000).gen();
        assert_eq!(legacy_fleet, fleet_fault_stream_rng(9).gen::<u64>());
    }
}
