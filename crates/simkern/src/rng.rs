//! The audited home for RNG construction (dronelint R10).
//!
//! Every random stream in the simulation must be a pure function of
//! the run seed, or determinism silently dies: an ad-hoc
//! `SmallRng::seed_from_u64(seed + 1)` in one subsystem collides with
//! another subsystem's stream, and a refactor that reorders draws
//! perturbs every digest downstream. R10 therefore bans RNG
//! construction everywhere in sim-state crates *except this file* —
//! constructing a stream means calling one of these funnels, each of
//! which documents which stream family it creates and how the seed
//! was derived.
//!
//! Stream families:
//!
//! - **kernel/root streams** ([`stream_rng`]): the per-kernel RNG and
//!   any consumer handed a seed already derived through
//!   [`substream_seed`](crate::substream_seed) (e.g. the planner's
//!   annealer, seeded per solve by its caller).
//! - **fault streams** ([`fault_stream_rng`],
//!   [`fleet_fault_stream_rng`]): dedicated XOR-separated streams for
//!   fault-plan generation, so generating a plan never perturbs the
//!   simulation streams it will be injected into.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Constructs a simulation stream directly from `seed`.
///
/// `seed` must itself be deterministic: the run seed, or a value
/// derived from it via [`substream_seed`](crate::substream_seed).
pub fn stream_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// XOR separator for the per-flight fault-plan stream. The constant
/// predates this module; changing it would reseed every pinned chaos
/// baseline.
const FAULT_STREAM: u64 = 0xFA17_7C0D_E5EE_D000;

/// XOR separator for the fleet-level fault-plan stream.
const FLEET_FAULT_STREAM: u64 = 0xF1EE_7FA1_7000_0000;

/// XOR separator for the adversarial attack-plan stream
/// (`workloads::attacks`). Attacks mirror faults: plan generation
/// draws from its own family so arming an attack never perturbs the
/// kernel or board streams of the flight it targets.
const ATTACK_STREAM: u64 = 0xA77A_C4ED_7E4A_4700;

/// XOR separator for the RT-deadline monitor stream. The monitor
/// samples the kernel's latency *model* hundreds of times per tick;
/// giving it a dedicated stream keeps those draws invisible to the
/// kernel RNG the pinned chaos baselines fingerprint.
const RT_MONITOR_STREAM: u64 = 0x4007_11E4_D11E_5500;

/// XOR separator for the adaptive-adversary feedback stream: the
/// per-tenant [`AttackerBrain`](index.html) policies draw their
/// probe sizes and re-plan decisions here. Separate from
/// [`ATTACK_STREAM`] so an adaptive plan and an open-loop plan with
/// the same seed never share draws, and the brains' consumption can
/// vary tick by tick without perturbing plan generation.
const ADVERSARY_STREAM: u64 = 0xADA7_71FE_ED8A_C000;

/// XOR separator for the token-bucket refill-jitter stream (the
/// Binder driver's defense against refill-cadence probing). Draws
/// are one-per-epoch via [`refill_jitter_ns`], never a long-lived
/// RNG, so the jitter is a pure function of (seed, tenant, epoch).
const REFILL_JITTER_STREAM: u64 = 0x8EF1_11D1_77E8_0000;

/// Constructs the dedicated per-flight fault-plan stream for `seed`.
pub fn fault_stream_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ FAULT_STREAM)
}

/// Constructs the dedicated fleet fault-plan stream for `seed`.
pub fn fleet_fault_stream_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ FLEET_FAULT_STREAM)
}

/// Constructs the dedicated attack-plan stream for `seed`.
pub fn attack_stream_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ ATTACK_STREAM)
}

/// Constructs the dedicated RT-deadline-monitor stream for `seed`.
pub fn rt_monitor_stream_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ RT_MONITOR_STREAM)
}

/// Constructs the adaptive-adversary feedback stream for one
/// attacker brain: `seed` is the adaptive plan's seed, `attacker`
/// the brain's index within the plan. Each brain gets its own
/// substream so adding an attacker never shifts another's draws.
pub fn adversary_stream_rng(seed: u64, attacker: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ ADVERSARY_STREAM ^ attacker.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One refill-boundary jitter draw, nanoseconds in `[0, max_ns)`:
/// the delay the Binder driver adds to token-bucket refill epoch
/// `epoch` for tenant `tenant_key`. A fresh single-draw RNG per call
/// keeps the jitter a pure function of its inputs — no stream state
/// to perturb, nothing for a replay to get out of sync with.
pub fn refill_jitter_ns(seed: u64, tenant_key: u64, epoch: u64, max_ns: u64) -> u64 {
    if max_ns == 0 {
        return 0;
    }
    let mut rng = SmallRng::seed_from_u64(
        seed ^ REFILL_JITTER_STREAM
            ^ tenant_key.wrapping_mul(0xD6E8_FEB8_6659_FD93)
            ^ epoch.wrapping_mul(0xA24B_AED4_963E_E407),
    );
    rand::Rng::gen_range(&mut rng, 0..max_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_reproducible() {
        let a: u64 = stream_rng(7).gen();
        let b: u64 = stream_rng(7).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn stream_families_are_separated() {
        let draws: Vec<u64> = vec![
            stream_rng(7).gen(),
            fault_stream_rng(7).gen(),
            fleet_fault_stream_rng(7).gen(),
            attack_stream_rng(7).gen(),
            rt_monitor_stream_rng(7).gen(),
            adversary_stream_rng(7, 0).gen(),
            adversary_stream_rng(7, 1).gen(),
        ];
        for (i, a) in draws.iter().enumerate() {
            for (j, b) in draws.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "families {i} and {j} collide");
                }
            }
        }
    }

    #[test]
    fn refill_jitter_is_pure_and_bounded() {
        for epoch in 0..64 {
            let a = refill_jitter_ns(9, 3, epoch, 1_500_000_000);
            let b = refill_jitter_ns(9, 3, epoch, 1_500_000_000);
            assert_eq!(a, b, "jitter must be a pure function of its inputs");
            assert!(a < 1_500_000_000);
        }
        // Distinct tenants and epochs draw distinct delays (the
        // cadence an adaptive attacker would have to learn).
        let spread: std::collections::BTreeSet<u64> =
            (0..16).map(|e| refill_jitter_ns(9, 3, e, 1_500_000_000)).collect();
        assert!(spread.len() > 8, "jitter barely varies: {spread:?}");
        assert_eq!(refill_jitter_ns(9, 3, 0, 0), 0, "zero range disables jitter");
    }

    #[test]
    fn fault_stream_matches_the_historical_xor_derivation() {
        // The pinned chaos baselines depend on these exact streams.
        let legacy: u64 = SmallRng::seed_from_u64(9 ^ 0xFA17_7C0D_E5EE_D000).gen();
        assert_eq!(legacy, fault_stream_rng(9).gen::<u64>());
        let legacy_fleet: u64 = SmallRng::seed_from_u64(9 ^ 0xF1EE_7FA1_7000_0000).gen();
        assert_eq!(legacy_fleet, fleet_fault_stream_rng(9).gen::<u64>());
    }
}
