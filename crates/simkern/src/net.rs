//! Network link models.
//!
//! AnDrone communicates with drones over cellular internet (Section
//! 6.5): the prototype tethers to a Nexus 5X on T-Mobile LTE. The
//! paper measures MAVLink command latency over ~150,000 commands in
//! 12 hours: average 70 ms, maximum 356 ms, standard deviation 7.2 ms,
//! with 6 packets lost. RF hobby links run 8–85 ms for comparison.
//!
//! [`LinkModel`] reproduces those distributions: a base propagation
//! delay, log-normal-ish jitter with a rare heavy tail (cell
//! handovers, scheduling stalls), and packet loss. Loss is either
//! independent per packet (`loss_prob`) or bursty via an optional
//! two-state Gilbert–Elliott chain ([`BurstLoss`]): the channel
//! alternates between a Good and a Bad state, each with its own loss
//! probability, so losses cluster the way cellular fades do.

use rand::Rng;

use crate::statehash::{StateHash, StateHasher};
use crate::time::SimDuration;

/// Parameters of a two-state Gilbert–Elliott burst-loss channel.
///
/// Each packet first advances the Good/Bad Markov chain, then is
/// lost with the state's loss probability. The stationary fraction
/// of time spent in the Bad state is
/// `p_good_to_bad / (p_good_to_bad + p_bad_to_good)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstLoss {
    /// Per-packet probability of transitioning Good → Bad.
    pub p_good_to_bad: f64,
    /// Per-packet probability of transitioning Bad → Good.
    pub p_bad_to_good: f64,
    /// Loss probability while in the Good state.
    pub loss_good: f64,
    /// Loss probability while in the Bad state.
    pub loss_bad: f64,
}

impl BurstLoss {
    /// A cellular fade: rare entry into a Bad state that drops most
    /// packets for a handful of consecutive sends.
    pub fn cellular_fade() -> BurstLoss {
        BurstLoss {
            p_good_to_bad: 0.02,
            p_bad_to_good: 0.25,
            loss_good: 0.001,
            loss_bad: 0.8,
        }
    }

    /// The long-run packet loss rate implied by the chain.
    pub fn stationary_loss(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom <= 0.0 {
            return self.loss_good;
        }
        let pi_bad = self.p_good_to_bad / denom;
        pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good
    }
}

/// Mutable per-channel state for the Gilbert–Elliott chain. Each
/// directional channel owns one so bursts on independent links don't
/// correlate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkState {
    /// Whether the chain is currently in the Bad (lossy) state.
    pub in_bad: bool,
}

impl StateHash for LinkState {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_bool(self.in_bad);
    }
}

/// A one-way network link's delay/loss model.
#[derive(Debug, Clone, Copy)]
pub struct LinkModel {
    /// Base one-way delay in milliseconds.
    pub base_ms: f64,
    /// Mean of the common-case jitter (exponential), ms.
    pub jitter_mean_ms: f64,
    /// Probability a packet hits the heavy tail (handover etc.).
    pub tail_prob: f64,
    /// Mean extra delay in the tail, ms.
    pub tail_mean_ms: f64,
    /// Hard cap on total delay, ms.
    pub max_ms: f64,
    /// Independent packet loss probability (ignored when `burst` is
    /// set — the Gilbert–Elliott chain decides loss instead).
    pub loss_prob: f64,
    /// Optional burst-loss mode; `None` keeps independent loss.
    pub burst: Option<BurstLoss>,
}

impl LinkModel {
    /// A perfect link: zero delay, zero loss. Useful in tests.
    pub const IDEAL: LinkModel = LinkModel {
        base_ms: 0.0,
        jitter_mean_ms: 0.0,
        tail_prob: 0.0,
        tail_mean_ms: 0.0,
        max_ms: 0.0,
        loss_prob: 0.0,
        burst: None,
    };

    /// The LTE cellular link calibrated to Section 6.5's measurements
    /// (avg 70 ms, max 356 ms, stddev 7.2 ms, loss 6/150,000).
    pub fn cellular_lte() -> LinkModel {
        LinkModel {
            base_ms: 64.5,
            jitter_mean_ms: 5.3,
            tail_prob: 0.0018,
            tail_mean_ms: 45.0,
            max_ms: 356.0,
            loss_prob: 6.0 / 150_000.0,
            burst: None,
        }
    }

    /// The LTE link in a degraded cell: same delay distribution, but
    /// bursty Gilbert–Elliott loss instead of independent loss.
    pub fn cellular_lte_degraded() -> LinkModel {
        LinkModel {
            burst: Some(BurstLoss::cellular_fade()),
            ..LinkModel::cellular_lte()
        }
    }

    /// A typical hobby-grade RF remote-control link (8–85 ms; we model
    /// the mid-range).
    pub fn rf_remote() -> LinkModel {
        LinkModel {
            base_ms: 8.0,
            jitter_mean_ms: 12.0,
            tail_prob: 0.01,
            tail_mean_ms: 25.0,
            max_ms: 85.0,
            loss_prob: 1e-4,
            burst: None,
        }
    }

    /// A wired LAN/Ethernet link (the Gigabit switch used in the
    /// paper's iperf runs).
    pub fn ethernet() -> LinkModel {
        LinkModel {
            base_ms: 0.2,
            jitter_mean_ms: 0.05,
            tail_prob: 0.001,
            tail_mean_ms: 0.5,
            max_ms: 5.0,
            loss_prob: 0.0,
            burst: None,
        }
    }

    /// Samples the fate of one packet on a memoryless channel:
    /// `Some(delay)` if delivered, `None` if lost. Any `burst`
    /// parameters are ignored (there is no chain state to advance);
    /// use [`LinkModel::sample_with`] for burst-loss links.
    pub fn sample(&self, rng: &mut impl Rng) -> Option<SimDuration> {
        if self.loss_prob > 0.0 && rng.gen::<f64>() < self.loss_prob {
            return None;
        }
        self.sample_delay(rng)
    }

    /// Samples one packet, advancing the Gilbert–Elliott chain in
    /// `state` when `burst` is set. With `burst: None` this draws
    /// exactly like [`LinkModel::sample`], so uniform-loss callers
    /// can migrate without perturbing the RNG stream.
    pub fn sample_with(&self, state: &mut LinkState, rng: &mut impl Rng) -> Option<SimDuration> {
        let lost = match self.burst {
            None => self.loss_prob > 0.0 && rng.gen::<f64>() < self.loss_prob,
            Some(b) => {
                if state.in_bad {
                    if b.p_bad_to_good > 0.0 && rng.gen::<f64>() < b.p_bad_to_good {
                        state.in_bad = false;
                    }
                } else if b.p_good_to_bad > 0.0 && rng.gen::<f64>() < b.p_good_to_bad {
                    state.in_bad = true;
                }
                let p = if state.in_bad { b.loss_bad } else { b.loss_good };
                p > 0.0 && rng.gen::<f64>() < p
            }
        };
        if lost {
            return None;
        }
        self.sample_delay(rng)
    }

    /// The delivered-packet delay draw shared by both sampling modes.
    fn sample_delay(&self, rng: &mut impl Rng) -> Option<SimDuration> {
        let mut ms = self.base_ms;
        if self.jitter_mean_ms > 0.0 {
            let u: f64 = rng.gen::<f64>().max(1e-300);
            ms += -self.jitter_mean_ms * u.ln();
        }
        if self.tail_prob > 0.0 && rng.gen::<f64>() < self.tail_prob {
            let u: f64 = rng.gen::<f64>().max(1e-300);
            ms += -self.tail_mean_ms * u.ln();
        }
        Some(SimDuration::from_secs_f64((ms.min(self.max_ms)) / 1e3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn cellular_matches_section_65() {
        let link = LinkModel::cellular_lte();
        let mut rng = SmallRng::seed_from_u64(65);
        let mut s = Summary::new();
        let mut lost = 0u32;
        let n = 150_000;
        for _ in 0..n {
            match link.sample(&mut rng) {
                Some(d) => s.record(d.as_secs_f64() * 1e3),
                None => lost += 1,
            }
        }
        assert!((65.0..75.0).contains(&s.mean()), "avg {} ms", s.mean());
        assert!(s.max() <= 356.0, "max {} ms", s.max());
        assert!(s.max() > 150.0, "tail should be visible: {}", s.max());
        assert!((4.0..11.0).contains(&s.stddev()), "stddev {}", s.stddev());
        assert!(lost <= 20, "lost {lost}");
    }

    #[test]
    fn ideal_link_is_instant_and_lossless() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert_eq!(LinkModel::IDEAL.sample(&mut rng), Some(SimDuration::ZERO));
        }
    }

    #[test]
    fn burst_loss_matches_stationary_rate() {
        let link = LinkModel::cellular_lte_degraded();
        let burst = link.burst.expect("degraded link has burst params");
        let expected = burst.stationary_loss();
        let mut rng = SmallRng::seed_from_u64(66);
        let mut state = LinkState::default();
        let mut lost = 0u32;
        let n = 200_000;
        for _ in 0..n {
            if link.sample_with(&mut state, &mut rng).is_none() {
                lost += 1;
            }
        }
        let measured = f64::from(lost) / f64::from(n);
        assert!(
            (measured - expected).abs() < 0.01,
            "measured {measured:.4}, stationary {expected:.4}"
        );
    }

    #[test]
    fn burst_losses_cluster() {
        // P(loss | previous packet lost) must exceed the marginal
        // loss rate — that is what makes the channel bursty.
        let link = LinkModel::cellular_lte_degraded();
        let mut rng = SmallRng::seed_from_u64(67);
        let mut state = LinkState::default();
        let (mut lost, mut lost_after_lost, mut prev_lost) = (0u32, 0u32, false);
        let n = 200_000;
        for _ in 0..n {
            let this_lost = link.sample_with(&mut state, &mut rng).is_none();
            if this_lost {
                lost += 1;
                if prev_lost {
                    lost_after_lost += 1;
                }
            }
            prev_lost = this_lost;
        }
        let marginal = f64::from(lost) / f64::from(n);
        let conditional = f64::from(lost_after_lost) / f64::from(lost);
        assert!(
            conditional > 3.0 * marginal,
            "conditional {conditional:.3} vs marginal {marginal:.3}"
        );
    }

    #[test]
    fn sample_with_without_burst_matches_sample() {
        let link = LinkModel::cellular_lte();
        let mut a = SmallRng::seed_from_u64(68);
        let mut b = SmallRng::seed_from_u64(68);
        let mut state = LinkState::default();
        for _ in 0..10_000 {
            assert_eq!(link.sample(&mut a), link.sample_with(&mut state, &mut b));
        }
        assert!(!state.in_bad);
    }

    #[test]
    fn rf_link_stays_within_hobby_band() {
        let link = LinkModel::rf_remote();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            if let Some(d) = link.sample(&mut rng) {
                let ms = d.as_secs_f64() * 1e3;
                assert!((8.0..=85.0).contains(&ms), "{ms} ms");
            }
        }
    }
}
