//! Network link models.
//!
//! AnDrone communicates with drones over cellular internet (Section
//! 6.5): the prototype tethers to a Nexus 5X on T-Mobile LTE. The
//! paper measures MAVLink command latency over ~150,000 commands in
//! 12 hours: average 70 ms, maximum 356 ms, standard deviation 7.2 ms,
//! with 6 packets lost. RF hobby links run 8–85 ms for comparison.
//!
//! [`LinkModel`] reproduces those distributions: a base propagation
//! delay, log-normal-ish jitter with a rare heavy tail (cell
//! handovers, scheduling stalls), and independent packet loss.

use rand::Rng;

use crate::time::SimDuration;

/// A one-way network link's delay/loss model.
#[derive(Debug, Clone, Copy)]
pub struct LinkModel {
    /// Base one-way delay in milliseconds.
    pub base_ms: f64,
    /// Mean of the common-case jitter (exponential), ms.
    pub jitter_mean_ms: f64,
    /// Probability a packet hits the heavy tail (handover etc.).
    pub tail_prob: f64,
    /// Mean extra delay in the tail, ms.
    pub tail_mean_ms: f64,
    /// Hard cap on total delay, ms.
    pub max_ms: f64,
    /// Independent packet loss probability.
    pub loss_prob: f64,
}

impl LinkModel {
    /// A perfect link: zero delay, zero loss. Useful in tests.
    pub const IDEAL: LinkModel = LinkModel {
        base_ms: 0.0,
        jitter_mean_ms: 0.0,
        tail_prob: 0.0,
        tail_mean_ms: 0.0,
        max_ms: 0.0,
        loss_prob: 0.0,
    };

    /// The LTE cellular link calibrated to Section 6.5's measurements
    /// (avg 70 ms, max 356 ms, stddev 7.2 ms, loss 6/150,000).
    pub fn cellular_lte() -> LinkModel {
        LinkModel {
            base_ms: 64.5,
            jitter_mean_ms: 5.3,
            tail_prob: 0.0018,
            tail_mean_ms: 45.0,
            max_ms: 356.0,
            loss_prob: 6.0 / 150_000.0,
        }
    }

    /// A typical hobby-grade RF remote-control link (8–85 ms; we model
    /// the mid-range).
    pub fn rf_remote() -> LinkModel {
        LinkModel {
            base_ms: 8.0,
            jitter_mean_ms: 12.0,
            tail_prob: 0.01,
            tail_mean_ms: 25.0,
            max_ms: 85.0,
            loss_prob: 1e-4,
        }
    }

    /// A wired LAN/Ethernet link (the Gigabit switch used in the
    /// paper's iperf runs).
    pub fn ethernet() -> LinkModel {
        LinkModel {
            base_ms: 0.2,
            jitter_mean_ms: 0.05,
            tail_prob: 0.001,
            tail_mean_ms: 0.5,
            max_ms: 5.0,
            loss_prob: 0.0,
        }
    }

    /// Samples the fate of one packet: `Some(delay)` if delivered,
    /// `None` if lost.
    pub fn sample(&self, rng: &mut impl Rng) -> Option<SimDuration> {
        if self.loss_prob > 0.0 && rng.gen::<f64>() < self.loss_prob {
            return None;
        }
        let mut ms = self.base_ms;
        if self.jitter_mean_ms > 0.0 {
            let u: f64 = rng.gen::<f64>().max(1e-300);
            ms += -self.jitter_mean_ms * u.ln();
        }
        if self.tail_prob > 0.0 && rng.gen::<f64>() < self.tail_prob {
            let u: f64 = rng.gen::<f64>().max(1e-300);
            ms += -self.tail_mean_ms * u.ln();
        }
        Some(SimDuration::from_secs_f64((ms.min(self.max_ms)) / 1e3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn cellular_matches_section_65() {
        let link = LinkModel::cellular_lte();
        let mut rng = SmallRng::seed_from_u64(65);
        let mut s = Summary::new();
        let mut lost = 0u32;
        let n = 150_000;
        for _ in 0..n {
            match link.sample(&mut rng) {
                Some(d) => s.record(d.as_secs_f64() * 1e3),
                None => lost += 1,
            }
        }
        assert!((65.0..75.0).contains(&s.mean()), "avg {} ms", s.mean());
        assert!(s.max() <= 356.0, "max {} ms", s.max());
        assert!(s.max() > 150.0, "tail should be visible: {}", s.max());
        assert!((4.0..11.0).contains(&s.stddev()), "stddev {}", s.stddev());
        assert!(lost <= 20, "lost {lost}");
    }

    #[test]
    fn ideal_link_is_instant_and_lossless() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert_eq!(LinkModel::IDEAL.sample(&mut rng), Some(SimDuration::ZERO));
        }
    }

    #[test]
    fn rf_link_stays_within_hobby_band() {
        let link = LinkModel::rf_remote();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            if let Some(d) = link.sample(&mut rng) {
                let ms = d.as_secs_f64() * 1e3;
                assert!((8.0..=85.0).contains(&ms), "{ms} ms");
            }
        }
    }
}
