//! Deterministic state hashing (the runtime half of `dronelint`).
//!
//! Every simulated subsystem implements [`StateHash`], folding its
//! observable state into a [`StateHasher`]. The dual-run sanitizer
//! executes the same mission twice under one seed and compares the
//! per-tick hash vectors; any nondeterminism source — unordered map
//! iteration, a wall-clock read, unseeded randomness — shows up as a
//! hash divergence attributable to the first component and tick where
//! the runs split.
//!
//! The hasher is FNV-1a (64-bit): tiny, allocation-free, and — unlike
//! `std::collections::hash_map::DefaultHasher` — guaranteed stable
//! across Rust releases and processes, which is what makes hashes
//! comparable between runs and recordable in test expectations.

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental, stable 64-bit state hasher.
#[derive(Debug, Clone)]
pub struct StateHasher {
    state: u64,
}

impl Default for StateHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StateHasher {
    /// Creates a hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        StateHasher { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the hash.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Folds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds an `i64`.
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `usize` widened to 64 bits so 32- and 64-bit hosts
    /// hash identically.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds a bool as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Folds an `f64` by bit pattern. NaN payloads and signed zeros
    /// are distinguished deliberately: a run that produces `-0.0`
    /// where another produced `0.0` has diverged.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a string with a length prefix (so `("ab", "c")` and
    /// `("a", "bc")` hash differently).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Derives a deterministic RNG substream seed from a root seed and a
/// `(stream, index)` coordinate — the pure FNV-1a fold the fleet
/// executor uses for per-flight kernel seeds (`stream` = wave,
/// `index` = global flight index). No hidden counters: replaying the
/// same coordinates replays the same seed, which is what lets flights
/// run on worker threads in any completion order and still boot
/// bit-identical kernels.
pub fn substream_seed(root: u64, stream: u64, index: usize) -> u64 {
    let mut h = StateHasher::new();
    h.write_u64(root);
    h.write_u64(stream);
    h.write_usize(index);
    h.finish()
}

/// A type whose deterministic-simulation-relevant state can be folded
/// into a [`StateHasher`].
///
/// Implementations must visit state in a *fixed* order (struct field
/// order, `BTreeMap` iteration order) and must cover every field that
/// influences future behavior. Caches are included on purpose: a
/// cache whose contents differ between same-seed runs is itself a
/// determinism bug even if reads happen to coincide.
pub trait StateHash {
    /// Folds this value's state into `h`.
    fn state_hash(&self, h: &mut StateHasher);

    /// Convenience: the value's standalone hash.
    fn hash_value(&self) -> u64 {
        let mut h = StateHasher::new();
        self.state_hash(&mut h);
        h.finish()
    }
}

impl StateHash for crate::time::SimTime {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u64(self.as_nanos());
    }
}

impl StateHash for crate::time::SimDuration {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u64(self.as_nanos());
    }
}

impl StateHash for crate::task::Pid {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u32(self.0);
    }
}

impl StateHash for crate::task::Euid {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u32(self.0);
    }
}

impl StateHash for crate::task::ContainerId {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_u32(self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a 64 of "a" is 0xaf63dc4c8601ec8c.
        let mut h = StateHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn empty_hash_is_offset_basis() {
        assert_eq!(StateHasher::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn length_prefix_disambiguates_strings() {
        let mut a = StateHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StateHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn substream_seeds_are_pure_and_distinct() {
        // Pure: same coordinates, same seed.
        assert_eq!(substream_seed(7, 1, 2), substream_seed(7, 1, 2));
        // Every coordinate perturbs the stream.
        let base = substream_seed(7, 1, 2);
        assert_ne!(base, substream_seed(8, 1, 2));
        assert_ne!(base, substream_seed(7, 2, 2));
        assert_ne!(base, substream_seed(7, 1, 3));
        // (stream, index) does not collide with (index, stream).
        assert_ne!(substream_seed(7, 1, 2), substream_seed(7, 2, 1));
    }

    #[test]
    fn f64_sign_of_zero_is_visible() {
        let mut a = StateHasher::new();
        a.write_f64(0.0);
        let mut b = StateHasher::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }
}
