//! Shared-resource contention model.
//!
//! Figure 10 of the paper measures how PassMark CPU, disk, and memory
//! scores degrade as more virtual drones run the benchmark
//! simultaneously. The observed shapes are classic proportional-share
//! contention: a CPU-bound multi-threaded benchmark saturates all four
//! Cortex-A53 cores on its own (so N instances slow down ~N×), while a
//! single disk or memory benchmark instance only demands ~60-70% of
//! the bottleneck bandwidth (so contention bites sub-linearly).
//!
//! `SharedResource` implements exactly that: clients register a
//! standalone demand, and the resource computes each client's
//! proportional-share rate when aggregate demand exceeds capacity.

use std::collections::BTreeMap;

/// The hardware bottlenecks a benchmark can contend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceKind {
    /// CPU cycles across all cores.
    Cpu,
    /// microSD card bandwidth.
    DiskBandwidth,
    /// DRAM bandwidth.
    MemoryBandwidth,
    /// Network interface bandwidth.
    NetworkBandwidth,
}

impl ResourceKind {
    /// All modelled resource kinds.
    pub const ALL: [ResourceKind; 4] = [
        ResourceKind::Cpu,
        ResourceKind::DiskBandwidth,
        ResourceKind::MemoryBandwidth,
        ResourceKind::NetworkBandwidth,
    ];
}

/// Identifier for a client holding demand on a resource.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub String);

impl<T: Into<String>> From<T> for ClientId {
    fn from(s: T) -> Self {
        ClientId(s.into())
    }
}

/// A single contended resource with proportional sharing.
#[derive(Debug, Clone)]
pub struct SharedResource {
    kind: ResourceKind,
    /// Capacity in abstract units per second. Demands use the same
    /// units, so only the ratio matters.
    capacity: f64,
    demands: BTreeMap<ClientId, f64>,
    /// cgroup-style bandwidth caps (quota over the scheduling
    /// period, same units as demand): a capped client's *effective*
    /// demand is `min(demand, quota)` no matter how much it asks
    /// for. Empty unless enforcement armed a cap, so uncapped runs
    /// hash and behave exactly as before quotas existed.
    quotas: BTreeMap<ClientId, f64>,
}

impl SharedResource {
    /// Creates a resource with the given capacity (units/second).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive and finite; a
    /// zero-capacity resource cannot serve any demand and indicates a
    /// construction bug.
    pub fn new(kind: ResourceKind, capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "resource capacity must be positive"
        );
        SharedResource {
            kind,
            capacity,
            demands: BTreeMap::new(),
            quotas: BTreeMap::new(),
        }
    }

    /// The resource kind.
    pub fn kind(&self) -> ResourceKind {
        self.kind
    }

    /// The configured capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Registers (or replaces) a client's standalone demand.
    ///
    /// Negative or non-finite demands are clamped to zero.
    pub fn register(&mut self, client: impl Into<ClientId>, demand: f64) {
        let demand = if demand.is_finite() { demand.max(0.0) } else { 0.0 };
        self.demands.insert(client.into(), demand);
    }

    /// Removes a client's demand (its quota, if any, stays armed for
    /// any demand it registers later).
    pub fn unregister(&mut self, client: &ClientId) {
        self.demands.remove(client);
    }

    /// Arms a cgroup-style bandwidth cap for `client`: however much
    /// demand it registers, its effective demand is clamped to
    /// `quota`. Negative or non-finite quotas clamp to zero (a fully
    /// frozen client).
    pub fn set_quota(&mut self, client: impl Into<ClientId>, quota: f64) {
        let quota = if quota.is_finite() { quota.max(0.0) } else { 0.0 };
        self.quotas.insert(client.into(), quota);
    }

    /// Removes `client`'s bandwidth cap.
    pub fn clear_quota(&mut self, client: &ClientId) {
        self.quotas.remove(client);
    }

    /// The armed cap for `client`, if any.
    pub fn quota_for(&self, client: &ClientId) -> Option<f64> {
        self.quotas.get(client).copied()
    }

    /// A client's demand after its bandwidth cap, if armed.
    fn effective_demand(&self, client: &ClientId, demand: f64) -> f64 {
        match self.quotas.get(client) {
            Some(q) => demand.min(*q),
            None => demand,
        }
    }

    /// Aggregate effective demand across clients (bandwidth caps
    /// applied).
    pub fn total_demand(&self) -> f64 {
        self.demands
            .iter()
            .map(|(c, d)| self.effective_demand(c, *d))
            .sum()
    }

    /// Number of registered clients.
    pub fn clients(&self) -> usize {
        self.demands.len()
    }

    /// Rate actually delivered to `client` (units/second).
    ///
    /// When aggregate demand fits within capacity every client runs at
    /// full demand; otherwise each receives a proportional share.
    pub fn rate_for(&self, client: &ClientId) -> f64 {
        let demand = match self.demands.get(client) {
            Some(d) => self.effective_demand(client, *d),
            None => return 0.0,
        };
        let total = self.total_demand();
        if total <= self.capacity {
            demand
        } else {
            demand * self.capacity / total
        }
    }

    /// Slowdown factor for `client` relative to running alone
    /// (>= 1.0). Returns 1.0 for unknown or zero-demand clients.
    pub fn slowdown_for(&self, client: &ClientId) -> f64 {
        let demand = self.demands.get(client).copied().unwrap_or(0.0);
        if demand <= 0.0 {
            return 1.0;
        }
        // Running alone, the client may itself exceed capacity (e.g. a
        // 4-thread CPU benchmark on 4 cores demands exactly capacity);
        // the baseline rate is therefore min(demand, capacity).
        let alone = demand.min(self.capacity);
        let now = self.rate_for(client);
        if now <= 0.0 {
            f64::INFINITY
        } else {
            (alone / now).max(1.0)
        }
    }
}

/// The full set of contended resources on the drone SBC.
#[derive(Debug, Clone)]
pub struct ResourceSet {
    resources: BTreeMap<ResourceKind, SharedResource>,
}

impl ResourceSet {
    /// Creates the Raspberry Pi 3 resource set.
    ///
    /// Capacities are normalized: CPU capacity is 4.0 (four cores of
    /// one unit each); bandwidth resources are 1.0 (fractions of the
    /// device's peak bandwidth).
    pub fn rpi3() -> Self {
        let mut resources = BTreeMap::new();
        resources.insert(
            ResourceKind::Cpu,
            SharedResource::new(ResourceKind::Cpu, 4.0),
        );
        resources.insert(
            ResourceKind::DiskBandwidth,
            SharedResource::new(ResourceKind::DiskBandwidth, 1.0),
        );
        resources.insert(
            ResourceKind::MemoryBandwidth,
            SharedResource::new(ResourceKind::MemoryBandwidth, 1.0),
        );
        resources.insert(
            ResourceKind::NetworkBandwidth,
            SharedResource::new(ResourceKind::NetworkBandwidth, 1.0),
        );
        ResourceSet { resources }
    }

    /// Borrows one resource.
    ///
    /// # Panics
    ///
    /// Panics if the kind is absent, which cannot happen for sets made
    /// by [`ResourceSet::rpi3`].
    pub fn get(&self, kind: ResourceKind) -> &SharedResource {
        // dronelint:allow(R3, documented # Panics invariant: every constructor populates all ResourceKind variants)
        self.resources.get(&kind).expect("resource kind present")
    }

    /// Mutably borrows one resource.
    ///
    /// # Panics
    ///
    /// Panics if the kind is absent (see [`ResourceSet::get`]).
    pub fn get_mut(&mut self, kind: ResourceKind) -> &mut SharedResource {
        // dronelint:allow(R3, documented # Panics invariant: every constructor populates all ResourceKind variants)
        self.resources.get_mut(&kind).expect("resource kind present")
    }

    /// Removes a client's demand from every resource.
    pub fn unregister_everywhere(&mut self, client: &ClientId) {
        for r in self.resources.values_mut() {
            r.unregister(client);
        }
    }

    /// Aggregate CPU utilization in `0.0..=1.0`, used by the power
    /// meter (Figure 13).
    pub fn cpu_utilization(&self) -> f64 {
        let cpu = self.get(ResourceKind::Cpu);
        (cpu.total_demand() / cpu.capacity()).min(1.0)
    }
}

impl crate::statehash::StateHash for SharedResource {
    fn state_hash(&self, h: &mut crate::statehash::StateHasher) {
        h.write_u8(self.kind as u8);
        h.write_f64(self.capacity);
        h.write_usize(self.demands.len());
        for (client, demand) in &self.demands {
            h.write_str(&client.0);
            h.write_f64(*demand);
        }
        // Quotas hash only when armed: an uncapped resource must
        // reproduce the exact pre-quota hash stream (the pinned chaos
        // and fleet baselines depend on it).
        if !self.quotas.is_empty() {
            h.write_usize(self.quotas.len());
            for (client, quota) in &self.quotas {
                h.write_str(&client.0);
                h.write_f64(*quota);
            }
        }
    }
}

impl crate::statehash::StateHash for ResourceSet {
    fn state_hash(&self, h: &mut crate::statehash::StateHasher) {
        for r in self.resources.values() {
            crate::statehash::StateHash::state_hash(r, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_clients_run_at_full_demand() {
        let mut r = SharedResource::new(ResourceKind::DiskBandwidth, 1.0);
        r.register("a", 0.4);
        r.register("b", 0.4);
        assert_eq!(r.rate_for(&"a".into()), 0.4);
        assert_eq!(r.slowdown_for(&"a".into()), 1.0);
    }

    #[test]
    fn contention_is_proportional_share() {
        let mut r = SharedResource::new(ResourceKind::DiskBandwidth, 1.0);
        for c in ["a", "b", "c"] {
            r.register(c, 0.67);
        }
        // Aggregate demand 2.01 on capacity 1.0 -> each sees ~3x the
        // demand-to-capacity ratio... i.e. slowdown = total/capacity.
        let s = r.slowdown_for(&"a".into());
        assert!((s - 2.01).abs() < 1e-9, "slowdown {s}");
    }

    #[test]
    fn cpu_saturating_benchmark_scales_linearly() {
        // A 4-thread CPU benchmark demands the whole CPU; N instances
        // slow each other down by exactly N.
        let mut r = SharedResource::new(ResourceKind::Cpu, 4.0);
        r.register("vd1", 4.0);
        assert_eq!(r.slowdown_for(&"vd1".into()), 1.0);
        r.register("vd2", 4.0);
        assert_eq!(r.slowdown_for(&"vd1".into()), 2.0);
        r.register("vd3", 4.0);
        assert_eq!(r.slowdown_for(&"vd1".into()), 3.0);
    }

    #[test]
    fn disk_benchmark_matches_paper_shape() {
        // Paper: disk overhead at 3 virtual drones is ~2x (PREEMPT).
        // A single instance demanding 0.67 of disk bandwidth produces
        // exactly that shape.
        let mut r = SharedResource::new(ResourceKind::DiskBandwidth, 1.0);
        r.register("vd1", 0.67);
        r.register("vd2", 0.67);
        r.register("vd3", 0.67);
        let s = r.slowdown_for(&"vd1".into());
        assert!((s - 2.01).abs() < 0.02);
    }

    #[test]
    fn unknown_client_has_no_rate() {
        let r = SharedResource::new(ResourceKind::Cpu, 4.0);
        assert_eq!(r.rate_for(&"ghost".into()), 0.0);
        assert_eq!(r.slowdown_for(&"ghost".into()), 1.0);
    }

    #[test]
    fn unregister_restores_full_rate() {
        let mut r = SharedResource::new(ResourceKind::Cpu, 4.0);
        r.register("a", 4.0);
        r.register("b", 4.0);
        assert_eq!(r.slowdown_for(&"a".into()), 2.0);
        r.unregister(&"b".into());
        assert_eq!(r.slowdown_for(&"a".into()), 1.0);
    }

    #[test]
    fn resource_set_reports_cpu_utilization() {
        let mut set = ResourceSet::rpi3();
        assert_eq!(set.cpu_utilization(), 0.0);
        set.get_mut(ResourceKind::Cpu).register("load", 2.0);
        assert!((set.cpu_utilization() - 0.5).abs() < 1e-12);
        set.get_mut(ResourceKind::Cpu).register("more", 8.0);
        assert_eq!(set.cpu_utilization(), 1.0, "clamped at saturation");
    }

    #[test]
    fn bad_demands_clamp_to_zero() {
        let mut r = SharedResource::new(ResourceKind::Cpu, 4.0);
        r.register("nan", f64::NAN);
        r.register("neg", -5.0);
        assert_eq!(r.total_demand(), 0.0);
    }

    #[test]
    fn quota_caps_effective_demand() {
        // A saturating attacker demands the whole CPU; a 0.5-core cap
        // keeps its effective demand at 0.5, so the flight task still
        // gets its full share.
        let mut r = SharedResource::new(ResourceKind::Cpu, 4.0);
        r.register("flight", 1.0);
        r.register("attacker", 16.0);
        assert!(r.slowdown_for(&"flight".into()) > 1.0, "uncapped attacker contends");
        r.set_quota("attacker", 0.5);
        assert_eq!(r.total_demand(), 1.5);
        assert_eq!(r.rate_for(&"flight".into()), 1.0);
        assert_eq!(r.slowdown_for(&"flight".into()), 1.0);
        assert_eq!(r.rate_for(&"attacker".into()), 0.5);
        assert!(r.slowdown_for(&"attacker".into()) > 1.0, "the cap is visible to the attacker");
    }

    #[test]
    fn clearing_a_quota_restores_contention() {
        let mut r = SharedResource::new(ResourceKind::Cpu, 4.0);
        r.register("a", 4.0);
        r.register("b", 4.0);
        r.set_quota("b", 0.0);
        assert_eq!(r.slowdown_for(&"a".into()), 1.0, "frozen client contends nothing");
        r.clear_quota(&"b".into());
        assert_eq!(r.slowdown_for(&"a".into()), 2.0);
    }

    #[test]
    fn quota_survives_demand_reregistration() {
        let mut r = SharedResource::new(ResourceKind::Cpu, 4.0);
        r.set_quota("attacker", 0.25);
        r.register("attacker", 8.0);
        assert_eq!(r.rate_for(&"attacker".into()), 0.25);
        r.unregister(&"attacker".into());
        r.register("attacker", 8.0);
        assert_eq!(r.rate_for(&"attacker".into()), 0.25, "cap outlives the demand");
    }

    #[test]
    fn unquoted_resource_hashes_identically_to_pre_quota_layout() {
        use crate::statehash::{StateHash, StateHasher};
        let mut r = SharedResource::new(ResourceKind::Cpu, 4.0);
        r.register("a", 2.0);
        let mut h1 = StateHasher::new();
        r.state_hash(&mut h1);
        let mut capped = r.clone();
        capped.set_quota("a", 1.0);
        let mut h2 = StateHasher::new();
        capped.state_hash(&mut h2);
        assert_ne!(h1.finish(), h2.finish(), "an armed quota is hash-visible");
        capped.clear_quota(&"a".into());
        let mut h3 = StateHasher::new();
        capped.state_hash(&mut h3);
        let mut h1b = StateHasher::new();
        r.state_hash(&mut h1b);
        assert_eq!(h1b.finish(), h3.finish(), "cleared quotas leave no residue");
    }
}
