//! Kernel error types.

use std::fmt;

use crate::task::Pid;

/// Errors surfaced by the simulated kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// Memory allocation failed: requested bytes vs bytes available.
    OutOfMemory { requested: u64, available: u64 },
    /// The referenced task does not exist.
    NoSuchTask(Pid),
    /// An argument was out of range or otherwise invalid.
    InvalidArgument(String),
    /// The caller lacks the privilege for the operation.
    PermissionDenied(String),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "out of memory: requested {requested} bytes, {available} available"
            ),
            KernelError::NoSuchTask(pid) => write!(f, "no such task: {pid}"),
            KernelError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            KernelError::PermissionDenied(msg) => write!(f, "permission denied: {msg}"),
        }
    }
}

impl std::error::Error for KernelError {}
