//! Wakeup-latency model: PREEMPT vs PREEMPT_RT.
//!
//! Figure 11 of the paper runs cyclictest (100 million loops, highest
//! FIFO priority, memory locked) under three load scenarios on two
//! kernel configurations. The dominant cause of wakeup latency for a
//! top-priority real-time task is time spent inside *non-preemptible
//! kernel sections*: interrupt handlers, softirqs, spinlock-protected
//! regions, and (on non-RT kernels) any code running with preemption
//! disabled.
//!
//! We model each interference source as a Poisson process of
//! non-preemptible sections. When the real-time timer fires at a
//! uniformly random phase, each source is "active" with probability
//! equal to its utilization (rate × mean section length), and an
//! active section delays the wakeup by its residual duration, drawn
//! from a truncated exponential. PREEMPT_RT shrinks section lengths by
//! one to two orders of magnitude — threaded IRQ handlers and
//! preemptible spinlocks convert almost all non-preemptible time into
//! ordinary preemptible task time — which is exactly why its tail
//! latencies collapse from milliseconds to hundreds of microseconds.
//!
//! Section parameters are calibrated so that the simulated average and
//! maximum latencies land near the paper's Table of measured values
//! (see `profiles`).

use rand::Rng;

use crate::time::SimDuration;

/// Kernel preemption configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Preemption {
    /// Stock Android Things kernel: neither PREEMPT nor PREEMPT_RT.
    None,
    /// CONFIG_PREEMPT: kernel preemptible except with IRQs disabled
    /// (the Navio2 default configuration).
    Preempt,
    /// PREEMPT_RT patch set: almost fully preemptible kernel
    /// (the AnDrone default configuration).
    PreemptRt,
}

impl Preemption {
    /// Short label used in experiment output ("-RT" postfix style).
    pub fn label(self) -> &'static str {
        match self {
            Preemption::None => "stock",
            Preemption::Preempt => "PREEMPT",
            Preemption::PreemptRt => "PREEMPT_RT",
        }
    }
}

/// Parameters of one interference source's non-preemptible sections
/// under a particular kernel configuration.
#[derive(Debug, Clone, Copy)]
pub struct SectionParams {
    /// Fraction of time a section from this source is active
    /// (utilization, `0.0..1.0`).
    pub utilization: f64,
    /// Mean residual section duration in microseconds.
    pub mean_us: f64,
    /// Hard cap on section duration in microseconds (the worst
    /// critical section the source can produce).
    pub max_us: f64,
}

impl SectionParams {
    /// A source that never interferes.
    pub const QUIET: SectionParams = SectionParams {
        utilization: 0.0,
        mean_us: 0.0,
        max_us: 0.0,
    };
}

/// One source of scheduling interference (IRQs, softirqs, lock
/// sections) with per-configuration parameters.
#[derive(Debug, Clone)]
pub struct InterferenceSource {
    /// Descriptive name (e.g. "disk-io softirq").
    pub name: &'static str,
    /// Behaviour on a CONFIG_PREEMPT kernel.
    pub preempt: SectionParams,
    /// Behaviour on a PREEMPT_RT kernel.
    pub preempt_rt: SectionParams,
}

impl InterferenceSource {
    fn params(&self, config: Preemption) -> SectionParams {
        match config {
            // The stock kernel is at least as bad as PREEMPT; we reuse
            // PREEMPT parameters (the paper never runs cyclictest on
            // stock).
            Preemption::None | Preemption::Preempt => self.preempt,
            Preemption::PreemptRt => self.preempt_rt,
        }
    }
}

/// Sampling model for the wakeup latency of the highest-priority
/// real-time task.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    config: Preemption,
    /// Baseline scheduling overhead in microseconds (timer interrupt
    /// entry, context switch, cache refill).
    base_us: f64,
    /// Jitter applied to the baseline (uniform, microseconds).
    base_jitter_us: f64,
    sources: Vec<InterferenceSource>,
}

impl LatencyModel {
    /// Creates a model for `config` with the given interference
    /// sources.
    pub fn new(config: Preemption, sources: Vec<InterferenceSource>) -> Self {
        let (base_us, base_jitter_us) = match config {
            // RT kernels pay slightly less baseline because the wakeup
            // path never waits for a preemption point.
            Preemption::PreemptRt => (8.5, 3.0),
            Preemption::Preempt => (12.0, 6.0),
            Preemption::None => (14.0, 8.0),
        };
        LatencyModel {
            config,
            base_us,
            base_jitter_us,
            sources,
        }
    }

    /// The configuration this model samples for.
    pub fn config(&self) -> Preemption {
        self.config
    }

    /// Adds another interference source (e.g. when a workload starts).
    pub fn add_source(&mut self, source: InterferenceSource) {
        self.sources.push(source);
    }

    /// Removes every interference source with `name` (e.g. when an
    /// attack is throttled or its window closes). Returns whether
    /// anything was removed.
    pub fn remove_source(&mut self, name: &str) -> bool {
        let before = self.sources.len();
        self.sources.retain(|s| s.name != name);
        self.sources.len() != before
    }

    /// Whether a source with `name` is currently registered.
    pub fn has_source(&self, name: &str) -> bool {
        self.sources.iter().any(|s| s.name == name)
    }

    /// Samples one wakeup latency.
    pub fn sample(&self, rng: &mut impl Rng) -> SimDuration {
        let mut us = self.base_us + rng.gen::<f64>() * self.base_jitter_us;
        for source in &self.sources {
            let p = source.params(self.config);
            if p.utilization > 0.0 && rng.gen::<f64>() < p.utilization {
                us += truncated_exp(rng, p.mean_us, p.max_us);
            }
        }
        SimDuration::from_micros_f64(us)
    }
}

/// Draws from an exponential distribution with the given mean,
/// truncated at `max`.
fn truncated_exp(rng: &mut impl Rng, mean: f64, max: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    // Inverse-CDF sampling; clamp the uniform draw away from 0 to
    // avoid ln(0).
    let u: f64 = rng.gen::<f64>().max(1e-300);
    (-mean * u.ln()).min(max)
}

/// Interference profiles matching the paper's three cyclictest
/// scenarios (Section 6.2).
pub mod profiles {
    use super::InterferenceSource;

    /// Background housekeeping present even on an idle system: timer
    /// ticks, RCU callbacks, kworker activity.
    pub fn idle_housekeeping() -> InterferenceSource {
        InterferenceSource {
            name: "housekeeping",
            preempt: super::SectionParams {
                utilization: 0.020,
                mean_us: 260.0,
                max_us: 1_290.0,
            },
            preempt_rt: super::SectionParams {
                utilization: 0.012,
                mean_us: 35.0,
                max_us: 95.0,
            },
        }
    }

    /// A virtual drone running PassMark: storage softirqs, page cache
    /// writeback, and cross-core cache pressure.
    pub fn passmark_load() -> InterferenceSource {
        InterferenceSource {
            name: "passmark",
            preempt: super::SectionParams {
                utilization: 0.031,
                mean_us: 1_000.0,
                max_us: 14_400.0,
            },
            preempt_rt: super::SectionParams {
                utilization: 0.022,
                mean_us: 55.0,
                max_us: 370.0,
            },
        }
    }

    /// One virtual drone running iperf: network RX/TX IRQ pressure.
    pub fn iperf_load() -> InterferenceSource {
        InterferenceSource {
            name: "iperf",
            preempt: super::SectionParams {
                utilization: 0.018,
                mean_us: 420.0,
                max_us: 6_000.0,
            },
            preempt_rt: super::SectionParams {
                utilization: 0.014,
                mean_us: 30.0,
                max_us: 220.0,
            },
        }
    }

    /// An adversarial tenant running *unthrottled*: a malicious
    /// container hammering Binder, telemetry, and the scheduler with
    /// no per-tenant isolation armed. Unlike the benign workloads
    /// above, the sections here model a worst-case co-tenant that a
    /// PREEMPT_RT kernel alone cannot absorb — softirq storms and
    /// cross-core IPI pressure long enough to blow the 2500 µs
    /// fast-loop budget. This is the DoS scenario the per-tenant
    /// Binder rate limits and CPU bandwidth caps exist to prevent;
    /// the adversarial gate proves flights under it miss deadlines.
    pub fn attack_unenforced(name: &'static str) -> InterferenceSource {
        InterferenceSource {
            name,
            preempt: super::SectionParams {
                utilization: 0.45,
                mean_us: 4_000.0,
                max_us: 28_000.0,
            },
            preempt_rt: super::SectionParams {
                utilization: 0.35,
                mean_us: 3_000.0,
                max_us: 9_000.0,
            },
        }
    }

    /// The same adversarial tenant with per-tenant enforcement armed:
    /// throttled Binder admission and a CPU bandwidth cap reduce its
    /// residual interference to less than the paper's `stress` run —
    /// bounded section lengths that keep cyclictest inside the
    /// PREEMPT_RT envelope.
    pub fn attack_throttled(name: &'static str) -> InterferenceSource {
        InterferenceSource {
            name,
            preempt: super::SectionParams {
                utilization: 0.060,
                mean_us: 900.0,
                max_us: 14_000.0,
            },
            preempt_rt: super::SectionParams {
                utilization: 0.030,
                mean_us: 50.0,
                max_us: 280.0,
            },
        }
    }

    /// Interference that scales with the *admitted* adversarial
    /// Binder load: `admitted_per_tick` transactions actually
    /// accepted by the driver this simulated second (rejected ones
    /// never reach the kernel and cost nothing here). This is the
    /// surface a closed-loop attacker exploits — by riding just
    /// under its per-tenant budget it keeps the admitted load (and
    /// this section pressure) high without ever tripping the
    /// throttle ladder. The parameters are calibrated so that:
    ///
    /// - any aggregate admission the hardened defense allows
    ///   (aggregate burst ≤ 300/tick) truncates below the 2500 µs
    ///   ArduPilot deadline even compounded with housekeeping, while
    /// - the synchronized bursts colluding tenants can land under
    ///   per-tenant-only enforcement (450+ admitted in one tick)
    ///   stretch the section ceiling past the deadline.
    pub fn attack_admitted(admitted_per_tick: u64) -> InterferenceSource {
        let load = admitted_per_tick as f64;
        InterferenceSource {
            name: "attack:admitted",
            preempt: super::SectionParams {
                utilization: (load / 1_200.0).min(0.5),
                mean_us: 120.0 + 4.0 * load,
                max_us: 400.0 + 24.0 * load,
            },
            preempt_rt: super::SectionParams {
                utilization: (load / 1_600.0).min(0.35),
                mean_us: 30.0 + load,
                max_us: 60.0 + 6.0 * load,
            },
        }
    }

    /// The `stress` generator (4 CPU, 2 I/O, 2 memory, 2 disk
    /// workers) plus iperf, run natively on the host: the paper's
    /// worst-case scenario.
    pub fn stress_load() -> InterferenceSource {
        InterferenceSource {
            name: "stress+iperf",
            preempt: super::SectionParams {
                utilization: 0.112,
                mean_us: 1_300.0,
                max_us: 17_700.0,
            },
            preempt_rt: super::SectionParams {
                utilization: 0.055,
                mean_us: 70.0,
                max_us: 330.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn run(model: &LatencyModel, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sum = 0.0;
        let mut max = 0.0f64;
        for _ in 0..n {
            let us = model.sample(&mut rng).as_micros_f64();
            sum += us;
            max = max.max(us);
        }
        (sum / n as f64, max)
    }

    #[test]
    fn rt_idle_latency_matches_paper_band() {
        // Paper: PREEMPT_RT idle avg 10us, max 103us.
        let m = LatencyModel::new(Preemption::PreemptRt, vec![profiles::idle_housekeeping()]);
        let (avg, max) = run(&m, 200_000, 11);
        assert!((8.0..14.0).contains(&avg), "avg {avg}");
        assert!(max < 110.0, "max {max}");
    }

    #[test]
    fn preempt_stress_has_millisecond_tail() {
        // Paper: PREEMPT stress avg 162us, max 17,819us.
        let m = LatencyModel::new(
            Preemption::Preempt,
            vec![profiles::idle_housekeeping(), profiles::stress_load()],
        );
        let (avg, max) = run(&m, 400_000, 12);
        assert!((110.0..230.0).contains(&avg), "avg {avg}");
        assert!(max > 5_000.0, "max {max} should show a ms-scale tail");
        assert!(max <= 17_900.0, "max {max} bounded by worst section");
    }

    #[test]
    fn rt_meets_ardupilot_deadline_under_stress() {
        // ArduPilot's 400Hz fast loop needs latency < 2500us; the
        // paper shows PREEMPT_RT stays well within it under stress.
        let m = LatencyModel::new(
            Preemption::PreemptRt,
            vec![profiles::idle_housekeeping(), profiles::stress_load()],
        );
        let (_, max) = run(&m, 400_000, 13);
        assert!(max < 2_500.0, "RT max {max} must meet the fast loop");
    }

    #[test]
    fn preempt_occasionally_misses_deadline_under_load() {
        let m = LatencyModel::new(
            Preemption::Preempt,
            vec![profiles::idle_housekeeping(), profiles::passmark_load()],
        );
        let mut rng = SmallRng::seed_from_u64(14);
        let mut misses = 0usize;
        let n = 500_000;
        for _ in 0..n {
            if m.sample(&mut rng).as_micros_f64() > 2_500.0 {
                misses += 1;
            }
        }
        assert!(misses > 0, "PREEMPT should occasionally miss");
        assert!(
            (misses as f64 / n as f64) < 0.01,
            "misses are infrequent ({misses}/{n})"
        );
    }

    #[test]
    fn truncation_caps_samples() {
        let mut rng = SmallRng::seed_from_u64(15);
        for _ in 0..10_000 {
            let x = truncated_exp(&mut rng, 1_000.0, 50.0);
            assert!(x <= 50.0);
            assert!(x >= 0.0);
        }
    }

    #[test]
    fn sampling_is_deterministic_under_a_seed() {
        let m = LatencyModel::new(Preemption::Preempt, vec![profiles::idle_housekeeping()]);
        let a = run(&m, 10_000, 42);
        let b = run(&m, 10_000, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn removing_a_source_restores_the_quiet_model() {
        let mut m =
            LatencyModel::new(Preemption::PreemptRt, vec![profiles::idle_housekeeping()]);
        m.add_source(profiles::attack_unenforced("attack:flood"));
        assert!(m.has_source("attack:flood"));
        assert!(m.remove_source("attack:flood"));
        assert!(!m.has_source("attack:flood"));
        assert!(!m.remove_source("attack:flood"), "second removal is a no-op");
        let quiet = LatencyModel::new(Preemption::PreemptRt, vec![profiles::idle_housekeeping()]);
        assert_eq!(run(&m, 50_000, 21), run(&quiet, 50_000, 21));
    }

    #[test]
    fn unenforced_attack_breaches_the_fast_loop_even_on_rt() {
        let m = LatencyModel::new(
            Preemption::PreemptRt,
            vec![
                profiles::idle_housekeeping(),
                profiles::attack_unenforced("attack:flood"),
            ],
        );
        let (_, max) = run(&m, 100_000, 22);
        assert!(max > 2_500.0, "unenforced attack max {max} must breach");
    }

    #[test]
    fn throttled_attack_stays_inside_the_rt_envelope() {
        let m = LatencyModel::new(
            Preemption::PreemptRt,
            vec![
                profiles::idle_housekeeping(),
                profiles::attack_throttled("attack:flood"),
            ],
        );
        let (_, max) = run(&m, 400_000, 23);
        assert!(max < 2_500.0, "throttled attack max {max} must meet the fast loop");
    }
}
