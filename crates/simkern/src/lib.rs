//! # androne-simkern
//!
//! Deterministic, discrete-event simulated kernel substrate for the
//! AnDrone reproduction.
//!
//! The AnDrone paper (EuroSys '19) runs on a Raspberry Pi 3 with a
//! Linux kernel patched for real-time preemption (PREEMPT_RT). This
//! crate stands in for that hardware/kernel pair with explicit,
//! calibrated models:
//!
//! - [`time`] / [`event`]: a virtual nanosecond clock and a
//!   deterministic discrete-event queue every other crate runs on.
//! - [`task`]: a task table carrying the identity Binder and the VDC
//!   observe (PID, EUID, container, scheduling policy).
//! - [`mem`]: physical memory accounting with the prototype's 880 MB
//!   usable budget (Figure 12's binding constraint).
//! - [`cpu`]: proportional-share contention across CPU/disk/memory
//!   bandwidth (the mechanism behind Figure 10's scaling curves).
//! - [`latency`]: the PREEMPT vs PREEMPT_RT wakeup-latency model
//!   (Figure 11) built from Poisson non-preemptible kernel sections.
//! - [`kernel`]: the assembled [`kernel::Kernel`] with build-time
//!   [`kernel::KernelConfig`].
//! - [`statehash`]: the [`StateHash`] trait and stable FNV hasher
//!   behind the dual-run determinism sanitizer.
//! - [`stats`]: summary/histogram helpers for the evaluation
//!   harnesses.
//!
//! Everything is seeded and single-threaded: identical seeds produce
//! identical experiment output, bit for bit.

pub mod cpu;
pub mod error;
pub mod event;
pub mod faults;
pub mod kernel;
pub mod latency;
pub mod mem;
pub mod net;
pub mod rng;
pub mod statehash;
pub mod stats;
pub mod task;
pub mod time;

pub use cpu::{ClientId, ResourceKind, ResourceSet, SharedResource};
pub use error::KernelError;
pub use event::EventQueue;
pub use faults::{
    CloudFaultEvent, CloudFaultKind, FaultClock, FaultEvent, FaultKind, FaultPlan,
    FaultTransition, FleetFaultPlan, SensorChannel,
};
pub use kernel::{Kernel, KernelConfig, SharedKernel};
pub use latency::{InterferenceSource, LatencyModel, Preemption, SectionParams};
pub use mem::{BoardMemoryProfile, MemOwner, MemoryLedger, MIB};
pub use net::{BurstLoss, LinkModel, LinkState};
pub use rng::{
    adversary_stream_rng, attack_stream_rng, fault_stream_rng, fleet_fault_stream_rng,
    refill_jitter_ns, rt_monitor_stream_rng, stream_rng,
};
pub use statehash::{substream_seed, StateHash, StateHasher};
pub use stats::{LogHistogram, Summary};
pub use task::{ContainerId, Euid, Pid, SchedPolicy, Task, TaskState, TaskTable};
pub use time::{SimDuration, SimTime};
