//! # androne-vdc
//!
//! The Virtual Drone Controller (paper Section 4.4): the native host
//! daemon that turns virtual drone definitions into enforced flight
//! behaviour.
//!
//! - [`spec`]: the JSON virtual drone definition of paper Figure 2,
//!   with validation (including "flight control can only be a
//!   waypoint device").
//! - [`access`]: the device-access table consulted by every device
//!   service via the [`androne_android::DevicePolicy`] hook —
//!   waypoint devices only at waypoints, continuous devices
//!   suspended at other parties' waypoints.
//! - [`vdc`]: the daemon itself — lifecycle, energy/time allotments
//!   with low-budget warnings, SDK event delivery, and revocation
//!   enforcement (terminating processes that ignore it).

pub mod access;
pub mod spec;
pub mod vdc;

pub use access::{AccessTable, FlightPhase};
pub use spec::{SpecError, VirtualDroneSpec, WaypointSpec};
pub use vdc::{Vdc, VdcEvent, VdRecord, WatchdogConfig, WARNING_FRACTION};
