//! The Virtual Drone Controller daemon.
//!
//! A native host daemon (paper Section 4.4) that manages virtual
//! drone containers across a flight: creates them from definitions,
//! updates device access as waypoints are reached and left, tracks
//! each virtual drone's energy/time allotment, delivers AnDrone SDK
//! events, enforces permission revocation (terminating processes
//! that keep using a device after notification), and saves
//! interrupted virtual drones for a later flight.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use androne_android::{svc_codes, svc_names, DeviceClass};
use androne_binder::{get_service, BinderDriver, Parcel};
use androne_obs::{ObsHandle, Subsystem, TraceEvent};
use androne_simkern::{ContainerId, Kernel, Pid, StateHash, StateHasher};

use crate::access::{AccessTable, FlightPhase};
use crate::spec::{VirtualDroneSpec, WaypointSpec};

/// Events delivered to a virtual drone's apps through the AnDrone
/// SDK's `WaypointListener` (paper Figure 8).
#[derive(Debug, Clone, PartialEq)]
pub enum VdcEvent {
    /// Arrived at a waypoint; flight control and waypoint devices
    /// are now live.
    WaypointActive {
        /// Index into the spec's waypoint list.
        index: usize,
        /// The waypoint definition.
        waypoint: WaypointSpec,
    },
    /// Leaving a waypoint; waypoint devices are being revoked.
    WaypointInactive {
        /// Index into the spec's waypoint list.
        index: usize,
    },
    /// Energy allotment is running low.
    LowEnergyWarning {
        /// Joules remaining.
        remaining_j: f64,
    },
    /// Time allotment is running low.
    LowTimeWarning {
        /// Seconds remaining.
        remaining_s: f64,
    },
    /// The geofence was breached; control is suspended.
    GeofenceBreached,
    /// Continuous devices must be suspended (approaching another
    /// party's waypoint).
    SuspendContinuousDevices,
    /// Continuous devices may resume.
    ResumeContinuousDevices,
    /// The VDC watchdog revoked this virtual drone (stalled or
    /// repeatedly violating access policy); its flight is over.
    WatchdogRevoked,
    /// The tenant was suspended by the QoS escalation ladder (its
    /// Binder budget kept tripping); continuous devices are paused
    /// but the flight continues and the tenant still bills.
    TenantSuspended,
    /// A ladder suspension was lifted by the hysteresis decay (the
    /// tenant went quiet); continuous devices are resuming.
    TenantResumed,
}

/// Fraction of the allotment remaining at which low-budget warnings
/// fire.
pub const WARNING_FRACTION: f64 = 0.2;

/// Watchdog thresholds for revoking a misbehaving virtual drone.
///
/// The watchdog is opt-in (`Vdc::set_watchdog`); with no config the
/// VDC never revokes on its own. "Stalled" means the virtual drone's
/// proxy client forwarded no traffic for `stall_timeout_s` seconds
/// while it held an active waypoint; "violating" means its denied
/// command count exceeded `max_denials`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Seconds of zero forwarded traffic at an active waypoint before
    /// the virtual drone is considered stalled.
    pub stall_timeout_s: u64,
    /// Denied (geofence/policy-violating) commands tolerated before
    /// revocation.
    pub max_denials: u64,
    /// Seconds a virtual drone may keep forwarding commands at an
    /// active waypoint *without* reporting mission progress (the SDK
    /// progress heartbeat) before it is revoked. Closes the
    /// busy-loop blind spot: a tenant spamming valid commands evades
    /// the stall signal but not this one. `None` disables the check.
    pub progress_timeout_s: Option<u64>,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_timeout_s: 20,
            max_denials: 50,
            progress_timeout_s: None,
        }
    }
}

/// Per-virtual-drone record.
#[derive(Debug)]
pub struct VdRecord {
    /// Virtual drone name (container name).
    pub name: String,
    /// Kernel container id.
    pub container: ContainerId,
    /// The definition.
    pub spec: VirtualDroneSpec,
    energy_used_j: f64,
    time_used_s: f64,
    energy_warned: bool,
    time_warned: bool,
    waypoints_completed: usize,
    /// Monotone count of SDK progress heartbeats (explicit
    /// `report_progress` plus every `waypoint_completed`). The
    /// flight watchdog reads it to tell "working" from "busy-looping".
    progress_marks: u64,
    events: VecDeque<VdcEvent>,
    /// Files apps marked for upload to cloud storage.
    pub marked_files: Vec<String>,
    /// Set when the app called `waypointCompleted()`.
    pub waypoint_done: bool,
    /// Set by [`Vdc::on_watchdog_revoked`]; the flight executor
    /// consults it so VDC-initiated revocations (e.g. the QoS
    /// escalation ladder) strip the tenant's remaining waypoints
    /// exactly like executor-initiated ones.
    pub revoked: bool,
    /// Set by [`Vdc::on_tenant_suspended`], cleared by
    /// [`Vdc::on_tenant_resumed`]: whether the QoS escalation ladder
    /// currently holds this tenant at `Suspended`. This is the
    /// tenant-visible ladder signal — the SDK surfaces it, and an
    /// adaptive adversary reads it as feedback.
    pub suspended: bool,
}

impl VdRecord {
    /// Joules remaining in the allotment.
    pub fn energy_remaining_j(&self) -> f64 {
        (self.spec.energy_allotted - self.energy_used_j).max(0.0)
    }

    /// Seconds remaining in the allotment.
    pub fn time_remaining_s(&self) -> f64 {
        (self.spec.max_duration - self.time_used_s).max(0.0)
    }

    /// Whether either allotment is exhausted.
    pub fn exhausted(&self) -> bool {
        self.energy_remaining_j() <= 0.0 || self.time_remaining_s() <= 0.0
    }

    /// Waypoints completed so far.
    pub fn waypoints_completed(&self) -> usize {
        self.waypoints_completed
    }

    /// Progress heartbeats received so far.
    pub fn progress_marks(&self) -> u64 {
        self.progress_marks
    }
}

/// The VDC daemon.
pub struct Vdc {
    access: Rc<RefCell<AccessTable>>,
    records: BTreeMap<String, VdRecord>,
    by_container: BTreeMap<ContainerId, String>,
    /// The VDC's Binder identity (opened in the device container's
    /// namespace) for service queries during enforcement.
    binder_pid: Option<Pid>,
    /// Opt-in watchdog thresholds; `None` disables revocation.
    watchdog: Option<WatchdogConfig>,
    /// Observability handle; detached (free) unless the owning drone
    /// attached one.
    obs: ObsHandle,
}

impl Vdc {
    /// Creates a VDC around a shared access table.
    pub fn new(access: Rc<RefCell<AccessTable>>) -> Self {
        Vdc {
            access,
            records: BTreeMap::new(),
            by_container: BTreeMap::new(),
            binder_pid: None,
            watchdog: None,
            obs: ObsHandle::default(),
        }
    }

    /// Attaches the shared observability handle; allotment decisions
    /// are traced from then on.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// The shared access table (to hand to device services as their
    /// policy).
    pub fn access(&self) -> Rc<RefCell<AccessTable>> {
        self.access.clone()
    }

    /// Sets the VDC's Binder identity for enforcement queries.
    pub fn set_binder_identity(&mut self, pid: Pid) {
        self.binder_pid = Some(pid);
    }

    /// Arms the per-virtual-drone watchdog.
    pub fn set_watchdog(&mut self, cfg: Option<WatchdogConfig>) {
        self.watchdog = cfg;
    }

    /// The current watchdog config, if armed.
    pub fn watchdog(&self) -> Option<WatchdogConfig> {
        self.watchdog
    }

    /// Records a watchdog revocation: the virtual drone's flight is
    /// over (phase `Finished`, so every device grant lapses) and the
    /// app is told why through its event queue.
    pub fn on_watchdog_revoked(&mut self, name: &str) {
        if let Some(rec) = self.records.get_mut(name) {
            rec.revoked = true;
            rec.events.push_back(VdcEvent::WatchdogRevoked);
            self.access
                .borrow_mut()
                .set_phase(rec.container, FlightPhase::Finished);
            self.obs.count("vdc.watchdog_revocations", 1);
            self.obs.emit(Subsystem::Vdc, || TraceEvent::VdcDecision {
                vdrone: name.to_string(),
                decision: "watchdog-revoked",
                detail: String::new(),
            });
        }
    }

    /// Suspends a virtual drone: the middle rung of the QoS
    /// escalation ladder (between rate-halving and watchdog
    /// revocation). Continuous devices pause — the same mechanism
    /// privacy suspension uses — but the flight phase is untouched,
    /// so the tenant keeps billing and can still land. Recoverable
    /// via [`Vdc::on_tenant_resumed`].
    pub fn on_tenant_suspended(&mut self, name: &str, detail: &str) {
        if let Some(rec) = self.records.get_mut(name) {
            rec.suspended = true;
            rec.events.push_back(VdcEvent::TenantSuspended);
            self.access.borrow_mut().suspend_continuous(rec.container);
            self.obs.count("vdc.tenant_suspensions", 1);
            let detail = detail.to_string();
            self.obs.emit(Subsystem::Vdc, || TraceEvent::VdcDecision {
                vdrone: name.to_string(),
                decision: "tenant-suspended",
                detail,
            });
        }
    }

    /// Lifts a ladder suspension (the tenant's budget pressure
    /// subsided); continuous devices resume.
    pub fn on_tenant_resumed(&mut self, name: &str) {
        if let Some(rec) = self.records.get_mut(name) {
            rec.suspended = false;
            rec.events.push_back(VdcEvent::ResumeContinuousDevices);
            rec.events.push_back(VdcEvent::TenantResumed);
            self.access.borrow_mut().resume_continuous(rec.container);
            self.obs.emit(Subsystem::Vdc, || TraceEvent::VdcDecision {
                vdrone: name.to_string(),
                decision: "tenant-resumed",
                detail: String::new(),
            });
        }
    }

    /// Moves a virtual drone's registration to a new container id
    /// after a supervised restart (checkpoint/restore gives the
    /// restored container a fresh id). The allotment record — energy
    /// and time already used, waypoints completed, pending events —
    /// carries over untouched; only the container binding and the
    /// access-table entry move, preserving the current flight phase.
    pub fn rebind_container(&mut self, name: &str, new_id: ContainerId) {
        let Some(rec) = self.records.get_mut(name) else {
            return;
        };
        let old_id = rec.container;
        if old_id == new_id {
            return;
        }
        let phase = self.access.borrow().phase(old_id);
        {
            let mut access = self.access.borrow_mut();
            access.unregister(old_id);
            access.register(
                new_id,
                rec.spec.waypoint_classes(),
                rec.spec.continuous_classes(),
            );
            if let Some(phase) = phase {
                access.set_phase(new_id, phase);
            }
        }
        rec.container = new_id;
        self.by_container.remove(&old_id);
        self.by_container.insert(new_id, name.to_string());
    }

    /// Registers a virtual drone before flight.
    pub fn register(&mut self, name: impl Into<String>, container: ContainerId, spec: VirtualDroneSpec) {
        let name = name.into();
        self.access.borrow_mut().register(
            container,
            spec.waypoint_classes(),
            spec.continuous_classes(),
        );
        self.by_container.insert(container, name.clone());
        self.records.insert(
            name.clone(),
            VdRecord {
                name,
                container,
                spec,
                energy_used_j: 0.0,
                time_used_s: 0.0,
                energy_warned: false,
                time_warned: false,
                waypoints_completed: 0,
                progress_marks: 0,
                events: VecDeque::new(),
                marked_files: Vec::new(),
                waypoint_done: false,
                revoked: false,
                suspended: false,
            },
        );
    }

    /// Removes a virtual drone (end of flight).
    pub fn unregister(&mut self, name: &str) -> Option<VdRecord> {
        let rec = self.records.remove(name)?;
        self.access.borrow_mut().unregister(rec.container);
        self.by_container.remove(&rec.container);
        Some(rec)
    }

    /// Looks up a record.
    pub fn record(&self, name: &str) -> Option<&VdRecord> {
        self.records.get(name)
    }

    /// Iterates all records.
    pub fn records(&self) -> impl Iterator<Item = &VdRecord> {
        self.records.values()
    }

    /// The flight planner notifies the VDC that `name` has arrived
    /// at its waypoint `index`. Other virtual drones holding
    /// continuous devices are suspended for privacy (paper Section
    /// 2).
    pub fn on_waypoint_arrived(&mut self, name: &str, index: usize) {
        let Some(rec) = self.records.get_mut(name) else {
            return;
        };
        let container = rec.container;
        let waypoint = rec.spec.waypoints.get(index).copied();
        rec.waypoint_done = false;
        if let Some(waypoint) = waypoint {
            rec.events.push_back(VdcEvent::WaypointActive { index, waypoint });
        }
        self.access
            .borrow_mut()
            .set_phase(container, FlightPhase::AtWaypoint(index));
        self.obs.count("vdc.waypoint_arrivals", 1);
        self.obs.emit(Subsystem::Vdc, || TraceEvent::VdcDecision {
            vdrone: name.to_string(),
            decision: "waypoint-arrived",
            detail: format!("wp{index}"),
        });

        // Privacy: suspend other parties' continuous devices.
        let others: Vec<String> = self
            .records
            .values()
            .filter(|r| r.name != name && !r.spec.continuous_devices.is_empty())
            .map(|r| r.name.clone())
            .collect();
        for other in others {
            if let Some(r) = self.records.get_mut(&other) {
                self.access.borrow_mut().suspend_continuous(r.container);
                r.events.push_back(VdcEvent::SuspendContinuousDevices);
            }
        }
    }

    /// The flight planner notifies the VDC that `name` is leaving
    /// waypoint `index`.
    pub fn on_waypoint_departed(&mut self, name: &str, index: usize) {
        let Some(rec) = self.records.get_mut(name) else {
            return;
        };
        rec.waypoints_completed = rec.waypoints_completed.max(index + 1);
        rec.events.push_back(VdcEvent::WaypointInactive { index });
        let container = rec.container;
        let finished = rec.waypoints_completed >= rec.spec.waypoints.len();
        self.access.borrow_mut().set_phase(
            container,
            if finished {
                FlightPhase::Finished
            } else {
                FlightPhase::Transit
            },
        );
        self.obs.count("vdc.waypoint_departures", 1);
        self.obs.emit(Subsystem::Vdc, || TraceEvent::VdcDecision {
            vdrone: name.to_string(),
            decision: "waypoint-departed",
            detail: format!("wp{index} finished={finished}"),
        });

        // Resume other parties' continuous devices.
        let others: Vec<String> = self
            .records
            .values()
            .filter(|r| r.name != name && !r.spec.continuous_devices.is_empty())
            .map(|r| r.name.clone())
            .collect();
        for other in others {
            if let Some(r) = self.records.get_mut(&other) {
                self.access.borrow_mut().resume_continuous(r.container);
                r.events.push_back(VdcEvent::ResumeContinuousDevices);
            }
        }
    }

    /// Geofence breach notification (from the flight container).
    pub fn on_geofence_breached(&mut self, name: &str) {
        if let Some(rec) = self.records.get_mut(name) {
            rec.events.push_back(VdcEvent::GeofenceBreached);
            self.obs.count("vdc.geofence_breaches", 1);
            self.obs.emit(Subsystem::Vdc, || TraceEvent::VdcDecision {
                vdrone: name.to_string(),
                decision: "geofence-breached",
                detail: String::new(),
            });
        }
    }

    /// Charges energy consumed at a waypoint against the allotment,
    /// emitting a low-energy warning at 20% remaining.
    pub fn charge_energy(&mut self, name: &str, joules: f64) {
        if let Some(rec) = self.records.get_mut(name) {
            rec.energy_used_j += joules.max(0.0);
            let remaining = rec.energy_remaining_j();
            if !rec.energy_warned && remaining <= WARNING_FRACTION * rec.spec.energy_allotted {
                rec.energy_warned = true;
                rec.events.push_back(VdcEvent::LowEnergyWarning {
                    remaining_j: remaining,
                });
            }
        }
    }

    /// Charges operating time against the allotment.
    pub fn charge_time(&mut self, name: &str, seconds: f64) {
        if let Some(rec) = self.records.get_mut(name) {
            rec.time_used_s += seconds.max(0.0);
            let remaining = rec.time_remaining_s();
            if !rec.time_warned && remaining <= WARNING_FRACTION * rec.spec.max_duration {
                rec.time_warned = true;
                rec.events.push_back(VdcEvent::LowTimeWarning {
                    remaining_s: remaining,
                });
            }
        }
    }

    /// SDK: the app declares its waypoint task complete. Counts as a
    /// progress heartbeat too.
    pub fn waypoint_completed(&mut self, name: &str) {
        if let Some(rec) = self.records.get_mut(name) {
            rec.waypoint_done = true;
            rec.progress_marks += 1;
        }
    }

    /// SDK: the app reports it is making mission progress at the
    /// active waypoint (the watchdog heartbeat). Apps doing long
    /// waypoint tasks call this periodically; a tenant busy-looping
    /// commands without it is revoked once
    /// [`WatchdogConfig::progress_timeout_s`] elapses.
    pub fn report_progress(&mut self, name: &str) {
        if let Some(rec) = self.records.get_mut(name) {
            rec.progress_marks += 1;
        }
    }

    /// SDK: marks a file for upload to cloud storage after flight.
    pub fn mark_file(&mut self, name: &str, path: impl Into<String>) {
        if let Some(rec) = self.records.get_mut(name) {
            rec.marked_files.push(path.into());
        }
    }

    /// SDK: drains pending events for a virtual drone.
    pub fn drain_events(&mut self, name: &str) -> Vec<VdcEvent> {
        match self.records.get_mut(name) {
            Some(rec) => rec.events.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Flight-container query: may this virtual drone control the
    /// flight right now?
    pub fn flight_control_allowed(&self, container: ContainerId) -> bool {
        self.access.borrow().flight_control_allowed(container)
    }

    /// Enforces revocation after a waypoint departure: queries each
    /// device service for processes of `name`'s container still
    /// holding sessions, and terminates them (paper Section 4.4:
    /// apps may ignore the revocation notification, so the VDC asks
    /// the services and kills the holdouts). Returns the pids
    /// terminated.
    pub fn enforce_revocation(
        &mut self,
        driver: &mut BinderDriver,
        kernel: &mut Kernel,
        name: &str,
    ) -> Vec<Pid> {
        let Some(rec) = self.records.get(name) else {
            return Vec::new();
        };
        let Some(vdc_pid) = self.binder_pid else {
            return Vec::new();
        };
        let container = rec.container;
        let mut killed = Vec::new();
        for service in svc_names::TABLE_1 {
            let Ok(handle) = get_service(driver, vdc_pid, service) else {
                continue;
            };
            let mut q = Parcel::new();
            q.push_i32(container.0 as i32);
            let Ok(reply) = driver.transact(vdc_pid, handle, svc_codes::QUERY_USERS, q) else {
                continue;
            };
            let n = reply.i32_at(0).unwrap_or(0) as usize;
            for i in 0..n {
                if let Ok(raw) = reply.i32_at(1 + i) {
                    let pid = Pid(raw as u32);
                    if kernel.tasks.kill(pid).is_ok() {
                        driver.kill_process(pid);
                        killed.push(pid);
                    }
                }
            }
        }
        killed
    }

    /// Whether `device` access is currently allowed for `name`
    /// (diagnostics).
    pub fn allows(&self, name: &str, device: DeviceClass) -> bool {
        match self.records.get(name) {
            Some(rec) => {
                use androne_android::DevicePolicy;
                self.access.borrow().allows(rec.container, device)
            }
            None => false,
        }
    }
}

impl StateHash for VdcEvent {
    fn state_hash(&self, h: &mut StateHasher) {
        match self {
            VdcEvent::WaypointActive { index, waypoint } => {
                h.write_u8(0);
                h.write_usize(*index);
                h.write_f64(waypoint.latitude);
                h.write_f64(waypoint.longitude);
                h.write_f64(waypoint.altitude);
                h.write_f64(waypoint.max_radius);
            }
            VdcEvent::WaypointInactive { index } => {
                h.write_u8(1);
                h.write_usize(*index);
            }
            VdcEvent::LowEnergyWarning { remaining_j } => {
                h.write_u8(2);
                h.write_f64(*remaining_j);
            }
            VdcEvent::LowTimeWarning { remaining_s } => {
                h.write_u8(3);
                h.write_f64(*remaining_s);
            }
            VdcEvent::GeofenceBreached => h.write_u8(4),
            VdcEvent::SuspendContinuousDevices => h.write_u8(5),
            VdcEvent::ResumeContinuousDevices => h.write_u8(6),
            VdcEvent::WatchdogRevoked => h.write_u8(7),
            VdcEvent::TenantSuspended => h.write_u8(8),
            VdcEvent::TenantResumed => h.write_u8(9),
        }
    }
}

impl StateHash for VdRecord {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_str(&self.name);
        self.container.state_hash(h);
        // The spec is immutable after registration; its canonical
        // JSON form (BTreeMap-ordered keys) is a stable encoding.
        h.write_str(&serde_json::to_string(&self.spec).unwrap_or_default());
        h.write_f64(self.energy_used_j);
        h.write_f64(self.time_used_s);
        h.write_bool(self.energy_warned);
        h.write_bool(self.time_warned);
        h.write_usize(self.waypoints_completed);
        h.write_u64(self.progress_marks);
        h.write_usize(self.events.len());
        for e in &self.events {
            e.state_hash(h);
        }
        h.write_usize(self.marked_files.len());
        for f in &self.marked_files {
            h.write_str(f);
        }
        h.write_bool(self.waypoint_done);
        // Hashed only when set so records from flights predating the
        // revocation flag fold to their historical bits.
        if self.revoked {
            h.write_bool(self.revoked);
        }
        // Same discipline: only an actually-suspended tenant widens
        // the record's hash footprint.
        if self.suspended {
            h.write_bool(self.suspended);
        }
    }
}

impl StateHash for Vdc {
    fn state_hash(&self, h: &mut StateHasher) {
        self.access.borrow().state_hash(h);
        h.write_usize(self.records.len());
        for (name, rec) in &self.records {
            h.write_str(name);
            rec.state_hash(h);
        }
        // by_container is a derived inverse of records; skipped.
        match self.binder_pid {
            Some(pid) => {
                h.write_u8(1);
                pid.state_hash(h);
            }
            None => h.write_u8(0),
        }
        match self.watchdog {
            Some(cfg) => {
                h.write_u8(1);
                h.write_u64(cfg.stall_timeout_s);
                h.write_u64(cfg.max_denials);
                match cfg.progress_timeout_s {
                    Some(t) => {
                        h.write_u8(1);
                        h.write_u64(t);
                    }
                    None => h.write_u8(0),
                }
            }
            None => h.write_u8(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vdc_with(spec: VirtualDroneSpec) -> (Vdc, ContainerId) {
        let access = Rc::new(RefCell::new(AccessTable::new()));
        let mut vdc = Vdc::new(access);
        let c = ContainerId(10);
        vdc.register("vd1", c, spec);
        (vdc, c)
    }

    #[test]
    fn waypoint_cycle_toggles_device_access() {
        let (mut vdc, _) = vdc_with(VirtualDroneSpec::example_survey());
        assert!(!vdc.allows("vd1", DeviceClass::Camera));
        vdc.on_waypoint_arrived("vd1", 0);
        assert!(vdc.allows("vd1", DeviceClass::Camera));
        let events = vdc.drain_events("vd1");
        assert!(matches!(events[0], VdcEvent::WaypointActive { index: 0, .. }));
        vdc.on_waypoint_departed("vd1", 0);
        assert!(!vdc.allows("vd1", DeviceClass::Camera));
        assert_eq!(
            vdc.drain_events("vd1"),
            vec![VdcEvent::WaypointInactive { index: 0 }]
        );
    }

    #[test]
    fn finishing_all_waypoints_ends_access() {
        let (mut vdc, c) = vdc_with(VirtualDroneSpec::example_survey());
        vdc.on_waypoint_arrived("vd1", 0);
        vdc.on_waypoint_departed("vd1", 0);
        vdc.on_waypoint_arrived("vd1", 1);
        vdc.on_waypoint_departed("vd1", 1);
        assert_eq!(
            vdc.access().borrow().phase(c),
            Some(FlightPhase::Finished)
        );
        assert_eq!(vdc.record("vd1").unwrap().waypoints_completed(), 2);
    }

    #[test]
    fn energy_warning_fires_once_at_twenty_percent() {
        let (mut vdc, _) = vdc_with(VirtualDroneSpec::example_survey());
        // Allotment is 45,000 J.
        vdc.charge_energy("vd1", 30_000.0);
        assert!(vdc.drain_events("vd1").is_empty());
        vdc.charge_energy("vd1", 7_000.0);
        let events = vdc.drain_events("vd1");
        assert!(matches!(
            events[0],
            VdcEvent::LowEnergyWarning { remaining_j } if (remaining_j - 8_000.0).abs() < 1.0
        ));
        vdc.charge_energy("vd1", 1_000.0);
        assert!(vdc.drain_events("vd1").is_empty(), "warning fires once");
    }

    #[test]
    fn time_exhaustion_is_reported() {
        let (mut vdc, _) = vdc_with(VirtualDroneSpec::example_survey());
        vdc.charge_time("vd1", 700.0);
        assert!(vdc.record("vd1").unwrap().exhausted());
    }

    #[test]
    fn another_partys_waypoint_suspends_continuous_devices() {
        let access = Rc::new(RefCell::new(AccessTable::new()));
        let mut vdc = Vdc::new(access);
        // vd-cont holds a continuous GPS; vd-other owns the waypoint.
        let mut spec_cont = VirtualDroneSpec::example_survey();
        spec_cont.continuous_devices = vec!["gps".into()];
        vdc.register("vd-cont", ContainerId(10), spec_cont);
        vdc.register("vd-other", ContainerId(11), VirtualDroneSpec::example_survey());

        // vd-cont starts operating (continuous access begins).
        vdc.on_waypoint_arrived("vd-cont", 0);
        vdc.on_waypoint_departed("vd-cont", 0);
        vdc.drain_events("vd-cont");
        assert!(vdc.allows("vd-cont", DeviceClass::Gps));

        // The drone reaches vd-other's waypoint: vd-cont suspends.
        vdc.on_waypoint_arrived("vd-other", 0);
        assert!(!vdc.allows("vd-cont", DeviceClass::Gps));
        assert_eq!(
            vdc.drain_events("vd-cont"),
            vec![VdcEvent::SuspendContinuousDevices]
        );

        // Departure resumes.
        vdc.on_waypoint_departed("vd-other", 0);
        assert!(vdc.allows("vd-cont", DeviceClass::Gps));
        assert_eq!(
            vdc.drain_events("vd-cont"),
            vec![VdcEvent::ResumeContinuousDevices]
        );
    }

    #[test]
    fn marked_files_accumulate() {
        let (mut vdc, _) = vdc_with(VirtualDroneSpec::example_survey());
        vdc.mark_file("vd1", "/data/survey/ortho.tif");
        vdc.mark_file("vd1", "/data/survey/report.json");
        assert_eq!(vdc.record("vd1").unwrap().marked_files.len(), 2);
    }

    #[test]
    fn rebind_preserves_allotment_and_phase() {
        let (mut vdc, old) = vdc_with(VirtualDroneSpec::example_survey());
        vdc.on_waypoint_arrived("vd1", 0);
        vdc.charge_energy("vd1", 12_345.0);
        vdc.charge_time("vd1", 33.0);
        let new = ContainerId(42);
        vdc.rebind_container("vd1", new);
        let rec = vdc.record("vd1").unwrap();
        assert_eq!(rec.container, new);
        assert!((rec.energy_remaining_j() - (45_000.0 - 12_345.0)).abs() < 1e-9);
        assert_eq!(
            vdc.access().borrow().phase(new),
            Some(FlightPhase::AtWaypoint(0)),
            "flight phase survives the rebind"
        );
        assert_eq!(vdc.access().borrow().phase(old), None, "old id unregistered");
        assert!(vdc.allows("vd1", DeviceClass::Camera));
    }

    #[test]
    fn watchdog_revocation_finishes_the_flight() {
        let (mut vdc, _) = vdc_with(VirtualDroneSpec::example_survey());
        vdc.set_watchdog(Some(WatchdogConfig::default()));
        vdc.on_waypoint_arrived("vd1", 0);
        vdc.drain_events("vd1");
        assert!(vdc.allows("vd1", DeviceClass::Camera));
        vdc.on_watchdog_revoked("vd1");
        assert!(!vdc.allows("vd1", DeviceClass::Camera), "grants lapse");
        assert_eq!(vdc.drain_events("vd1"), vec![VdcEvent::WatchdogRevoked]);
    }

    #[test]
    fn ladder_suspension_pauses_continuous_devices_recoverably() {
        let access = Rc::new(RefCell::new(AccessTable::new()));
        let mut vdc = Vdc::new(access);
        let mut spec = VirtualDroneSpec::example_survey();
        spec.continuous_devices = vec!["gps".into()];
        let c = ContainerId(10);
        vdc.register("vd1", c, spec);
        vdc.on_waypoint_arrived("vd1", 0);
        vdc.on_waypoint_departed("vd1", 0);
        vdc.drain_events("vd1");
        assert!(vdc.allows("vd1", DeviceClass::Gps));

        vdc.on_tenant_suspended("vd1", "binder budget tripped 8 times");
        assert!(!vdc.allows("vd1", DeviceClass::Gps));
        assert!(vdc.record("vd1").unwrap().suspended);
        assert_eq!(
            vdc.access().borrow().phase(c),
            Some(FlightPhase::Transit),
            "suspension is not termination: the flight phase is untouched"
        );
        assert_eq!(vdc.drain_events("vd1"), vec![VdcEvent::TenantSuspended]);

        vdc.on_tenant_resumed("vd1");
        assert!(vdc.allows("vd1", DeviceClass::Gps));
        assert!(!vdc.record("vd1").unwrap().suspended);
        assert_eq!(
            vdc.drain_events("vd1"),
            vec![VdcEvent::ResumeContinuousDevices, VdcEvent::TenantResumed]
        );
    }

    #[test]
    fn unregister_clears_access() {
        let (mut vdc, c) = vdc_with(VirtualDroneSpec::example_survey());
        vdc.on_waypoint_arrived("vd1", 0);
        let rec = vdc.unregister("vd1").unwrap();
        assert_eq!(rec.container, c);
        assert!(!vdc.allows("vd1", DeviceClass::Camera));
        assert!(vdc.record("vd1").is_none());
    }
}
