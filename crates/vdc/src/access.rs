//! The device-access policy table.
//!
//! The VDC "manages virtual drone device access by verifying whether
//! or not a virtual drone is allowed access to a device throughout a
//! flight" (paper Section 4.4). Device services consult this table —
//! through the [`DevicePolicy`] hook — on every permission check:
//!
//! - **waypoint devices** are allowed only while the virtual drone is
//!   operating at one of its waypoints;
//! - **continuous devices** are allowed from the moment the first
//!   waypoint is reached until the last waypoint completes, except
//!   while suspended near another party's waypoint;
//! - **flight control** is a waypoint device and additionally gated
//!   on the flight phase (queried by the flight container).

use std::collections::BTreeMap;

use androne_android::{DeviceClass, DevicePolicy};
use androne_simkern::{ContainerId, StateHash, StateHasher};

/// Where a virtual drone is in its flight lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightPhase {
    /// Created; the drone has not reached its first waypoint.
    BeforeFirstWaypoint,
    /// Operating at waypoint `index`.
    AtWaypoint(usize),
    /// Between its own waypoints.
    Transit,
    /// All waypoints done (or budget exhausted/forced off).
    Finished,
}

/// Per-virtual-drone access state.
#[derive(Debug, Clone)]
struct AccessState {
    waypoint_devices: Vec<DeviceClass>,
    continuous_devices: Vec<DeviceClass>,
    phase: FlightPhase,
    continuous_suspended: bool,
}

/// The table device services consult.
#[derive(Debug, Default)]
pub struct AccessTable {
    /// The device container itself (unrestricted).
    device_container: Option<ContainerId>,
    /// The flight container (native; policy-only checks).
    flight_container: Option<ContainerId>,
    entries: BTreeMap<ContainerId, AccessState>,
}

impl AccessTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        AccessTable::default()
    }

    /// Marks the device container (its own processes always pass).
    pub fn set_device_container(&mut self, c: ContainerId) {
        self.device_container = Some(c);
    }

    /// Marks the flight container (the flight controller needs GPS
    /// and sensors at all times).
    pub fn set_flight_container(&mut self, c: ContainerId) {
        self.flight_container = Some(c);
    }

    /// Registers a virtual drone's device lists.
    pub fn register(
        &mut self,
        container: ContainerId,
        waypoint_devices: Vec<DeviceClass>,
        continuous_devices: Vec<DeviceClass>,
    ) {
        self.entries.insert(
            container,
            AccessState {
                waypoint_devices,
                continuous_devices,
                phase: FlightPhase::BeforeFirstWaypoint,
                continuous_suspended: false,
            },
        );
    }

    /// Removes a virtual drone.
    pub fn unregister(&mut self, container: ContainerId) {
        self.entries.remove(&container);
    }

    /// Updates a virtual drone's flight phase.
    pub fn set_phase(&mut self, container: ContainerId, phase: FlightPhase) {
        if let Some(e) = self.entries.get_mut(&container) {
            e.phase = phase;
        }
    }

    /// Current phase, if registered.
    pub fn phase(&self, container: ContainerId) -> Option<FlightPhase> {
        self.entries.get(&container).map(|e| e.phase)
    }

    /// Suspends continuous-device access (approaching another
    /// party's waypoint).
    pub fn suspend_continuous(&mut self, container: ContainerId) {
        if let Some(e) = self.entries.get_mut(&container) {
            e.continuous_suspended = true;
        }
    }

    /// Resumes continuous-device access.
    pub fn resume_continuous(&mut self, container: ContainerId) {
        if let Some(e) = self.entries.get_mut(&container) {
            e.continuous_suspended = false;
        }
    }

    /// Whether flight control is currently permitted (used by the
    /// flight container's query path).
    pub fn flight_control_allowed(&self, container: ContainerId) -> bool {
        self.allows(container, DeviceClass::FlightControl)
    }
}

impl DevicePolicy for AccessTable {
    fn allows(&self, container: ContainerId, device: DeviceClass) -> bool {
        if Some(container) == self.device_container {
            return true;
        }
        if Some(container) == self.flight_container {
            // The flight stack reads GPS/sensors through the device
            // container like everyone else, at all times.
            return matches!(device, DeviceClass::Gps | DeviceClass::Sensors);
        }
        let Some(e) = self.entries.get(&container) else {
            // Unknown containers get nothing.
            return false;
        };
        let at_waypoint = matches!(e.phase, FlightPhase::AtWaypoint(_));
        if e.waypoint_devices.contains(&device) && at_waypoint {
            return true;
        }
        if e.continuous_devices.contains(&device) {
            let started = !matches!(e.phase, FlightPhase::BeforeFirstWaypoint);
            let finished = matches!(e.phase, FlightPhase::Finished);
            return started && !finished && !e.continuous_suspended;
        }
        false
    }
}

impl StateHash for AccessTable {
    fn state_hash(&self, h: &mut StateHasher) {
        let write_container = |h: &mut StateHasher, c: Option<ContainerId>| match c {
            Some(c) => {
                h.write_u8(1);
                c.state_hash(h);
            }
            None => h.write_u8(0),
        };
        write_container(h, self.device_container);
        write_container(h, self.flight_container);
        h.write_usize(self.entries.len());
        for (container, e) in &self.entries {
            container.state_hash(h);
            h.write_usize(e.waypoint_devices.len());
            for d in &e.waypoint_devices {
                h.write_u8(*d as u8);
            }
            h.write_usize(e.continuous_devices.len());
            for d in &e.continuous_devices {
                h.write_u8(*d as u8);
            }
            match e.phase {
                FlightPhase::BeforeFirstWaypoint => h.write_u8(0),
                FlightPhase::AtWaypoint(i) => {
                    h.write_u8(1);
                    h.write_usize(i);
                }
                FlightPhase::Transit => h.write_u8(2),
                FlightPhase::Finished => h.write_u8(3),
            }
            h.write_bool(e.continuous_suspended);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (AccessTable, ContainerId) {
        let mut t = AccessTable::new();
        let vd = ContainerId(10);
        t.set_device_container(ContainerId(1));
        t.register(
            vd,
            vec![DeviceClass::Camera, DeviceClass::FlightControl],
            vec![DeviceClass::Gps],
        );
        (t, vd)
    }

    #[test]
    fn waypoint_devices_only_at_waypoints() {
        let (mut t, vd) = table();
        assert!(!t.allows(vd, DeviceClass::Camera));
        t.set_phase(vd, FlightPhase::AtWaypoint(0));
        assert!(t.allows(vd, DeviceClass::Camera));
        assert!(t.flight_control_allowed(vd));
        t.set_phase(vd, FlightPhase::Transit);
        assert!(!t.allows(vd, DeviceClass::Camera));
        assert!(!t.flight_control_allowed(vd));
    }

    #[test]
    fn continuous_devices_span_transit_but_not_prelude() {
        let (mut t, vd) = table();
        assert!(
            !t.allows(vd, DeviceClass::Gps),
            "not before the first waypoint"
        );
        t.set_phase(vd, FlightPhase::AtWaypoint(0));
        assert!(t.allows(vd, DeviceClass::Gps));
        t.set_phase(vd, FlightPhase::Transit);
        assert!(t.allows(vd, DeviceClass::Gps), "held during transit");
        t.set_phase(vd, FlightPhase::Finished);
        assert!(!t.allows(vd, DeviceClass::Gps));
    }

    #[test]
    fn suspension_overrides_continuous_access() {
        let (mut t, vd) = table();
        t.set_phase(vd, FlightPhase::Transit);
        assert!(t.allows(vd, DeviceClass::Gps));
        t.suspend_continuous(vd);
        assert!(!t.allows(vd, DeviceClass::Gps));
        // Waypoint devices are unaffected by suspension rules (they
        // are prioritized above continuous access, paper Section 3).
        t.set_phase(vd, FlightPhase::AtWaypoint(1));
        assert!(t.allows(vd, DeviceClass::Camera));
        t.resume_continuous(vd);
        assert!(t.allows(vd, DeviceClass::Gps));
    }

    #[test]
    fn unrequested_devices_are_never_allowed() {
        let (mut t, vd) = table();
        t.set_phase(vd, FlightPhase::AtWaypoint(0));
        assert!(!t.allows(vd, DeviceClass::Microphone));
    }

    #[test]
    fn unknown_containers_get_nothing() {
        let (t, _) = table();
        assert!(!t.allows(ContainerId(99), DeviceClass::Camera));
    }

    #[test]
    fn device_container_is_unrestricted() {
        let (t, _) = table();
        assert!(t.allows(ContainerId(1), DeviceClass::Camera));
    }
}
