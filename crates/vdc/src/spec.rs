//! Virtual drone definitions.
//!
//! "AnDrone defines a virtual drone as a JSON specification in
//! combination with an Android Things container image" (paper
//! Section 3). The JSON schema here matches the paper's Figure 2:
//! waypoints (latitude/longitude/altitude/max-radius), max-duration,
//! energy-allotted, continuous-devices, waypoint-devices, apps, and
//! app-args.

use std::collections::BTreeMap;

use androne_android::DeviceClass;
use androne_hal::GeoPoint;
use serde::{Deserialize, Serialize, Value};

/// One waypoint in a virtual drone definition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaypointSpec {
    /// Latitude, degrees.
    pub latitude: f64,
    /// Longitude, degrees.
    pub longitude: f64,
    /// Altitude, meters.
    pub altitude: f64,
    /// Radius of the spherical operating volume / geofence, meters.
    /// Serialized as `max-radius`, the paper's field name.
    pub max_radius: f64,
}

impl WaypointSpec {
    /// The waypoint's position.
    pub fn position(&self) -> GeoPoint {
        GeoPoint::new(self.latitude, self.longitude, self.altitude)
    }
}

/// A full virtual drone definition (paper Figure 2).
///
/// JSON field names follow the paper's hyphenated spelling
/// (`max-duration`, `energy-allotted`, …); the device lists, `apps`,
/// and `app-args` fields default to empty when absent.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualDroneSpec {
    /// Waypoints the virtual drone is to visit.
    pub waypoints: Vec<WaypointSpec>,
    /// Maximum operating time across all waypoints, seconds.
    pub max_duration: f64,
    /// Maximum energy across all waypoints, joules.
    pub energy_allotted: f64,
    /// Devices held continuously from the first waypoint to the
    /// last (suspendable at other parties' waypoints).
    pub continuous_devices: Vec<String>,
    /// Devices held only while operating at waypoints.
    pub waypoint_devices: Vec<String>,
    /// APKs to install in the container.
    pub apps: Vec<String>,
    /// Per-app arguments, keyed by package name.
    pub app_args: BTreeMap<String, serde_json::Value>,
}

impl Serialize for WaypointSpec {
    fn serialize_value(&self) -> Value {
        let mut obj = BTreeMap::new();
        obj.insert("latitude".to_string(), self.latitude.serialize_value());
        obj.insert("longitude".to_string(), self.longitude.serialize_value());
        obj.insert("altitude".to_string(), self.altitude.serialize_value());
        obj.insert("max-radius".to_string(), self.max_radius.serialize_value());
        Value::Object(obj)
    }
}

impl Deserialize for WaypointSpec {
    fn deserialize_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(WaypointSpec {
            latitude: field(v, "latitude")?,
            longitude: field(v, "longitude")?,
            altitude: field(v, "altitude")?,
            max_radius: field(v, "max-radius")?,
        })
    }
}

impl Serialize for VirtualDroneSpec {
    fn serialize_value(&self) -> Value {
        let mut obj = BTreeMap::new();
        obj.insert("waypoints".to_string(), self.waypoints.serialize_value());
        obj.insert("max-duration".to_string(), self.max_duration.serialize_value());
        obj.insert(
            "energy-allotted".to_string(),
            self.energy_allotted.serialize_value(),
        );
        obj.insert(
            "continuous-devices".to_string(),
            self.continuous_devices.serialize_value(),
        );
        obj.insert(
            "waypoint-devices".to_string(),
            self.waypoint_devices.serialize_value(),
        );
        obj.insert("apps".to_string(), self.apps.serialize_value());
        obj.insert("app-args".to_string(), self.app_args.serialize_value());
        Value::Object(obj)
    }
}

impl Deserialize for VirtualDroneSpec {
    fn deserialize_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(VirtualDroneSpec {
            waypoints: field(v, "waypoints")?,
            max_duration: field(v, "max-duration")?,
            energy_allotted: field(v, "energy-allotted")?,
            continuous_devices: field_or_default(v, "continuous-devices")?,
            waypoint_devices: field_or_default(v, "waypoint-devices")?,
            apps: field_or_default(v, "apps")?,
            app_args: field_or_default(v, "app-args")?,
        })
    }
}

/// Reads a required object field.
fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, serde::Error> {
    match v.get(name) {
        Some(inner) => T::deserialize_value(inner),
        None => Err(serde::Error::msg(format!("missing field '{name}'"))),
    }
}

/// Reads an optional object field, defaulting when absent.
fn field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, serde::Error> {
    match v.get(name) {
        Some(inner) => T::deserialize_value(inner),
        None => Ok(T::default()),
    }
}

/// Spec validation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// No waypoints.
    NoWaypoints,
    /// Non-positive duration or energy.
    NonPositiveBudget(&'static str),
    /// Unknown device name.
    UnknownDevice(String),
    /// Flight control requested as a continuous device ("flight
    /// control can only be specified as a waypoint device").
    ContinuousFlightControl,
    /// A waypoint radius is non-positive.
    BadRadius(usize),
    /// A latitude/longitude is out of range.
    BadCoordinates(usize),
    /// JSON parse failure.
    Json(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::NoWaypoints => write!(f, "spec has no waypoints"),
            SpecError::NonPositiveBudget(which) => write!(f, "{which} must be positive"),
            SpecError::UnknownDevice(d) => write!(f, "unknown device '{d}'"),
            SpecError::ContinuousFlightControl => {
                write!(f, "flight-control cannot be a continuous device")
            }
            SpecError::BadRadius(i) => write!(f, "waypoint {i} has a non-positive max-radius"),
            SpecError::BadCoordinates(i) => write!(f, "waypoint {i} has invalid coordinates"),
            SpecError::Json(e) => write!(f, "invalid JSON: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl VirtualDroneSpec {
    /// Parses and validates a JSON definition.
    pub fn from_json(json: &str) -> Result<Self, SpecError> {
        let spec: VirtualDroneSpec =
            serde_json::from_str(json).map_err(|e| SpecError::Json(e.to_string()))?;
        spec.validate()?;
        Ok(spec)
    }

    /// Serializes back to JSON.
    pub fn to_json(&self) -> String {
        // dronelint:allow(R3, infallible: the spec is a plain data struct with no map keys or non-finite floats rejected by validate)
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Validates the definition's invariants.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.waypoints.is_empty() {
            return Err(SpecError::NoWaypoints);
        }
        for (i, wp) in self.waypoints.iter().enumerate() {
            if wp.max_radius <= 0.0 {
                return Err(SpecError::BadRadius(i));
            }
            if !(-90.0..=90.0).contains(&wp.latitude)
                || !(-180.0..=180.0).contains(&wp.longitude)
                || !wp.altitude.is_finite()
            {
                return Err(SpecError::BadCoordinates(i));
            }
        }
        if self.max_duration <= 0.0 || self.max_duration.is_nan() {
            return Err(SpecError::NonPositiveBudget("max-duration"));
        }
        if self.energy_allotted <= 0.0 || self.energy_allotted.is_nan() {
            return Err(SpecError::NonPositiveBudget("energy-allotted"));
        }
        for d in &self.continuous_devices {
            let device = DeviceClass::parse(d)
                .ok_or_else(|| SpecError::UnknownDevice(d.clone()))?;
            if device == DeviceClass::FlightControl {
                return Err(SpecError::ContinuousFlightControl);
            }
        }
        for d in &self.waypoint_devices {
            DeviceClass::parse(d).ok_or_else(|| SpecError::UnknownDevice(d.clone()))?;
        }
        Ok(())
    }

    /// Parsed continuous device classes.
    pub fn continuous_classes(&self) -> Vec<DeviceClass> {
        self.continuous_devices
            .iter()
            .filter_map(|d| DeviceClass::parse(d))
            .collect()
    }

    /// Parsed waypoint device classes.
    pub fn waypoint_classes(&self) -> Vec<DeviceClass> {
        self.waypoint_devices
            .iter()
            .filter_map(|d| DeviceClass::parse(d))
            .collect()
    }

    /// Whether flight control is requested (always waypoint-typed).
    pub fn wants_flight_control(&self) -> bool {
        self.waypoint_classes()
            .contains(&DeviceClass::FlightControl)
    }

    /// The paper's Figure 2 example definition (construction-site
    /// survey).
    pub fn example_survey() -> Self {
        VirtualDroneSpec {
            waypoints: vec![
                WaypointSpec {
                    latitude: 43.6084298,
                    longitude: -85.8110359,
                    altitude: 15.0,
                    max_radius: 30.0,
                },
                WaypointSpec {
                    latitude: 43.6076409,
                    longitude: -85.8154457,
                    altitude: 15.0,
                    max_radius: 20.0,
                },
            ],
            max_duration: 600.0,
            energy_allotted: 45_000.0,
            continuous_devices: vec![],
            waypoint_devices: vec!["camera".into(), "flight-control".into()],
            apps: vec!["com.example.survey.apk".into()],
            app_args: {
                let mut m = BTreeMap::new();
                m.insert(
                    "com.example.survey".to_string(),
                    serde_json::json!({
                        "survey-areas": {
                            "43.6084298,-85.8110359": [
                                [43.6087619, -85.8104110],
                                [43.6087968, -85.8109877],
                                [43.6084570, -85.8110225],
                                [43.6084240, -85.8104646]
                            ]
                        }
                    }),
                );
                m
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_2_example_round_trips_through_json() {
        let spec = VirtualDroneSpec::example_survey();
        spec.validate().unwrap();
        let json = spec.to_json();
        assert!(json.contains("\"max-radius\""), "paper field names kept");
        assert!(json.contains("\"energy-allotted\""));
        let back = VirtualDroneSpec::from_json(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut s = VirtualDroneSpec::example_survey();
        s.waypoints.clear();
        assert_eq!(s.validate(), Err(SpecError::NoWaypoints));

        let mut s = VirtualDroneSpec::example_survey();
        s.energy_allotted = 0.0;
        assert!(matches!(s.validate(), Err(SpecError::NonPositiveBudget(_))));

        let mut s = VirtualDroneSpec::example_survey();
        s.waypoints[0].max_radius = -1.0;
        assert_eq!(s.validate(), Err(SpecError::BadRadius(0)));

        let mut s = VirtualDroneSpec::example_survey();
        s.waypoints[1].latitude = 123.0;
        assert_eq!(s.validate(), Err(SpecError::BadCoordinates(1)));

        let mut s = VirtualDroneSpec::example_survey();
        s.waypoint_devices.push("tractor-beam".into());
        assert!(matches!(s.validate(), Err(SpecError::UnknownDevice(_))));
    }

    #[test]
    fn continuous_flight_control_is_rejected() {
        let mut s = VirtualDroneSpec::example_survey();
        s.continuous_devices.push("flight-control".into());
        assert_eq!(s.validate(), Err(SpecError::ContinuousFlightControl));
    }

    #[test]
    fn device_class_accessors() {
        let s = VirtualDroneSpec::example_survey();
        assert!(s.wants_flight_control());
        assert_eq!(
            s.waypoint_classes(),
            vec![DeviceClass::Camera, DeviceClass::FlightControl]
        );
        assert!(s.continuous_classes().is_empty());
    }

    #[test]
    fn malformed_json_is_reported() {
        assert!(matches!(
            VirtualDroneSpec::from_json("{not json"),
            Err(SpecError::Json(_))
        ));
    }
}
