//! The AnDrone SDK object (paper Figure 7).
//!
//! One instance lives inside each virtual drone and talks to the VDC
//! on the app's behalf:
//!
//! ```text
//! void registerWaypointListener(WaypointListener l);
//! void waypointCompleted();
//! InetAddress getFlightControllerIP();
//! void markFileForUser(String path);
//! int getAllottedEnergyLeft();
//! int getAllottedTimeLeft();
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use androne_vdc::{Vdc, VdcEvent};

use crate::listener::WaypointListener;

/// Shared VDC handle the SDK talks to.
pub type VdcRef = Rc<RefCell<Vdc>>;

/// The per-virtual-drone SDK instance.
pub struct AndroneSdk {
    vdc: VdcRef,
    /// The virtual drone this SDK instance belongs to.
    vd_name: String,
    listeners: Vec<Box<dyn WaypointListener>>,
}

impl AndroneSdk {
    /// Creates the SDK for virtual drone `vd_name`.
    pub fn new(vdc: VdcRef, vd_name: impl Into<String>) -> Self {
        AndroneSdk {
            vdc,
            vd_name: vd_name.into(),
            listeners: Vec::new(),
        }
    }

    /// `registerWaypointListener(l)`.
    pub fn register_waypoint_listener(&mut self, listener: Box<dyn WaypointListener>) {
        self.listeners.push(listener);
    }

    /// `waypointCompleted()`: the app's task at the current waypoint
    /// is done; the drone may move on.
    pub fn waypoint_completed(&self) {
        self.vdc.borrow_mut().waypoint_completed(&self.vd_name);
    }

    /// `reportProgress()`: heartbeat for long waypoint tasks. Apps
    /// call this periodically while working; the flight watchdog
    /// revokes a virtual drone that keeps issuing commands without
    /// progress once `WatchdogConfig::progress_timeout_s` elapses.
    pub fn report_progress(&self) {
        self.vdc.borrow_mut().report_progress(&self.vd_name);
    }

    /// `getFlightControllerIP()`: where to connect for the virtual
    /// flight controller. Every virtual drone sees the same
    /// VPN-local address; the per-container tunnel routes it to its
    /// own VFC.
    pub fn get_flight_controller_ip(&self) -> &'static str {
        "10.49.0.1:5760"
    }

    /// `markFileForUser(path)`: make a generated file available in
    /// cloud storage after the flight.
    pub fn mark_file_for_user(&self, path: impl Into<String>) {
        self.vdc.borrow_mut().mark_file(&self.vd_name, path);
    }

    /// `getAllottedEnergyLeft()`, joules.
    pub fn get_allotted_energy_left(&self) -> f64 {
        self.vdc
            .borrow()
            .record(&self.vd_name)
            .map(|r| r.energy_remaining_j())
            .unwrap_or(0.0)
    }

    /// `getAllottedTimeLeft()`, seconds.
    pub fn get_allotted_time_left(&self) -> f64 {
        self.vdc
            .borrow()
            .record(&self.vd_name)
            .map(|r| r.time_remaining_s())
            .unwrap_or(0.0)
    }

    /// `isSuspended()`: whether the QoS escalation ladder currently
    /// holds this tenant at the `Suspended` rung. Part of the real
    /// tenant-visible surface — which also makes it the ladder signal
    /// an adaptive adversary reads as feedback.
    pub fn is_suspended(&self) -> bool {
        self.vdc
            .borrow()
            .record(&self.vd_name)
            .is_some_and(|r| r.suspended)
    }

    /// Delivers pending VDC events to the registered listeners. The
    /// virtual drone's main loop calls this periodically (Android
    /// would dispatch on the app's looper).
    pub fn pump_events(&mut self) {
        let events = self.vdc.borrow_mut().drain_events(&self.vd_name);
        for event in events {
            for l in &mut self.listeners {
                match &event {
                    VdcEvent::WaypointActive { index, waypoint } => {
                        l.waypoint_active(*waypoint, *index)
                    }
                    VdcEvent::WaypointInactive { index } => l.waypoint_inactive(*index),
                    VdcEvent::LowEnergyWarning { remaining_j } => {
                        l.low_energy_warning(*remaining_j)
                    }
                    VdcEvent::LowTimeWarning { remaining_s } => l.low_time_warning(*remaining_s),
                    VdcEvent::GeofenceBreached => l.geofence_breached(),
                    VdcEvent::SuspendContinuousDevices => l.suspend_continuous_devices(),
                    VdcEvent::ResumeContinuousDevices => l.resume_continuous_devices(),
                    VdcEvent::WatchdogRevoked => l.watchdog_revoked(),
                    VdcEvent::TenantSuspended => l.tenant_suspended(),
                    VdcEvent::TenantResumed => l.tenant_resumed(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::listener::RecordingListener;
    use androne_simkern::ContainerId;
    use androne_vdc::{AccessTable, VirtualDroneSpec};

    fn setup() -> (VdcRef, AndroneSdk) {
        let access = Rc::new(RefCell::new(AccessTable::new()));
        let vdc = Rc::new(RefCell::new(Vdc::new(access)));
        vdc.borrow_mut()
            .register("vd1", ContainerId(10), VirtualDroneSpec::example_survey());
        let sdk = AndroneSdk::new(vdc.clone(), "vd1");
        (vdc, sdk)
    }

    #[test]
    fn events_reach_registered_listeners() {
        let (vdc, mut sdk) = setup();
        sdk.register_waypoint_listener(Box::<RecordingListener>::default());
        vdc.borrow_mut().on_waypoint_arrived("vd1", 0);
        vdc.borrow_mut().charge_energy("vd1", 44_000.0);
        vdc.borrow_mut().on_waypoint_departed("vd1", 0);
        sdk.pump_events();
        // The listener recorded all three in order; verify via a
        // fresh recording listener is impossible post-box, so assert
        // through side effects: re-pump is empty.
        sdk.pump_events();
        assert_eq!(vdc.borrow_mut().drain_events("vd1").len(), 0);
    }

    #[test]
    fn budget_queries_reflect_vdc_state() {
        let (vdc, sdk) = setup();
        assert_eq!(sdk.get_allotted_energy_left(), 45_000.0);
        assert_eq!(sdk.get_allotted_time_left(), 600.0);
        vdc.borrow_mut().charge_energy("vd1", 20_000.0);
        vdc.borrow_mut().charge_time("vd1", 100.0);
        assert_eq!(sdk.get_allotted_energy_left(), 25_000.0);
        assert_eq!(sdk.get_allotted_time_left(), 500.0);
    }

    #[test]
    fn waypoint_completed_reaches_the_vdc() {
        let (vdc, sdk) = setup();
        sdk.waypoint_completed();
        assert!(vdc.borrow().record("vd1").unwrap().waypoint_done);
    }

    #[test]
    fn marked_files_reach_the_vdc() {
        let (vdc, sdk) = setup();
        sdk.mark_file_for_user("/data/out/photo1.jpg");
        assert_eq!(
            vdc.borrow().record("vd1").unwrap().marked_files,
            vec!["/data/out/photo1.jpg"]
        );
    }

    #[test]
    fn flight_controller_address_is_vpn_local() {
        let (_, sdk) = setup();
        assert!(sdk.get_flight_controller_ip().starts_with("10."));
    }
}
