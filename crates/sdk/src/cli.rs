//! The AnDrone command-line utility.
//!
//! "For advanced end users, who may not be using an app, AnDrone's
//! SDK functionality is also made available to them via a command
//! line utility" (paper Section 5). Runs inside a virtual drone's
//! remote console.

use crate::sdk::AndroneSdk;

/// Executes one CLI command against the SDK, returning the output
/// the user sees.
pub fn run_command(sdk: &AndroneSdk, line: &str) -> String {
    let mut parts = line.split_whitespace();
    match parts.next() {
        Some("energy-left") => format!("{:.0} J", sdk.get_allotted_energy_left()),
        Some("time-left") => format!("{:.0} s", sdk.get_allotted_time_left()),
        Some("fc-ip") => sdk.get_flight_controller_ip().to_string(),
        Some("waypoint-completed") => {
            sdk.waypoint_completed();
            "ok".to_string()
        }
        Some("mark-file") => match parts.next() {
            Some(path) => {
                sdk.mark_file_for_user(path);
                format!("marked {path}")
            }
            None => "usage: mark-file <path>".to_string(),
        },
        Some("help") | None => "commands: energy-left | time-left | fc-ip | \
             waypoint-completed | mark-file <path>"
            .to_string(),
        Some(other) => format!("unknown command '{other}' (try 'help')"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    use androne_simkern::ContainerId;
    use androne_vdc::{AccessTable, Vdc, VirtualDroneSpec};

    fn sdk() -> (Rc<RefCell<Vdc>>, AndroneSdk) {
        let access = Rc::new(RefCell::new(AccessTable::new()));
        let vdc = Rc::new(RefCell::new(Vdc::new(access)));
        vdc.borrow_mut()
            .register("vd1", ContainerId(10), VirtualDroneSpec::example_survey());
        let sdk = AndroneSdk::new(vdc.clone(), "vd1");
        (vdc, sdk)
    }

    #[test]
    fn queries_format_budgets() {
        let (_, sdk) = sdk();
        assert_eq!(run_command(&sdk, "energy-left"), "45000 J");
        assert_eq!(run_command(&sdk, "time-left"), "600 s");
    }

    #[test]
    fn mark_file_and_completion_take_effect() {
        let (vdc, sdk) = sdk();
        assert_eq!(run_command(&sdk, "mark-file /data/x.jpg"), "marked /data/x.jpg");
        assert_eq!(run_command(&sdk, "waypoint-completed"), "ok");
        assert!(vdc.borrow().record("vd1").unwrap().waypoint_done);
        assert_eq!(vdc.borrow().record("vd1").unwrap().marked_files.len(), 1);
    }

    #[test]
    fn unknown_and_help() {
        let (_, sdk) = sdk();
        assert!(run_command(&sdk, "frobnicate").contains("unknown command"));
        assert!(run_command(&sdk, "help").contains("energy-left"));
        assert!(run_command(&sdk, "mark-file").contains("usage"));
    }
}
