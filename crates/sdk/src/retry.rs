//! Deterministic-backoff retry for Binder calls.
//!
//! Guest apps talk to the VDC over Binder; under injected transaction
//! faults (or a service mid-restart) a call can fail transiently. The
//! SDK retries those calls with a deterministic exponential backoff —
//! no jitter, no wall clock — so a retried flight replays identically
//! under the dual-run sanitizer. The attempt budget is capped: when
//! it runs out the caller gets a typed [`RetryError`], never a panic.

use androne_binder::{BinderDriver, BinderError, Parcel};
use androne_simkern::{Pid, SimDuration};

/// Retry policy with deterministic exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts, including the first (must be ≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: SimDuration,
    /// Cap on any single backoff.
    pub max_delay: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: SimDuration::from_millis(5),
            max_delay: SimDuration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// The backoff to wait before retry number `retry` (1-based):
    /// `base · 2^(retry-1)`, capped at `max_delay`. Pure function of
    /// the policy — identical on every run.
    pub fn backoff(&self, retry: u32) -> SimDuration {
        let factor = 1u64 << retry.saturating_sub(1).min(32);
        let nanos = self.base_delay.as_nanos().saturating_mul(factor);
        SimDuration::from_nanos(nanos.min(self.max_delay.as_nanos()))
    }
}

/// The typed failure of an exhausted or non-retryable call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryError {
    /// Every attempt failed with a retryable error; `last` is the
    /// final one.
    Exhausted { attempts: u32, last: BinderError },
    /// The call failed with an error retrying cannot fix (bad parcel,
    /// permission denied, ...), surfaced immediately.
    Fatal(BinderError),
}

impl std::fmt::Display for RetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetryError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            RetryError::Fatal(e) => write!(f, "non-retryable binder error: {e}"),
        }
    }
}

impl std::error::Error for RetryError {}

/// The typed failure of a retried call over any error type — the
/// generic shape behind [`RetryError`], reused by non-Binder callers
/// (the cloud façade retries storage writes with it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryFailure<E> {
    /// Every attempt failed with a retryable error; `last` is the
    /// final one.
    Exhausted { attempts: u32, last: E },
    /// The call failed with an error retrying cannot fix, surfaced
    /// immediately.
    Fatal(E),
}

/// Runs `call` under `policy` for any error type. `retryable`
/// classifies errors worth another attempt; `call` receives the
/// 1-based attempt number; `on_backoff` is invoked with each backoff
/// delay before a retry — callers advance simulated time (or just
/// count) there. Fully deterministic: no jitter, no wall clock.
pub fn retry_with_backoff<T, E>(
    policy: &RetryPolicy,
    retryable: impl Fn(&E) -> bool,
    mut call: impl FnMut(u32) -> Result<T, E>,
    on_backoff: &mut dyn FnMut(SimDuration),
) -> Result<T, RetryFailure<E>> {
    let attempts = policy.max_attempts.max(1);
    let mut attempt = 1;
    loop {
        match call(attempt) {
            Ok(v) => return Ok(v),
            Err(e) if retryable(&e) && attempt < attempts => {
                on_backoff(policy.backoff(attempt));
                attempt += 1;
            }
            Err(e) if retryable(&e) => {
                return Err(RetryFailure::Exhausted { attempts, last: e })
            }
            Err(e) => return Err(RetryFailure::Fatal(e)),
        }
    }
}

/// A wave-granular backpressure signal. Admission-controlled services
/// (the cloud order queue) reject submissions with an error carrying
/// the earliest wave a retry can succeed at; clients use
/// [`submit_with_backpressure`] to wait out exactly that many waves
/// instead of hammering the queue.
pub trait Backpressure {
    /// The earliest wave at which a retry can be admitted, or `None`
    /// when the error is not a backpressure rejection (give up).
    fn retry_wave(&self) -> Option<u64>;
}

/// The typed failure of a backpressured submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError<E> {
    /// A non-backpressure rejection, surfaced immediately.
    Rejected(E),
    /// Still backpressured after waiting through `waves_waited` waves.
    Exhausted { waves_waited: u64, last: E },
}

/// Submits under wave-granular backpressure: calls `submit(wave)`
/// starting at `start_wave`; on a backpressure rejection it skips
/// forward to the error's advertised retry wave (invoking `on_wait`
/// with each intervening wave so callers can advance simulated time)
/// and tries again. Gives up once more than `max_wait_waves` waves
/// have been waited in total. Deterministic: the wave schedule is a
/// pure function of the rejections seen.
pub fn submit_with_backpressure<T, E: Backpressure>(
    start_wave: u64,
    max_wait_waves: u64,
    mut submit: impl FnMut(u64) -> Result<T, E>,
    on_wait: &mut dyn FnMut(u64),
) -> Result<(T, u64), SubmitError<E>> {
    let mut wave = start_wave;
    let mut waited = 0u64;
    loop {
        match submit(wave) {
            Ok(v) => return Ok((v, wave)),
            Err(e) => {
                let Some(retry) = e.retry_wave() else {
                    return Err(SubmitError::Rejected(e));
                };
                // A retry wave in the past still costs one wave.
                let next = retry.max(wave + 1);
                waited += next - wave;
                if waited > max_wait_waves {
                    return Err(SubmitError::Exhausted { waves_waited: waited, last: e });
                }
                while wave < next {
                    wave += 1;
                    on_wait(wave);
                }
            }
        }
    }
}

/// Whether an error class can plausibly clear on retry: transient
/// transaction failures, timeouts, a service not (re)registered yet,
/// or a remote that died and is being supervised back up.
fn retryable(e: &BinderError) -> bool {
    matches!(
        e,
        BinderError::TransactionFailed(_)
            | BinderError::TimedOut
            | BinderError::ServiceNotFound(_)
            | BinderError::DeadObject
    )
}

/// Runs `call` under `policy`. `on_backoff` is invoked with each
/// backoff delay before a retry — callers advance simulated time (or
/// just count) there.
fn with_retry<T>(
    policy: &RetryPolicy,
    mut call: impl FnMut() -> Result<T, BinderError>,
    on_backoff: &mut dyn FnMut(SimDuration),
) -> Result<T, RetryError> {
    retry_with_backoff(policy, retryable, |_| call(), on_backoff).map_err(|e| match e {
        RetryFailure::Exhausted { attempts, last } => RetryError::Exhausted { attempts, last },
        RetryFailure::Fatal(e) => RetryError::Fatal(e),
    })
}

/// [`androne_binder::get_service`] with retry: looks up `name` in the
/// caller's Context Manager, retrying transient failures.
pub fn get_service_with_retry(
    driver: &mut BinderDriver,
    caller: Pid,
    name: &str,
    policy: &RetryPolicy,
    on_backoff: &mut dyn FnMut(SimDuration),
) -> Result<u32, RetryError> {
    with_retry(
        policy,
        || androne_binder::get_service(driver, caller, name),
        on_backoff,
    )
}

/// [`BinderDriver::transact`] with retry. The parcel is cloned per
/// attempt (cheap: parcels are copy-on-write).
pub fn transact_with_retry(
    driver: &mut BinderDriver,
    caller: Pid,
    handle: u32,
    code: u32,
    data: &Parcel,
    policy: &RetryPolicy,
    on_backoff: &mut dyn FnMut(SimDuration),
) -> Result<Parcel, RetryError> {
    with_retry(
        policy,
        || driver.transact(caller, handle, code, data.clone()),
        on_backoff,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(1), SimDuration::from_millis(5));
        assert_eq!(p.backoff(2), SimDuration::from_millis(10));
        assert_eq!(p.backoff(3), SimDuration::from_millis(20));
        assert_eq!(p.backoff(10), SimDuration::from_millis(100), "capped");
    }

    #[test]
    fn backoff_is_deterministic() {
        let p = RetryPolicy::default();
        for retry in 1..16 {
            assert_eq!(p.backoff(retry), p.backoff(retry));
        }
    }

    #[test]
    fn success_after_transient_failures() {
        let mut failures_left = 2;
        let mut waits = Vec::new();
        let out = with_retry(
            &RetryPolicy::default(),
            || {
                if failures_left > 0 {
                    failures_left -= 1;
                    Err(BinderError::TimedOut)
                } else {
                    Ok(7)
                }
            },
            &mut |d| waits.push(d),
        );
        assert_eq!(out, Ok(7));
        assert_eq!(
            waits,
            vec![SimDuration::from_millis(5), SimDuration::from_millis(10)]
        );
    }

    #[test]
    fn exhausted_retries_surface_typed_error() {
        let mut calls = 0;
        let out: Result<(), RetryError> = with_retry(
            &RetryPolicy::default(),
            || {
                calls += 1;
                Err(BinderError::TransactionFailed("injected fault".into()))
            },
            &mut |_| {},
        );
        assert_eq!(calls, 4, "attempt budget is capped");
        match out {
            Err(RetryError::Exhausted { attempts: 4, last }) => {
                assert_eq!(last, BinderError::TransactionFailed("injected fault".into()));
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn generic_retry_passes_attempt_numbers_and_classifies() {
        #[derive(Debug, PartialEq, Eq, Clone)]
        enum E {
            Transient,
            Hard,
        }
        let mut seen = Vec::new();
        let out = retry_with_backoff(
            &RetryPolicy::default(),
            |e| *e == E::Transient,
            |attempt| {
                seen.push(attempt);
                if attempt < 3 {
                    Err(E::Transient)
                } else {
                    Ok("done")
                }
            },
            &mut |_| {},
        );
        assert_eq!(out, Ok("done"));
        assert_eq!(seen, vec![1, 2, 3]);

        let out: Result<(), _> = retry_with_backoff(
            &RetryPolicy::default(),
            |e| *e == E::Transient,
            |_| Err(E::Hard),
            &mut |_| {},
        );
        assert_eq!(out, Err(RetryFailure::Fatal(E::Hard)));

        let out: Result<(), _> = retry_with_backoff(
            &RetryPolicy { max_attempts: 2, ..RetryPolicy::default() },
            |e| *e == E::Transient,
            |_| Err(E::Transient),
            &mut |_| {},
        );
        assert_eq!(out, Err(RetryFailure::Exhausted { attempts: 2, last: E::Transient }));
    }

    #[test]
    fn submit_waits_out_advertised_retry_waves() {
        #[derive(Debug, PartialEq, Eq, Clone)]
        struct Bp(Option<u64>);
        impl Backpressure for Bp {
            fn retry_wave(&self) -> Option<u64> {
                self.0
            }
        }
        // Rejected at waves 0 and 3 with retry targets 3 and 5;
        // admitted at wave 5.
        let mut waited = Vec::new();
        let out = submit_with_backpressure(
            0,
            10,
            |wave| match wave {
                0 => Err(Bp(Some(3))),
                3 => Err(Bp(Some(5))),
                w => Ok(w * 10),
            },
            &mut |w| waited.push(w),
        );
        assert_eq!(out, Ok((50, 5)));
        assert_eq!(waited, vec![1, 2, 3, 4, 5]);

        // A non-backpressure rejection surfaces immediately.
        let out: Result<(u32, u64), _> =
            submit_with_backpressure(0, 10, |_| Err(Bp(None)), &mut |_| {});
        assert_eq!(out, Err(SubmitError::Rejected(Bp(None))));

        // The wait budget caps how long a client chases retry waves.
        let out: Result<(u32, u64), _> =
            submit_with_backpressure(0, 3, |w| Err::<u32, _>(Bp(Some(w + 2))), &mut |_| {});
        assert_eq!(
            out,
            Err(SubmitError::Exhausted { waves_waited: 4, last: Bp(Some(4)) })
        );
    }

    #[test]
    fn fatal_errors_do_not_retry() {
        let mut calls = 0;
        let out: Result<(), RetryError> = with_retry(
            &RetryPolicy::default(),
            || {
                calls += 1;
                Err(BinderError::BadParcel("wrong type"))
            },
            &mut |_| {},
        );
        assert_eq!(calls, 1);
        assert_eq!(out, Err(RetryError::Fatal(BinderError::BadParcel("wrong type"))));
    }
}
