//! # androne-sdk
//!
//! The AnDrone SDK (paper Section 5): the small API AnDrone apps use
//! to learn about AnDrone-specific events and interact with the
//! service. Mirrors the paper's Figure 7 methods and Figure 8
//! `WaypointListener` callbacks. The same functionality is exposed to
//! advanced users through a command-line utility ([`cli`]).

pub mod cli;
pub mod listener;
pub mod retry;
pub mod sdk;

pub use cli::run_command;
pub use listener::{RecordingListener, WaypointListener};
pub use retry::{
    get_service_with_retry, retry_with_backoff, submit_with_backpressure, transact_with_retry,
    Backpressure, RetryError, RetryFailure, RetryPolicy, SubmitError,
};
pub use sdk::AndroneSdk;
