//! The `WaypointListener` callback class (paper Figure 8).

use androne_vdc::WaypointSpec;

/// Callbacks an AnDrone app registers to follow its virtual drone's
/// flight. Default implementations are no-ops so apps override only
/// what they need.
pub trait WaypointListener {
    /// The drone is at the given waypoint; flight control and
    /// waypoint devices are live.
    fn waypoint_active(&mut self, _waypoint: WaypointSpec, _index: usize) {}

    /// Leaving the waypoint; flight control and waypoint devices are
    /// about to be removed.
    fn waypoint_inactive(&mut self, _index: usize) {}

    /// The energy allotment is running low.
    fn low_energy_warning(&mut self, _remaining_j: f64) {}

    /// The time allotment is running low.
    fn low_time_warning(&mut self, _remaining_s: f64) {}

    /// The geofence was breached; control is suspended until
    /// recovery completes.
    fn geofence_breached(&mut self) {}

    /// Continuous devices must be suspended (approaching another
    /// party's waypoint).
    fn suspend_continuous_devices(&mut self) {}

    /// Continuous devices may be used again.
    fn resume_continuous_devices(&mut self) {}

    /// The VDC watchdog revoked this virtual drone (stalled or
    /// repeatedly violating policy); the flight is over for this app.
    fn watchdog_revoked(&mut self) {}

    /// The QoS escalation ladder suspended this virtual drone (its
    /// Binder budget kept tripping); continuous devices are paused
    /// but the flight — and billing — continues.
    fn tenant_suspended(&mut self) {}

    /// The ladder suspension was lifted (the tenant went quiet and
    /// the hysteresis decay stepped it back down).
    fn tenant_resumed(&mut self) {}
}

/// A listener that records every callback, for tests and examples.
#[derive(Debug, Default)]
pub struct RecordingListener {
    /// Human-readable log of callbacks in delivery order.
    pub log: Vec<String>,
}

impl WaypointListener for RecordingListener {
    fn waypoint_active(&mut self, waypoint: WaypointSpec, index: usize) {
        self.log.push(format!(
            "waypointActive({index} @ {:.7},{:.7})",
            waypoint.latitude, waypoint.longitude
        ));
    }

    fn waypoint_inactive(&mut self, index: usize) {
        self.log.push(format!("waypointInactive({index})"));
    }

    fn low_energy_warning(&mut self, remaining_j: f64) {
        self.log.push(format!("lowEnergyWarning({remaining_j:.0})"));
    }

    fn low_time_warning(&mut self, remaining_s: f64) {
        self.log.push(format!("lowTimeWarning({remaining_s:.0})"));
    }

    fn geofence_breached(&mut self) {
        self.log.push("geofenceBreached()".into());
    }

    fn suspend_continuous_devices(&mut self) {
        self.log.push("suspendContinuousDevices()".into());
    }

    fn resume_continuous_devices(&mut self) {
        self.log.push("resumeContinuousDevices()".into());
    }

    fn watchdog_revoked(&mut self) {
        self.log.push("watchdogRevoked()".into());
    }

    fn tenant_suspended(&mut self) {
        self.log.push("tenantSuspended()".into());
    }

    fn tenant_resumed(&mut self) {
        self.log.push("tenantResumed()".into());
    }
}
