//! Geofencing.
//!
//! Each waypoint in a virtual drone definition carries a `max-radius`
//! defining a spherical volume around the waypoint coordinates (paper
//! Section 3); flight control handed to that virtual drone is
//! confined to the volume. Stock flight controllers respond to a
//! breach with a failsafe landing; AnDrone instead recovers and
//! continues the flight (Section 4.3) — that recovery sequence lives
//! in the MAVProxy layer, driven by this module's containment tests.

use androne_hal::GeoPoint;

/// A spherical geofence around a waypoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geofence {
    /// Center of the sphere.
    pub center: GeoPoint,
    /// Radius in meters.
    pub radius_m: f64,
}

impl Geofence {
    /// Creates a fence of `radius_m` around `center`.
    pub fn new(center: GeoPoint, radius_m: f64) -> Self {
        Geofence { center, radius_m }
    }

    /// Whether `pos` is inside the fence.
    pub fn contains(&self, pos: &GeoPoint) -> bool {
        self.center.distance_m(pos) <= self.radius_m
    }

    /// Distance from `pos` to the fence boundary (negative when
    /// inside).
    pub fn boundary_distance_m(&self, pos: &GeoPoint) -> f64 {
        self.center.distance_m(pos) - self.radius_m
    }

    /// A recovery point safely inside the fence for a vehicle at
    /// `pos`: the projection of `pos` toward the center, at 80% of
    /// the radius, clamped to a sane altitude band.
    pub fn recovery_point(&self, pos: &GeoPoint) -> GeoPoint {
        let d = self.center.distance_m(pos);
        if d < 1e-6 {
            return self.center;
        }
        let frac = (0.8 * self.radius_m) / d;
        // Interpolate linearly in the local tangent plane.
        let ned = pos.ned_from(&self.center);
        let mut p = self.center.offset_m(ned.x * frac, ned.y * frac, 0.0);
        p.altitude = (pos.altitude * frac + self.center.altitude * (1.0 - frac))
            .max(2.0);
        p
    }
}

impl androne_simkern::StateHash for Geofence {
    fn state_hash(&self, h: &mut androne_simkern::StateHasher) {
        androne_simkern::StateHash::state_hash(&self.center, h);
        h.write_f64(self.radius_m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fence() -> Geofence {
        Geofence::new(GeoPoint::new(43.6084298, -85.8110359, 15.0), 30.0)
    }

    #[test]
    fn center_is_inside() {
        let f = fence();
        assert!(f.contains(&f.center));
        assert!(f.boundary_distance_m(&f.center) < 0.0);
    }

    #[test]
    fn containment_is_three_dimensional() {
        let f = fence();
        let horizontally_in = f.center.offset_m(10.0, 0.0, 0.0);
        assert!(f.contains(&horizontally_in));
        // 10 m north but 40 m above: outside the sphere.
        let above = f.center.offset_m(10.0, 0.0, 40.0);
        assert!(!f.contains(&above));
    }

    #[test]
    fn boundary_distance_sign_flips_at_radius() {
        let f = fence();
        let inside = f.center.offset_m(20.0, 0.0, 0.0);
        let outside = f.center.offset_m(45.0, 0.0, 0.0);
        assert!(f.boundary_distance_m(&inside) < 0.0);
        assert!(f.boundary_distance_m(&outside) > 0.0);
    }

    #[test]
    fn recovery_point_is_well_inside() {
        let f = fence();
        let breach = f.center.offset_m(50.0, 20.0, 10.0);
        let rp = f.recovery_point(&breach);
        assert!(f.contains(&rp), "recovery point inside the fence");
        assert!(
            f.center.distance_m(&rp) <= 0.85 * f.radius_m,
            "with margin"
        );
        assert!(rp.altitude >= 2.0, "never commands into the ground");
    }

    #[test]
    fn recovery_from_center_is_center() {
        let f = fence();
        assert_eq!(f.recovery_point(&f.center), f.center);
    }
}
