//! The MAVProxy-style flight controller multiplexer.
//!
//! AnDrone "leverages and modifies MAVProxy ... to allow multiple
//! clients to connect to the flight controller" (Section 4.3). The
//! proxy owns the single real flight-controller connection and
//! fans out:
//!
//! - an **unrestricted** connection for the cloud flight planner and
//!   the service provider;
//! - a **VFC** connection per virtual drone, which filters commands
//!   (whitelist + waypoint gating + geofence) and virtualizes the
//!   telemetry view.
//!
//! The proxy also implements AnDrone's augmented geofence-breach
//! handling: notify the virtual drone, disable its commands, guide
//! the drone back inside the fence, loiter, then return control —
//! instead of the stock failsafe landing, so the multi-tenant flight
//! continues.

use std::collections::BTreeMap;
use std::rc::Rc;

use androne_hal::GeoPoint;
use androne_mavlink::{deg_to_e7, FlightMode, MavCmd, Message};
use androne_obs::{ObsHandle, Subsystem, TraceEvent};
use androne_simkern::{LinkModel, LinkState, StateHash, StateHasher};
use rand::rngs::SmallRng;

use crate::sitl::Sitl;
use crate::vfc::{Vfc, VfcDecision, VfcState};

/// Distance at which a VFC switches from Pending to the synthetic
/// takeoff animation, meters.
pub const APPROACH_DISTANCE_M: f64 = 60.0;

/// Thresholds of the link-loss failsafe ladder: hold position after
/// `loiter_after_s` without an uplink, give up and return to launch
/// after `rtl_after_s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFailsafeConfig {
    /// Seconds of continuous link loss before switching to Loiter.
    pub loiter_after_s: f64,
    /// Seconds of continuous link loss before commanding RTL.
    pub rtl_after_s: f64,
}

impl Default for LinkFailsafeConfig {
    fn default() -> Self {
        LinkFailsafeConfig {
            loiter_after_s: 2.0,
            rtl_after_s: 10.0,
        }
    }
}

/// Where the proxy stands on the link-loss ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFailsafePhase {
    /// Link healthy (or loss below the loiter threshold).
    Nominal,
    /// Holding position, waiting for the link to return.
    Loiter,
    /// Gave up: returning to launch. Latched — a link that returns
    /// mid-RTL does not cancel the recall.
    Rtl,
}

impl LinkFailsafePhase {
    fn tag(self) -> u8 {
        match self {
            LinkFailsafePhase::Nominal => 0,
            LinkFailsafePhase::Loiter => 1,
            LinkFailsafePhase::Rtl => 2,
        }
    }
}

/// A degraded command uplink: ground-side client commands traverse a
/// lossy link before reaching the proxy. Owns its own fault-local RNG
/// so a healthy flight draws nothing from it.
struct UplinkLoss {
    model: LinkModel,
    state: LinkState,
    rng: SmallRng,
}

#[derive(Debug, Clone, PartialEq)]
enum RecoveryPhase {
    /// Guiding the drone back toward a point inside the fence.
    GuidingBack { target: GeoPoint },
    /// Holding in loiter for a settling period.
    Loitering { steps_left: u32 },
}

#[derive(Debug, Clone)]
struct BreachRecovery {
    client: String,
    phase: RecoveryPhase,
}

struct ClientConn {
    vfc: Option<Vfc>,
    /// Pending messages. Shared references: one telemetry message
    /// fanned out to N identity-view clients is stored once, not N
    /// times.
    outbox: Vec<Rc<Message>>,
    /// Commands from this client forwarded to the controller.
    forwarded: u64,
    /// Commands from this client denied by its VFC.
    denied: u64,
}

impl ClientConn {
    fn new(vfc: Option<Vfc>) -> Self {
        ClientConn {
            vfc,
            outbox: Vec::new(),
            forwarded: 0,
            denied: 0,
        }
    }

    fn queue(&mut self, msg: Message) {
        self.outbox.push(Rc::new(msg));
    }
}

/// The multiplexing proxy in the flight container.
pub struct MavProxy {
    clients: BTreeMap<String, ClientConn>,
    recovery: Option<BreachRecovery>,
    /// Total client commands denied (diagnostics).
    pub commands_denied: u64,
    /// Total client commands forwarded.
    pub commands_forwarded: u64,
    /// Geofence breaches handled.
    pub breaches_handled: u64,
    /// Ground-side commands lost to link partition or burst loss.
    pub commands_dropped: u64,
    /// Whether the ground↔drone link is fully partitioned.
    link_partitioned: bool,
    /// Consecutive steps spent partitioned.
    link_down_steps: u64,
    link_cfg: LinkFailsafeConfig,
    link_phase: LinkFailsafePhase,
    /// Optional degraded uplink for ground-side client commands.
    uplink: Option<UplinkLoss>,
    /// Observability handle; detached (free) unless the owning drone
    /// attached one.
    obs: ObsHandle,
}

impl Default for MavProxy {
    fn default() -> Self {
        Self::new()
    }
}

impl MavProxy {
    /// Creates a proxy with no clients.
    pub fn new() -> Self {
        MavProxy {
            clients: BTreeMap::new(),
            recovery: None,
            commands_denied: 0,
            commands_forwarded: 0,
            breaches_handled: 0,
            commands_dropped: 0,
            link_partitioned: false,
            link_down_steps: 0,
            link_cfg: LinkFailsafeConfig::default(),
            link_phase: LinkFailsafePhase::Nominal,
            uplink: None,
            obs: ObsHandle::default(),
        }
    }

    /// Attaches the shared observability handle; command verdicts and
    /// failsafe edges are traced from then on.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// Adds an unrestricted connection (flight planner / provider).
    pub fn add_unrestricted_client(&mut self, name: impl Into<String>) {
        self.clients.insert(name.into(), ClientConn::new(None));
    }

    /// Adds a VFC connection for a virtual drone.
    pub fn add_vfc_client(&mut self, vfc: Vfc) {
        self.clients
            .insert(vfc.client.clone(), ClientConn::new(Some(vfc)));
    }

    /// Removes a client connection.
    pub fn remove_client(&mut self, name: &str) {
        self.clients.remove(name);
    }

    /// Borrow a client's VFC (diagnostics/tests).
    pub fn vfc(&self, name: &str) -> Option<&Vfc> {
        self.clients.get(name).and_then(|c| c.vfc.as_ref())
    }

    /// Mutably borrow a client's VFC (the VDC retargets the fence as
    /// the flight moves between a virtual drone's waypoints).
    pub fn vfc_mut(&mut self, name: &str) -> Option<&mut Vfc> {
        self.clients.get_mut(name).and_then(|c| c.vfc.as_mut())
    }

    /// Grants flight control to a client's VFC (its waypoint was
    /// reached and the VDC approved flight control).
    pub fn activate_vfc(&mut self, name: &str) {
        if let Some(conn) = self.clients.get_mut(name) {
            if let Some(vfc) = conn.vfc.as_mut() {
                vfc.activate();
            }
        }
    }

    /// Revokes flight control permanently for a client's VFC.
    pub fn finish_vfc(&mut self, name: &str, last_position: GeoPoint) {
        if let Some(conn) = self.clients.get_mut(name) {
            if let Some(vfc) = conn.vfc.as_mut() {
                vfc.finish(last_position);
            }
        }
    }

    /// Sends one message from a client toward the flight controller.
    /// Replies (acks, denials) are queued on the client's outbox.
    ///
    /// Unrestricted clients sit on the ground side of the cellular
    /// link: a partitioned or degraded uplink can eat their commands.
    /// VFC clients run in containers on the drone itself, so their
    /// commands never traverse the link.
    pub fn client_send(&mut self, name: &str, msg: Message, sitl: &mut Sitl) {
        let Some(conn) = self.clients.get_mut(name) else {
            return;
        };
        let verdict = match conn.vfc.as_mut() {
            None => {
                // Short-circuit: a partitioned link never samples the
                // uplink model, so the RNG stream matches a build
                // that checked the partition first.
                if self.link_partitioned
                    || self.uplink.as_mut().is_some_and(|up| {
                        up.model.sample_with(&mut up.state, &mut up.rng).is_none()
                    })
                {
                    self.commands_dropped += 1;
                    "dropped"
                } else {
                    // Unrestricted: straight through.
                    let replies = sitl.handle_message(&msg);
                    conn.outbox.extend(replies.into_iter().map(Rc::new));
                    self.commands_forwarded += 1;
                    conn.forwarded += 1;
                    "forwarded"
                }
            }
            Some(vfc) => match vfc.on_client_message(&msg) {
                VfcDecision::Forward(m) => {
                    let replies = sitl.handle_message(&m);
                    conn.outbox.extend(replies.into_iter().map(Rc::new));
                    self.commands_forwarded += 1;
                    conn.forwarded += 1;
                    "forwarded"
                }
                VfcDecision::Deny(reply) => {
                    conn.queue(reply);
                    self.commands_denied += 1;
                    conn.denied += 1;
                    "denied"
                }
            },
        };
        let counter = match verdict {
            "forwarded" => "mav.forwarded",
            "denied" => "mav.denied",
            _ => "mav.dropped",
        };
        self.obs.count(counter, 1);
        self.obs.emit(Subsystem::Mavlink, || TraceEvent::MavCommand {
            client: name.to_string(),
            verdict,
        });
    }

    /// Drains a client's pending messages (telemetry + replies) as
    /// owned values. Messages still shared with other outboxes are
    /// copied out; uniquely held ones are moved.
    pub fn client_recv(&mut self, name: &str) -> Vec<Message> {
        self.client_recv_shared(name)
            .into_iter()
            .map(|rc| Rc::try_unwrap(rc).unwrap_or_else(|rc| (*rc).clone()))
            .collect()
    }

    /// Zero-copy drain: the shared references themselves. The hot
    /// path for consumers that only inspect messages.
    pub fn client_recv_shared(&mut self, name: &str) -> Vec<Rc<Message>> {
        match self.clients.get_mut(name) {
            Some(conn) => std::mem::take(&mut conn.outbox),
            None => Vec::new(),
        }
    }

    /// Advances the vehicle one step and distributes telemetry,
    /// driving approach detection and geofence-breach recovery.
    pub fn step(&mut self, sitl: &mut Sitl) {
        // Wrap each step's telemetry once; fan-out below shares the
        // references instead of deep-cloning per client.
        let telemetry: Vec<Rc<Message>> = sitl.step().into_iter().map(Rc::new).collect();
        let pos = sitl.position();

        // Approach detection: pending VFCs whose waypoint the real
        // drone is nearing begin their synthetic takeoff.
        for conn in self.clients.values_mut() {
            if let Some(vfc) = conn.vfc.as_mut() {
                if vfc.state() == VfcState::Pending
                    && pos.distance_m(&vfc.geofence.center) < APPROACH_DISTANCE_M
                {
                    vfc.begin_approach();
                }
            }
        }

        // Geofence monitoring for the active VFC.
        self.check_geofence(&pos, sitl);
        self.drive_recovery(&pos, sitl);
        self.drive_link_failsafe(sitl);

        self.distribute_telemetry(&telemetry, &pos);
    }

    /// Advances the link-loss failsafe ladder one step: Nominal →
    /// Loiter after `loiter_after_s` of partition, Loiter → RTL after
    /// `rtl_after_s`. A link restored during Loiter hands control
    /// back (Guided); once RTL is commanded the recall is latched.
    /// Breach recovery outranks the ladder — escalation pauses while
    /// a recovery is steering the drone, though the clock keeps
    /// counting.
    fn drive_link_failsafe(&mut self, sitl: &mut Sitl) {
        if self.link_partitioned {
            self.link_down_steps += 1;
            if self.recovery.is_some() {
                return;
            }
            let loiter_steps = (self.link_cfg.loiter_after_s * 400.0) as u64;
            let rtl_steps = (self.link_cfg.rtl_after_s * 400.0) as u64;
            match self.link_phase {
                LinkFailsafePhase::Nominal if self.link_down_steps >= loiter_steps => {
                    sitl.handle_message(&Message::SetMode {
                        mode: FlightMode::Loiter,
                    });
                    self.link_phase = LinkFailsafePhase::Loiter;
                    self.obs.count("mav.failsafe.loiter", 1);
                    self.obs
                        .emit(Subsystem::Mavlink, || TraceEvent::LinkFailsafe {
                            phase: "loiter",
                        });
                }
                LinkFailsafePhase::Loiter if self.link_down_steps >= rtl_steps => {
                    sitl.handle_message(&Message::CommandLong {
                        command: MavCmd::NavReturnToLaunch,
                        params: [0.0; 7],
                    });
                    self.link_phase = LinkFailsafePhase::Rtl;
                    self.obs.count("mav.failsafe.rtl", 1);
                    self.obs
                        .emit(Subsystem::Mavlink, || TraceEvent::LinkFailsafe {
                            phase: "rtl",
                        });
                }
                _ => {}
            }
        } else {
            self.link_down_steps = 0;
            if self.link_phase == LinkFailsafePhase::Loiter && self.recovery.is_none() {
                sitl.handle_message(&Message::SetMode {
                    mode: FlightMode::Guided,
                });
                self.link_phase = LinkFailsafePhase::Nominal;
                self.obs.count("mav.failsafe.restored", 1);
                self.obs
                    .emit(Subsystem::Mavlink, || TraceEvent::LinkFailsafe {
                        phase: "restored",
                    });
            }
        }
    }

    /// Declares the ground link partitioned (or restored).
    pub fn set_link_partitioned(&mut self, down: bool) {
        self.link_partitioned = down;
    }

    /// Whether the ground link is currently partitioned.
    pub fn link_partitioned(&self) -> bool {
        self.link_partitioned
    }

    /// Replaces the link-loss failsafe thresholds.
    pub fn set_link_failsafe_config(&mut self, cfg: LinkFailsafeConfig) {
        self.link_cfg = cfg;
    }

    /// Current position on the link-loss ladder.
    pub fn link_failsafe_phase(&self) -> LinkFailsafePhase {
        self.link_phase
    }

    /// Whether the ladder has latched into RTL.
    pub fn link_failsafe_rtl_engaged(&self) -> bool {
        self.link_phase == LinkFailsafePhase::Rtl
    }

    /// Degrades the command uplink: ground-side client commands now
    /// traverse `model` (burst loss included) with a fault-local RNG
    /// seeded by `seed`.
    pub fn set_uplink_loss(&mut self, model: LinkModel, seed: u64) {
        self.uplink = Some(UplinkLoss {
            model,
            state: LinkState::default(),
            rng: androne_simkern::stream_rng(seed),
        });
    }

    /// Restores a healthy command uplink.
    pub fn clear_uplink_loss(&mut self) {
        self.uplink = None;
    }

    /// Commands this client has had forwarded and denied, if it
    /// exists. The per-VFC watchdog reads these to spot stalls.
    pub fn client_activity(&self, name: &str) -> Option<(u64, u64)> {
        self.clients.get(name).map(|c| (c.forwarded, c.denied))
    }

    /// Telemetry fan-out, transformed per client view. The identity
    /// check is hoisted per client per step: unrestricted clients and
    /// identity-view VFCs share the step's Rc'd messages, and only
    /// genuinely rewritten views allocate.
    ///
    /// Public so the perf harness and determinism tests can drive the
    /// distribution stage with a fixed telemetry batch.
    pub fn distribute_telemetry(&mut self, telemetry: &[Rc<Message>], pos: &GeoPoint) {
        for conn in self.clients.values_mut() {
            match conn.vfc.as_mut() {
                None => conn.outbox.extend(telemetry.iter().map(Rc::clone)),
                Some(vfc) if vfc.telemetry_is_identity() => {
                    conn.outbox.extend(telemetry.iter().map(Rc::clone));
                }
                Some(vfc) => {
                    conn.outbox.extend(
                        telemetry
                            .iter()
                            .map(|msg| vfc.transform_telemetry_shared(msg, pos)),
                    );
                }
            }
        }
    }

    fn check_geofence(&mut self, pos: &GeoPoint, sitl: &mut Sitl) {
        if self.recovery.is_some() {
            return;
        }
        let mut breach: Option<(String, GeoPoint)> = None;
        for (name, conn) in &mut self.clients {
            if let Some(vfc) = conn.vfc.as_mut() {
                if vfc.state() == VfcState::Active && !vfc.geofence.contains(pos) {
                    // Step 1: inform the virtual drone; step 2:
                    // disable its commands.
                    let notice = vfc.begin_breach_recovery();
                    conn.outbox.push(Rc::new(notice));
                    breach = Some((name.clone(), vfc.geofence.recovery_point(pos)));
                    break;
                }
            }
        }
        if let Some((client, target)) = breach {
            self.breaches_handled += 1;
            // Step 3: guide the drone back inside the geofence.
            sitl.handle_message(&Message::SetMode {
                mode: FlightMode::Guided,
            });
            sitl.handle_message(&Message::SetPositionTargetGlobalInt {
                lat: deg_to_e7(target.latitude),
                lon: deg_to_e7(target.longitude),
                alt: target.altitude as f32,
                speed: 5.0,
            });
            self.recovery = Some(BreachRecovery {
                client,
                phase: RecoveryPhase::GuidingBack { target },
            });
        }
    }

    fn drive_recovery(&mut self, pos: &GeoPoint, sitl: &mut Sitl) {
        let Some(rec) = self.recovery.as_mut() else {
            return;
        };
        match &mut rec.phase {
            RecoveryPhase::GuidingBack { target } => {
                if pos.distance_m(target) < 3.0 {
                    // Step 4: switch to loiter to hold position.
                    sitl.handle_message(&Message::SetMode {
                        mode: FlightMode::Loiter,
                    });
                    rec.phase = RecoveryPhase::Loitering {
                        steps_left: 400, // One second at 400 Hz.
                    };
                }
            }
            RecoveryPhase::Loitering { steps_left } => {
                if *steps_left > 0 {
                    *steps_left -= 1;
                    return;
                }
                // Step 5: return control to the virtual drone.
                let client = rec.client.clone();
                self.recovery = None;
                if let Some(conn) = self.clients.get_mut(&client) {
                    if let Some(vfc) = conn.vfc.as_mut() {
                        let done = vfc.end_breach_recovery();
                        conn.queue(done);
                    }
                }
                // The virtual drone regains guided control.
                sitl.handle_message(&Message::SetMode {
                    mode: FlightMode::Guided,
                });
            }
        }
    }

    /// Whether a breach recovery is in progress.
    pub fn recovering(&self) -> bool {
        self.recovery.is_some()
    }

    /// Per-client state digests (VFC + outbox + counters), for the
    /// sanitizer's verbose dump: a divergence in one client's outbox
    /// names that client instead of the whole proxy.
    pub fn client_hashes(&self) -> Vec<(String, u64)> {
        self.clients
            .iter()
            .map(|(name, conn)| {
                let mut h = StateHasher::new();
                hash_conn(conn, &mut h);
                (name.clone(), h.finish())
            })
            .collect()
    }
}

fn hash_conn(conn: &ClientConn, h: &mut StateHasher) {
    match &conn.vfc {
        Some(vfc) => {
            h.write_u8(1);
            vfc.state_hash(h);
        }
        None => h.write_u8(0),
    }
    // Queued messages hash by their wire form: msg id plus encoded
    // payload is a stable, total serialization.
    h.write_usize(conn.outbox.len());
    for msg in &conn.outbox {
        h.write_u8(msg.msg_id());
        h.write_bytes(&msg.encode_payload());
    }
    h.write_u64(conn.forwarded);
    h.write_u64(conn.denied);
}

impl StateHash for MavProxy {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_usize(self.clients.len());
        for (name, conn) in &self.clients {
            h.write_str(name);
            hash_conn(conn, h);
        }
        match &self.recovery {
            Some(r) => {
                h.write_u8(1);
                h.write_str(&r.client);
                match r.phase {
                    RecoveryPhase::GuidingBack { target } => {
                        h.write_u8(0);
                        target.state_hash(h);
                    }
                    RecoveryPhase::Loitering { steps_left } => {
                        h.write_u8(1);
                        h.write_u32(steps_left);
                    }
                }
            }
            None => h.write_u8(0),
        }
        h.write_u64(self.commands_denied);
        h.write_u64(self.commands_forwarded);
        h.write_u64(self.breaches_handled);
        h.write_u64(self.commands_dropped);
        h.write_bool(self.link_partitioned);
        h.write_u64(self.link_down_steps);
        h.write_u8(self.link_phase.tag());
        // The uplink's fault-local RNG is not hashed (the vendored
        // SmallRng exposes no state); its draws surface through
        // commands_dropped and the outboxes within one command.
        match &self.uplink {
            Some(up) => {
                h.write_u8(1);
                up.state.state_hash(h);
            }
            None => h.write_u8(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geofence::Geofence;
    use crate::whitelist::CommandWhitelist;
    use androne_mavlink::{MavCmd, MavResult};
    use androne_simkern::SimDuration;

    const HOME: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

    fn flying_sitl(seed: u64) -> Sitl {
        let mut sitl = Sitl::new(HOME, seed);
        assert!(sitl.arm_and_takeoff(15.0, SimDuration::from_secs(30)));
        sitl
    }

    fn run(proxy: &mut MavProxy, sitl: &mut Sitl, secs: f64) {
        for _ in 0..(secs * 400.0) as u64 {
            proxy.step(sitl);
        }
    }

    #[test]
    fn unrestricted_client_commands_pass_through() {
        let mut sitl = Sitl::new(HOME, 1);
        let mut proxy = MavProxy::new();
        proxy.add_unrestricted_client("planner");
        proxy.client_send(
            "planner",
            Message::SetMode {
                mode: FlightMode::Guided,
            },
            &mut sitl,
        );
        proxy.client_send(
            "planner",
            Message::CommandLong {
                command: MavCmd::ComponentArmDisarm,
                params: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            },
            &mut sitl,
        );
        assert!(sitl.fc.armed());
        let replies = proxy.client_recv("planner");
        assert!(replies.iter().any(|m| matches!(
            m,
            Message::CommandAck {
                result: MavResult::Accepted,
                ..
            }
        )));
    }

    #[test]
    fn pending_vfc_client_sees_synthetic_grounded_drone() {
        let mut sitl = flying_sitl(2);
        let mut proxy = MavProxy::new();
        let waypoint = HOME.offset_m(500.0, 0.0, 15.0); // Far away.
        proxy.add_vfc_client(Vfc::new(
            "vd1",
            CommandWhitelist::standard(),
            Geofence::new(waypoint, 30.0),
            false,
        ));
        run(&mut proxy, &mut sitl, 1.2);
        let msgs = proxy.client_recv("vd1");
        let positions: Vec<_> = msgs
            .iter()
            .filter_map(|m| match m {
                Message::GlobalPositionInt {
                    lat, relative_alt, ..
                } => Some((*lat, *relative_alt)),
                _ => None,
            })
            .collect();
        assert!(!positions.is_empty());
        for (lat, alt) in positions {
            assert_eq!(lat, deg_to_e7(waypoint.latitude), "shown at waypoint");
            assert_eq!(alt, 0, "shown grounded");
        }
    }

    #[test]
    fn vfc_activates_and_flies_within_fence() {
        let mut sitl = flying_sitl(3);
        let mut proxy = MavProxy::new();
        let waypoint = sitl.position();
        proxy.add_vfc_client(Vfc::new(
            "vd1",
            CommandWhitelist::guided_only(),
            Geofence::new(waypoint, 40.0),
            false,
        ));
        proxy.activate_vfc("vd1");
        let target = waypoint.offset_m(20.0, 0.0, 0.0);
        proxy.client_send(
            "vd1",
            Message::SetPositionTargetGlobalInt {
                lat: deg_to_e7(target.latitude),
                lon: deg_to_e7(target.longitude),
                alt: target.altitude as f32,
                speed: 5.0,
            },
            &mut sitl,
        );
        run(&mut proxy, &mut sitl, 20.0);
        assert!(
            sitl.position().distance_m(&target) < 3.0,
            "reached the in-fence target"
        );
        assert_eq!(proxy.commands_forwarded, 1);
    }

    #[test]
    fn breach_is_recovered_and_control_returned() {
        let mut sitl = flying_sitl(4);
        let mut proxy = MavProxy::new();
        let waypoint = sitl.position();
        let fence = Geofence::new(waypoint, 25.0);
        proxy.add_vfc_client(Vfc::new(
            "vd1",
            CommandWhitelist::full(),
            fence,
            false,
        ));
        proxy.activate_vfc("vd1");
        // Use full-template mode access to drift out: command RTL...
        // actually force a breach by commanding Auto mission outside
        // via the unrestricted path (simulating e.g. wind): here we
        // directly push the drone out with a planner-side target.
        proxy.add_unrestricted_client("planner");
        let outside = waypoint.offset_m(60.0, 0.0, 0.0);
        proxy.client_send(
            "planner",
            Message::SetPositionTargetGlobalInt {
                lat: deg_to_e7(outside.latitude),
                lon: deg_to_e7(outside.longitude),
                alt: 15.0,
                speed: 5.0,
            },
            &mut sitl,
        );
        let mut texts: Vec<String> = Vec::new();
        for _ in 0..35 {
            run(&mut proxy, &mut sitl, 1.0);
            texts.extend(proxy.client_recv("vd1").into_iter().filter_map(|m| {
                match m {
                    Message::StatusText { text, .. } => Some(text),
                    _ => None,
                }
            }));
        }
        assert_eq!(proxy.breaches_handled, 1, "breach detected");
        assert!(
            texts.iter().any(|t| t.contains("geofence breach")),
            "{texts:?}"
        );
        assert!(
            texts.iter().any(|t| t.contains("control returned")),
            "control returned after recovery: {texts:?}"
        );
        assert!(fence.contains(&sitl.position()), "back inside the fence");
        assert!(!proxy.recovering());
    }

    /// Shoves the simulated vehicle sideways (a position-jump fault:
    /// gust slam or collision), visible to the proxy next step.
    fn jump_position(sitl: &mut Sitl, north: f64, east: f64) {
        sitl.physics.displace_m(north, east);
    }

    #[test]
    fn recovery_reengages_after_position_jumps() {
        let mut sitl = flying_sitl(6);
        let mut proxy = MavProxy::new();
        let waypoint = sitl.position();
        let fence = Geofence::new(waypoint, 25.0);
        proxy.add_vfc_client(Vfc::new("vd1", CommandWhitelist::full(), fence, false));
        proxy.activate_vfc("vd1");

        // First breach: jump the vehicle outside the fence.
        jump_position(&mut sitl, 80.0, 0.0);
        run(&mut proxy, &mut sitl, 0.01);
        assert_eq!(proxy.breaches_handled, 1);
        assert!(proxy.recovering());

        // Mid-recovery, a second jump relocates the vehicle again —
        // recovery must keep guiding from the new position, not
        // wedge on the stale one.
        run(&mut proxy, &mut sitl, 2.0);
        jump_position(&mut sitl, 0.0, 120.0);
        for _ in 0..90 {
            run(&mut proxy, &mut sitl, 1.0);
            if !proxy.recovering() {
                break;
            }
        }
        assert!(!proxy.recovering(), "first recovery completed");
        assert!(fence.contains(&sitl.position()), "back inside the fence");

        // A later jump re-engages a fresh recovery rather than being
        // ignored.
        jump_position(&mut sitl, -90.0, 0.0);
        run(&mut proxy, &mut sitl, 0.01);
        assert_eq!(proxy.breaches_handled, 2, "breach handling re-engaged");
        for _ in 0..90 {
            run(&mut proxy, &mut sitl, 1.0);
            if !proxy.recovering() {
                break;
            }
        }
        assert!(!proxy.recovering());
        assert!(fence.contains(&sitl.position()));
    }

    #[test]
    fn link_loss_mid_recovery_waits_then_escalates_and_restores() {
        let mut sitl = flying_sitl(7);
        let mut proxy = MavProxy::new();
        let waypoint = sitl.position();
        let fence = Geofence::new(waypoint, 25.0);
        proxy.add_vfc_client(Vfc::new("vd1", CommandWhitelist::full(), fence, false));
        proxy.activate_vfc("vd1");
        // Recovery takes longer than the default RTL threshold; widen
        // it so the test can observe the Loiter rung on its own.
        proxy.set_link_failsafe_config(LinkFailsafeConfig {
            loiter_after_s: 2.0,
            rtl_after_s: 60.0,
        });

        // Breach, then lose the link while recovery is steering.
        jump_position(&mut sitl, 80.0, 0.0);
        run(&mut proxy, &mut sitl, 0.01);
        assert!(proxy.recovering());
        proxy.set_link_partitioned(true);

        // The ladder yields to the in-progress recovery: no Loiter
        // takeover while the breach is being flown out.
        for _ in 0..90 {
            run(&mut proxy, &mut sitl, 1.0);
            if !proxy.recovering() {
                break;
            }
            assert_eq!(
                proxy.link_failsafe_phase(),
                LinkFailsafePhase::Nominal,
                "ladder paused during breach recovery"
            );
        }
        assert!(!proxy.recovering(), "recovery completed despite link loss");
        assert!(fence.contains(&sitl.position()));

        // With recovery done and the link still dark, escalation
        // resumes (the down-clock kept counting, so Loiter is due).
        run(&mut proxy, &mut sitl, 1.0);
        assert_eq!(proxy.link_failsafe_phase(), LinkFailsafePhase::Loiter);

        // Link restored before RTL: control returns to Guided.
        proxy.set_link_partitioned(false);
        run(&mut proxy, &mut sitl, 0.01);
        assert_eq!(proxy.link_failsafe_phase(), LinkFailsafePhase::Nominal);
        assert_eq!(sitl.fc.mode(), FlightMode::Guided);
    }

    #[test]
    fn link_loss_ladder_escalates_to_rtl_and_latches() {
        let mut sitl = flying_sitl(8);
        let mut proxy = MavProxy::new();
        proxy.add_unrestricted_client("planner");
        proxy.set_link_partitioned(true);
        run(&mut proxy, &mut sitl, 2.5);
        assert_eq!(proxy.link_failsafe_phase(), LinkFailsafePhase::Loiter);
        run(&mut proxy, &mut sitl, 8.0);
        assert_eq!(proxy.link_failsafe_phase(), LinkFailsafePhase::Rtl);
        // Commands from ground-side clients were dropped throughout.
        proxy.client_send(
            "planner",
            Message::SetMode {
                mode: FlightMode::Guided,
            },
            &mut sitl,
        );
        assert_eq!(proxy.commands_dropped, 1);
        // A returning link does not cancel the recall.
        proxy.set_link_partitioned(false);
        run(&mut proxy, &mut sitl, 1.0);
        assert_eq!(proxy.link_failsafe_phase(), LinkFailsafePhase::Rtl);
        assert!(proxy.link_failsafe_rtl_engaged());
    }

    #[test]
    fn finished_vfc_stays_denied_while_flight_continues() {
        let mut sitl = flying_sitl(5);
        let mut proxy = MavProxy::new();
        let waypoint = sitl.position();
        proxy.add_vfc_client(Vfc::new(
            "vd1",
            CommandWhitelist::standard(),
            Geofence::new(waypoint, 30.0),
            false,
        ));
        proxy.activate_vfc("vd1");
        proxy.finish_vfc("vd1", waypoint);
        proxy.client_send(
            "vd1",
            Message::CommandLong {
                command: MavCmd::NavTakeoff,
                params: [0.0; 7],
            },
            &mut sitl,
        );
        assert_eq!(proxy.commands_denied, 1);
        // Meanwhile the planner still flies the drone onward.
        proxy.add_unrestricted_client("planner");
        let next = waypoint.offset_m(100.0, 0.0, 0.0);
        proxy.client_send(
            "planner",
            Message::SetPositionTargetGlobalInt {
                lat: deg_to_e7(next.latitude),
                lon: deg_to_e7(next.longitude),
                alt: 15.0,
                speed: 8.0,
            },
            &mut sitl,
        );
        run(&mut proxy, &mut sitl, 30.0);
        assert!(sitl.position().distance_m(&next) < 4.0);
    }
}
