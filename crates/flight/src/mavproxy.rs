//! The MAVProxy-style flight controller multiplexer.
//!
//! AnDrone "leverages and modifies MAVProxy ... to allow multiple
//! clients to connect to the flight controller" (Section 4.3). The
//! proxy owns the single real flight-controller connection and
//! fans out:
//!
//! - an **unrestricted** connection for the cloud flight planner and
//!   the service provider;
//! - a **VFC** connection per virtual drone, which filters commands
//!   (whitelist + waypoint gating + geofence) and virtualizes the
//!   telemetry view.
//!
//! The proxy also implements AnDrone's augmented geofence-breach
//! handling: notify the virtual drone, disable its commands, guide
//! the drone back inside the fence, loiter, then return control —
//! instead of the stock failsafe landing, so the multi-tenant flight
//! continues.

use std::collections::BTreeMap;
use std::rc::Rc;

use androne_hal::GeoPoint;
use androne_mavlink::{deg_to_e7, FlightMode, Message};
use androne_simkern::{StateHash, StateHasher};

use crate::sitl::Sitl;
use crate::vfc::{Vfc, VfcDecision, VfcState};

/// Distance at which a VFC switches from Pending to the synthetic
/// takeoff animation, meters.
pub const APPROACH_DISTANCE_M: f64 = 60.0;

#[derive(Debug, Clone, PartialEq)]
enum RecoveryPhase {
    /// Guiding the drone back toward a point inside the fence.
    GuidingBack { target: GeoPoint },
    /// Holding in loiter for a settling period.
    Loitering { steps_left: u32 },
}

#[derive(Debug, Clone)]
struct BreachRecovery {
    client: String,
    phase: RecoveryPhase,
}

struct ClientConn {
    vfc: Option<Vfc>,
    /// Pending messages. Shared references: one telemetry message
    /// fanned out to N identity-view clients is stored once, not N
    /// times.
    outbox: Vec<Rc<Message>>,
}

impl ClientConn {
    fn queue(&mut self, msg: Message) {
        self.outbox.push(Rc::new(msg));
    }
}

/// The multiplexing proxy in the flight container.
pub struct MavProxy {
    clients: BTreeMap<String, ClientConn>,
    recovery: Option<BreachRecovery>,
    /// Total client commands denied (diagnostics).
    pub commands_denied: u64,
    /// Total client commands forwarded.
    pub commands_forwarded: u64,
    /// Geofence breaches handled.
    pub breaches_handled: u64,
}

impl Default for MavProxy {
    fn default() -> Self {
        Self::new()
    }
}

impl MavProxy {
    /// Creates a proxy with no clients.
    pub fn new() -> Self {
        MavProxy {
            clients: BTreeMap::new(),
            recovery: None,
            commands_denied: 0,
            commands_forwarded: 0,
            breaches_handled: 0,
        }
    }

    /// Adds an unrestricted connection (flight planner / provider).
    pub fn add_unrestricted_client(&mut self, name: impl Into<String>) {
        self.clients.insert(
            name.into(),
            ClientConn {
                vfc: None,
                outbox: Vec::new(),
            },
        );
    }

    /// Adds a VFC connection for a virtual drone.
    pub fn add_vfc_client(&mut self, vfc: Vfc) {
        self.clients.insert(
            vfc.client.clone(),
            ClientConn {
                vfc: Some(vfc),
                outbox: Vec::new(),
            },
        );
    }

    /// Removes a client connection.
    pub fn remove_client(&mut self, name: &str) {
        self.clients.remove(name);
    }

    /// Borrow a client's VFC (diagnostics/tests).
    pub fn vfc(&self, name: &str) -> Option<&Vfc> {
        self.clients.get(name).and_then(|c| c.vfc.as_ref())
    }

    /// Mutably borrow a client's VFC (the VDC retargets the fence as
    /// the flight moves between a virtual drone's waypoints).
    pub fn vfc_mut(&mut self, name: &str) -> Option<&mut Vfc> {
        self.clients.get_mut(name).and_then(|c| c.vfc.as_mut())
    }

    /// Grants flight control to a client's VFC (its waypoint was
    /// reached and the VDC approved flight control).
    pub fn activate_vfc(&mut self, name: &str) {
        if let Some(conn) = self.clients.get_mut(name) {
            if let Some(vfc) = conn.vfc.as_mut() {
                vfc.activate();
            }
        }
    }

    /// Revokes flight control permanently for a client's VFC.
    pub fn finish_vfc(&mut self, name: &str, last_position: GeoPoint) {
        if let Some(conn) = self.clients.get_mut(name) {
            if let Some(vfc) = conn.vfc.as_mut() {
                vfc.finish(last_position);
            }
        }
    }

    /// Sends one message from a client toward the flight controller.
    /// Replies (acks, denials) are queued on the client's outbox.
    pub fn client_send(&mut self, name: &str, msg: Message, sitl: &mut Sitl) {
        let Some(conn) = self.clients.get_mut(name) else {
            return;
        };
        match conn.vfc.as_mut() {
            None => {
                // Unrestricted: straight through.
                let replies = sitl.handle_message(&msg);
                conn.outbox.extend(replies.into_iter().map(Rc::new));
                self.commands_forwarded += 1;
            }
            Some(vfc) => match vfc.on_client_message(&msg) {
                VfcDecision::Forward(m) => {
                    let replies = sitl.handle_message(&m);
                    conn.outbox.extend(replies.into_iter().map(Rc::new));
                    self.commands_forwarded += 1;
                }
                VfcDecision::Deny(reply) => {
                    conn.queue(reply);
                    self.commands_denied += 1;
                }
            },
        }
    }

    /// Drains a client's pending messages (telemetry + replies) as
    /// owned values. Messages still shared with other outboxes are
    /// copied out; uniquely held ones are moved.
    pub fn client_recv(&mut self, name: &str) -> Vec<Message> {
        self.client_recv_shared(name)
            .into_iter()
            .map(|rc| Rc::try_unwrap(rc).unwrap_or_else(|rc| (*rc).clone()))
            .collect()
    }

    /// Zero-copy drain: the shared references themselves. The hot
    /// path for consumers that only inspect messages.
    pub fn client_recv_shared(&mut self, name: &str) -> Vec<Rc<Message>> {
        match self.clients.get_mut(name) {
            Some(conn) => std::mem::take(&mut conn.outbox),
            None => Vec::new(),
        }
    }

    /// Advances the vehicle one step and distributes telemetry,
    /// driving approach detection and geofence-breach recovery.
    pub fn step(&mut self, sitl: &mut Sitl) {
        // Wrap each step's telemetry once; fan-out below shares the
        // references instead of deep-cloning per client.
        let telemetry: Vec<Rc<Message>> = sitl.step().into_iter().map(Rc::new).collect();
        let pos = sitl.position();

        // Approach detection: pending VFCs whose waypoint the real
        // drone is nearing begin their synthetic takeoff.
        for conn in self.clients.values_mut() {
            if let Some(vfc) = conn.vfc.as_mut() {
                if vfc.state() == VfcState::Pending
                    && pos.distance_m(&vfc.geofence.center) < APPROACH_DISTANCE_M
                {
                    vfc.begin_approach();
                }
            }
        }

        // Geofence monitoring for the active VFC.
        self.check_geofence(&pos, sitl);
        self.drive_recovery(&pos, sitl);

        self.distribute_telemetry(&telemetry, &pos);
    }

    /// Telemetry fan-out, transformed per client view. The identity
    /// check is hoisted per client per step: unrestricted clients and
    /// identity-view VFCs share the step's Rc'd messages, and only
    /// genuinely rewritten views allocate.
    ///
    /// Public so the perf harness and determinism tests can drive the
    /// distribution stage with a fixed telemetry batch.
    pub fn distribute_telemetry(&mut self, telemetry: &[Rc<Message>], pos: &GeoPoint) {
        for conn in self.clients.values_mut() {
            match conn.vfc.as_mut() {
                None => conn.outbox.extend(telemetry.iter().map(Rc::clone)),
                Some(vfc) if vfc.telemetry_is_identity() => {
                    conn.outbox.extend(telemetry.iter().map(Rc::clone));
                }
                Some(vfc) => {
                    conn.outbox.extend(
                        telemetry
                            .iter()
                            .map(|msg| vfc.transform_telemetry_shared(msg, pos)),
                    );
                }
            }
        }
    }

    fn check_geofence(&mut self, pos: &GeoPoint, sitl: &mut Sitl) {
        if self.recovery.is_some() {
            return;
        }
        let mut breach: Option<(String, GeoPoint)> = None;
        for (name, conn) in &mut self.clients {
            if let Some(vfc) = conn.vfc.as_mut() {
                if vfc.state() == VfcState::Active && !vfc.geofence.contains(pos) {
                    // Step 1: inform the virtual drone; step 2:
                    // disable its commands.
                    let notice = vfc.begin_breach_recovery();
                    conn.outbox.push(Rc::new(notice));
                    breach = Some((name.clone(), vfc.geofence.recovery_point(pos)));
                    break;
                }
            }
        }
        if let Some((client, target)) = breach {
            self.breaches_handled += 1;
            // Step 3: guide the drone back inside the geofence.
            sitl.handle_message(&Message::SetMode {
                mode: FlightMode::Guided,
            });
            sitl.handle_message(&Message::SetPositionTargetGlobalInt {
                lat: deg_to_e7(target.latitude),
                lon: deg_to_e7(target.longitude),
                alt: target.altitude as f32,
                speed: 5.0,
            });
            self.recovery = Some(BreachRecovery {
                client,
                phase: RecoveryPhase::GuidingBack { target },
            });
        }
    }

    fn drive_recovery(&mut self, pos: &GeoPoint, sitl: &mut Sitl) {
        let Some(rec) = self.recovery.as_mut() else {
            return;
        };
        match &mut rec.phase {
            RecoveryPhase::GuidingBack { target } => {
                if pos.distance_m(target) < 3.0 {
                    // Step 4: switch to loiter to hold position.
                    sitl.handle_message(&Message::SetMode {
                        mode: FlightMode::Loiter,
                    });
                    rec.phase = RecoveryPhase::Loitering {
                        steps_left: 400, // One second at 400 Hz.
                    };
                }
            }
            RecoveryPhase::Loitering { steps_left } => {
                if *steps_left > 0 {
                    *steps_left -= 1;
                    return;
                }
                // Step 5: return control to the virtual drone.
                let client = rec.client.clone();
                self.recovery = None;
                if let Some(conn) = self.clients.get_mut(&client) {
                    if let Some(vfc) = conn.vfc.as_mut() {
                        let done = vfc.end_breach_recovery();
                        conn.queue(done);
                    }
                }
                // The virtual drone regains guided control.
                sitl.handle_message(&Message::SetMode {
                    mode: FlightMode::Guided,
                });
            }
        }
    }

    /// Whether a breach recovery is in progress.
    pub fn recovering(&self) -> bool {
        self.recovery.is_some()
    }
}

impl StateHash for MavProxy {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_usize(self.clients.len());
        for (name, conn) in &self.clients {
            h.write_str(name);
            match &conn.vfc {
                Some(vfc) => {
                    h.write_u8(1);
                    vfc.state_hash(h);
                }
                None => h.write_u8(0),
            }
            // Queued messages hash by their wire form: msg id plus
            // encoded payload is a stable, total serialization.
            h.write_usize(conn.outbox.len());
            for msg in &conn.outbox {
                h.write_u8(msg.msg_id());
                h.write_bytes(&msg.encode_payload());
            }
        }
        match &self.recovery {
            Some(r) => {
                h.write_u8(1);
                h.write_str(&r.client);
                match r.phase {
                    RecoveryPhase::GuidingBack { target } => {
                        h.write_u8(0);
                        target.state_hash(h);
                    }
                    RecoveryPhase::Loitering { steps_left } => {
                        h.write_u8(1);
                        h.write_u32(steps_left);
                    }
                }
            }
            None => h.write_u8(0),
        }
        h.write_u64(self.commands_denied);
        h.write_u64(self.commands_forwarded);
        h.write_u64(self.breaches_handled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geofence::Geofence;
    use crate::whitelist::CommandWhitelist;
    use androne_mavlink::{MavCmd, MavResult};
    use androne_simkern::SimDuration;

    const HOME: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

    fn flying_sitl(seed: u64) -> Sitl {
        let mut sitl = Sitl::new(HOME, seed);
        assert!(sitl.arm_and_takeoff(15.0, SimDuration::from_secs(30)));
        sitl
    }

    fn run(proxy: &mut MavProxy, sitl: &mut Sitl, secs: f64) {
        for _ in 0..(secs * 400.0) as u64 {
            proxy.step(sitl);
        }
    }

    #[test]
    fn unrestricted_client_commands_pass_through() {
        let mut sitl = Sitl::new(HOME, 1);
        let mut proxy = MavProxy::new();
        proxy.add_unrestricted_client("planner");
        proxy.client_send(
            "planner",
            Message::SetMode {
                mode: FlightMode::Guided,
            },
            &mut sitl,
        );
        proxy.client_send(
            "planner",
            Message::CommandLong {
                command: MavCmd::ComponentArmDisarm,
                params: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            },
            &mut sitl,
        );
        assert!(sitl.fc.armed());
        let replies = proxy.client_recv("planner");
        assert!(replies.iter().any(|m| matches!(
            m,
            Message::CommandAck {
                result: MavResult::Accepted,
                ..
            }
        )));
    }

    #[test]
    fn pending_vfc_client_sees_synthetic_grounded_drone() {
        let mut sitl = flying_sitl(2);
        let mut proxy = MavProxy::new();
        let waypoint = HOME.offset_m(500.0, 0.0, 15.0); // Far away.
        proxy.add_vfc_client(Vfc::new(
            "vd1",
            CommandWhitelist::standard(),
            Geofence::new(waypoint, 30.0),
            false,
        ));
        run(&mut proxy, &mut sitl, 1.2);
        let msgs = proxy.client_recv("vd1");
        let positions: Vec<_> = msgs
            .iter()
            .filter_map(|m| match m {
                Message::GlobalPositionInt {
                    lat, relative_alt, ..
                } => Some((*lat, *relative_alt)),
                _ => None,
            })
            .collect();
        assert!(!positions.is_empty());
        for (lat, alt) in positions {
            assert_eq!(lat, deg_to_e7(waypoint.latitude), "shown at waypoint");
            assert_eq!(alt, 0, "shown grounded");
        }
    }

    #[test]
    fn vfc_activates_and_flies_within_fence() {
        let mut sitl = flying_sitl(3);
        let mut proxy = MavProxy::new();
        let waypoint = sitl.position();
        proxy.add_vfc_client(Vfc::new(
            "vd1",
            CommandWhitelist::guided_only(),
            Geofence::new(waypoint, 40.0),
            false,
        ));
        proxy.activate_vfc("vd1");
        let target = waypoint.offset_m(20.0, 0.0, 0.0);
        proxy.client_send(
            "vd1",
            Message::SetPositionTargetGlobalInt {
                lat: deg_to_e7(target.latitude),
                lon: deg_to_e7(target.longitude),
                alt: target.altitude as f32,
                speed: 5.0,
            },
            &mut sitl,
        );
        run(&mut proxy, &mut sitl, 20.0);
        assert!(
            sitl.position().distance_m(&target) < 3.0,
            "reached the in-fence target"
        );
        assert_eq!(proxy.commands_forwarded, 1);
    }

    #[test]
    fn breach_is_recovered_and_control_returned() {
        let mut sitl = flying_sitl(4);
        let mut proxy = MavProxy::new();
        let waypoint = sitl.position();
        let fence = Geofence::new(waypoint, 25.0);
        proxy.add_vfc_client(Vfc::new(
            "vd1",
            CommandWhitelist::full(),
            fence,
            false,
        ));
        proxy.activate_vfc("vd1");
        // Use full-template mode access to drift out: command RTL...
        // actually force a breach by commanding Auto mission outside
        // via the unrestricted path (simulating e.g. wind): here we
        // directly push the drone out with a planner-side target.
        proxy.add_unrestricted_client("planner");
        let outside = waypoint.offset_m(60.0, 0.0, 0.0);
        proxy.client_send(
            "planner",
            Message::SetPositionTargetGlobalInt {
                lat: deg_to_e7(outside.latitude),
                lon: deg_to_e7(outside.longitude),
                alt: 15.0,
                speed: 5.0,
            },
            &mut sitl,
        );
        let mut texts: Vec<String> = Vec::new();
        for _ in 0..35 {
            run(&mut proxy, &mut sitl, 1.0);
            texts.extend(proxy.client_recv("vd1").into_iter().filter_map(|m| {
                match m {
                    Message::StatusText { text, .. } => Some(text),
                    _ => None,
                }
            }));
        }
        assert_eq!(proxy.breaches_handled, 1, "breach detected");
        assert!(
            texts.iter().any(|t| t.contains("geofence breach")),
            "{texts:?}"
        );
        assert!(
            texts.iter().any(|t| t.contains("control returned")),
            "control returned after recovery: {texts:?}"
        );
        assert!(fence.contains(&sitl.position()), "back inside the fence");
        assert!(!proxy.recovering());
    }

    #[test]
    fn finished_vfc_stays_denied_while_flight_continues() {
        let mut sitl = flying_sitl(5);
        let mut proxy = MavProxy::new();
        let waypoint = sitl.position();
        proxy.add_vfc_client(Vfc::new(
            "vd1",
            CommandWhitelist::standard(),
            Geofence::new(waypoint, 30.0),
            false,
        ));
        proxy.activate_vfc("vd1");
        proxy.finish_vfc("vd1", waypoint);
        proxy.client_send(
            "vd1",
            Message::CommandLong {
                command: MavCmd::NavTakeoff,
                params: [0.0; 7],
            },
            &mut sitl,
        );
        assert_eq!(proxy.commands_denied, 1);
        // Meanwhile the planner still flies the drone onward.
        proxy.add_unrestricted_client("planner");
        let next = waypoint.offset_m(100.0, 0.0, 0.0);
        proxy.client_send(
            "planner",
            Message::SetPositionTargetGlobalInt {
                lat: deg_to_e7(next.latitude),
                lon: deg_to_e7(next.longitude),
                alt: 15.0,
                speed: 8.0,
            },
            &mut sitl,
        );
        run(&mut proxy, &mut sitl, 30.0);
        assert!(sitl.position().distance_m(&next) < 4.0);
    }
}
