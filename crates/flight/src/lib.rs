//! # androne-flight
//!
//! The flight stack of the AnDrone reproduction (paper Section 4.3
//! and the SITL evaluation setup of Section 6.6):
//!
//! - [`physics`]: 6-DOF quadcopter dynamics of the F450 prototype
//!   with a momentum-theory electrical power model.
//! - [`pid`] / [`estimator`] / [`controller`]: an ArduPilot
//!   Copter-style cascade controller with a 400 Hz fast loop, flight
//!   modes, and MAVLink command handling.
//! - [`sitl`]: the assembled software-in-the-loop vehicle.
//! - [`geofence`]: spherical waypoint geofences with recovery-point
//!   computation.
//! - [`log_analyzer`]: flight logs and the DroneKit-style Attitude
//!   Estimate Divergence analysis the paper validates stability with.
//! - [`whitelist`]: the provider-configurable MAVLink command
//!   whitelist templates.
//! - [`vfc`]: per-virtual-drone virtual flight controllers with the
//!   paper's virtualized drone view.
//! - [`mavproxy`]: the multiplexing proxy with AnDrone's augmented
//!   geofence-breach recovery.

pub mod controller;
pub mod estimator;
pub mod geofence;
pub mod log_analyzer;
pub mod mavproxy;
pub mod physics;
pub mod pid;
pub mod sitl;
pub mod vfc;
pub mod whitelist;

pub use controller::{FlightController, GuidedTarget, DEFAULT_SPEED, FAST_LOOP_HZ, MAX_LEAN};
pub use estimator::{Estimator, StateEstimate};
pub use geofence::Geofence;
pub use log_analyzer::{AedReport, AedViolation, Axis, FlightRecorder, AED_MIN_DURATION_S, AED_THRESHOLD_RAD};
pub use mavproxy::{LinkFailsafeConfig, LinkFailsafePhase, MavProxy, APPROACH_DISTANCE_M};
pub use physics::{wrap_pi, AirframeParams, QuadPhysics, AIR_DENSITY};
pub use pid::Pid;
pub use sitl::Sitl;
pub use vfc::{Vfc, VfcDecision, VfcState};
pub use whitelist::CommandWhitelist;
