//! Six-degree-of-freedom quadcopter dynamics.
//!
//! Models the paper's prototype airframe: a DJI FlameWheel F450 with
//! four T-Motor MN2213 950 Kv motors on 9.5" props, powered by a 3S
//! 5000 mAh pack, carrying the RPi3/Navio2 stack. The model is a
//! rigid body with per-motor thrust/torque, quadratic drag, ground
//! contact, and a momentum-theory electrical power model feeding the
//! battery state. It is the "SITL physics" side of the reproduction's
//! Section 6.6 setup.

use androne_hal::{Attitude, GeoPoint, Vec3, VehicleTruth, G};
use androne_simkern::{StateHash, StateHasher};

/// Air density at sea level, kg/m³.
pub const AIR_DENSITY: f64 = 1.225;

/// Physical parameters of the airframe.
#[derive(Debug, Clone, Copy)]
pub struct AirframeParams {
    /// Total mass, kg (frame + motors + battery + SBC).
    pub mass: f64,
    /// Motor arm length, m.
    pub arm_length: f64,
    /// Maximum thrust per motor, N.
    pub max_thrust_per_motor: f64,
    /// Moment of inertia about roll/pitch axes, kg·m².
    pub inertia_xy: f64,
    /// Moment of inertia about the yaw axis, kg·m².
    pub inertia_z: f64,
    /// Yaw torque per unit differential thrust, N·m/N.
    pub yaw_torque_coeff: f64,
    /// Horizontal drag coefficient (N per (m/s)²).
    pub drag_coeff: f64,
    /// Propeller disk area per motor, m².
    pub prop_disk_area: f64,
    /// Combined motor+ESC+prop efficiency for the power model.
    pub powertrain_efficiency: f64,
    /// Constant avionics power draw (SBC + sensors), W.
    pub avionics_power_w: f64,
    /// Battery capacity, J (3S 5000 mAh ≈ 11.1 V × 5 Ah).
    pub battery_capacity_j: f64,
}

impl AirframeParams {
    /// The paper's F450 prototype.
    pub fn f450_prototype() -> Self {
        AirframeParams {
            mass: 1.5,
            arm_length: 0.225,
            max_thrust_per_motor: 8.0,
            inertia_xy: 0.021,
            inertia_z: 0.036,
            yaw_torque_coeff: 0.016,
            drag_coeff: 0.25,
            // 9.5" prop: r = 0.12 m.
            prop_disk_area: std::f64::consts::PI * 0.12 * 0.12,
            powertrain_efficiency: 0.55,
            avionics_power_w: 3.4,
            battery_capacity_j: 11.1 * 5.0 * 3600.0,
        }
    }

    /// Hover throttle fraction (per motor) for this airframe.
    pub fn hover_throttle(&self) -> f64 {
        (self.mass * G) / (4.0 * self.max_thrust_per_motor)
    }
}

/// The rigid-body simulator. Reads motor commands from and writes
/// state back to a [`VehicleTruth`].
#[derive(Debug, Clone)]
pub struct QuadPhysics {
    /// Airframe parameters.
    pub params: AirframeParams,
    home: GeoPoint,
    /// NED position relative to home, m (z down).
    ned: Vec3,
    /// NED velocity, m/s.
    vel: Vec3,
    att: Attitude,
    rates: Vec3,
    /// Steady horizontal wind in NED, m/s.
    pub wind: Vec3,
}

impl QuadPhysics {
    /// Creates physics at rest at `home`.
    pub fn new(params: AirframeParams, home: GeoPoint) -> Self {
        QuadPhysics {
            params,
            home,
            ned: Vec3::ZERO,
            vel: Vec3::ZERO,
            att: Attitude::LEVEL,
            rates: Vec3::ZERO,
            wind: Vec3::ZERO,
        }
    }

    /// The home (launch) position.
    pub fn home(&self) -> GeoPoint {
        self.home
    }

    /// Advances the simulation by `dt` seconds, consuming motor
    /// commands from `truth` and writing the new state back.
    pub fn step(&mut self, truth: &mut VehicleTruth, dt: f64) {
        let p = self.params;
        let m = truth.motor_outputs;
        // Motor layout (X configuration, NED body frame):
        //   0: front-right (CCW)   1: rear-left (CCW)
        //   2: front-left  (CW)    3: rear-right (CW)
        let thrust: [f64; 4] = [
            m[0] * p.max_thrust_per_motor,
            m[1] * p.max_thrust_per_motor,
            m[2] * p.max_thrust_per_motor,
            m[3] * p.max_thrust_per_motor,
        ];
        let total_thrust: f64 = thrust.iter().sum();

        // Body torques from differential thrust. Roll: left vs right;
        // pitch: front vs rear; yaw: CCW vs CW reaction torque.
        let k = p.arm_length * std::f64::consts::FRAC_1_SQRT_2;
        let roll_torque = k * ((thrust[1] + thrust[2]) - (thrust[0] + thrust[3]));
        let pitch_torque = k * ((thrust[0] + thrust[2]) - (thrust[1] + thrust[3]));
        let yaw_torque = p.yaw_torque_coeff * ((thrust[0] + thrust[1]) - (thrust[2] + thrust[3]));

        // Angular dynamics (Euler angles; adequate at drone lean
        // limits, which the VFC clamps well before singularities).
        let ang_acc = Vec3::new(
            roll_torque / p.inertia_xy,
            pitch_torque / p.inertia_xy,
            yaw_torque / p.inertia_z,
        );
        self.rates += ang_acc * dt;
        // Rotational damping (aero drag on props).
        self.rates = self.rates * (1.0 - 1.2 * dt).max(0.0);
        self.att.roll += self.rates.x * dt;
        self.att.pitch += self.rates.y * dt;
        self.att.yaw = wrap_pi(self.att.yaw + self.rates.z * dt);
        self.att.roll = self.att.roll.clamp(-1.2, 1.2);
        self.att.pitch = self.att.pitch.clamp(-1.2, 1.2);

        // Thrust direction in NED from attitude (small-angle-exact
        // for the Z component; lateral components from lean).
        let (sr, cr) = self.att.roll.sin_cos();
        let (sp, cp) = self.att.pitch.sin_cos();
        let (sy, cy) = self.att.yaw.sin_cos();
        let az_body = -total_thrust / p.mass; // Thrust acts body-up (NED: -z).
        // Rotate body z-axis into NED.
        let acc_n = az_body * (cy * sp * cr + sy * sr);
        let acc_e = az_body * (sy * sp * cr - cy * sr);
        let acc_d = az_body * (cp * cr) + G;

        // Aerodynamic drag against air-relative velocity.
        let rel = self.vel - self.wind;
        let drag_mag = p.drag_coeff * rel.norm();
        let drag = -rel * (drag_mag / p.mass.max(1e-9));

        let acc = Vec3::new(acc_n, acc_e, acc_d) + drag;
        self.vel += acc * dt;
        self.ned += self.vel * dt;

        // Ground contact (NED z >= 0 means at/below ground).
        let mut on_ground = false;
        if self.ned.z >= 0.0 {
            self.ned.z = 0.0;
            if self.vel.z > 0.0 {
                self.vel = Vec3::ZERO;
                self.rates = Vec3::ZERO;
                self.att.roll = 0.0;
                self.att.pitch = 0.0;
            }
            on_ground = total_thrust <= p.mass * G;
        }

        // Electrical power: momentum theory per motor plus avionics.
        let mut power = p.avionics_power_w;
        for t in thrust {
            if t > 0.0 {
                power += t.powf(1.5)
                    / ((2.0 * AIR_DENSITY * p.prop_disk_area).sqrt() * p.powertrain_efficiency);
            }
        }
        // Degraded cells deliver the same mechanical power at a
        // higher electrical cost (health 1.0 divides out exactly, so
        // a healthy pack is bit-identical to the pre-fault model).
        let electrical = power / truth.battery_health.clamp(0.05, 1.0);
        truth.energy_consumed_j += electrical * dt;
        truth.battery_current = electrical / truth.battery_voltage.max(1.0);
        // Simple voltage sag with depth of discharge.
        let dod = (truth.energy_consumed_j / p.battery_capacity_j).min(1.0);
        truth.battery_voltage = 12.6 - 2.1 * dod - 0.002 * truth.battery_current;

        // Specific force felt by the IMU (body frame): thrust only
        // (gravity is not felt), expressed in body coordinates.
        truth.specific_force = Vec3::new(0.0, 0.0, az_body);
        truth.body_rates = self.rates;
        truth.attitude = self.att;
        truth.velocity = self.vel;
        truth.on_ground = on_ground;
        truth.position = self.home.offset_m(self.ned.x, self.ned.y, -self.ned.z);
    }

    /// Current NED position relative to home.
    pub fn ned(&self) -> Vec3 {
        self.ned
    }

    /// Displaces the vehicle horizontally by `(north, east)` meters —
    /// a fault-injection hook modeling a position jump (gust slam,
    /// collision shove, or a test teleport). Velocity and attitude
    /// carry over; truth reflects the jump on the next step.
    pub fn displace_m(&mut self, north: f64, east: f64) {
        self.ned.x += north;
        self.ned.y += east;
    }
}

impl StateHash for AirframeParams {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_f64(self.mass);
        h.write_f64(self.arm_length);
        h.write_f64(self.max_thrust_per_motor);
        h.write_f64(self.inertia_xy);
        h.write_f64(self.inertia_z);
        h.write_f64(self.yaw_torque_coeff);
        h.write_f64(self.drag_coeff);
        h.write_f64(self.prop_disk_area);
        h.write_f64(self.powertrain_efficiency);
        h.write_f64(self.avionics_power_w);
        h.write_f64(self.battery_capacity_j);
    }
}

impl StateHash for QuadPhysics {
    fn state_hash(&self, h: &mut StateHasher) {
        self.params.state_hash(h);
        self.home.state_hash(h);
        self.ned.state_hash(h);
        self.vel.state_hash(h);
        self.att.state_hash(h);
        self.rates.state_hash(h);
        self.wind.state_hash(h);
    }
}

/// Wraps an angle to `(-pi, pi]`.
pub fn wrap_pi(a: f64) -> f64 {
    let mut a = a % std::f64::consts::TAU;
    if a > std::f64::consts::PI {
        a -= std::f64::consts::TAU;
    } else if a <= -std::f64::consts::PI {
        a += std::f64::consts::TAU;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (QuadPhysics, VehicleTruth) {
        let home = GeoPoint::new(43.6084298, -85.8110359, 0.0);
        (
            QuadPhysics::new(AirframeParams::f450_prototype(), home),
            VehicleTruth::at_rest(home),
        )
    }

    #[test]
    fn stays_grounded_with_motors_off() {
        let (mut phys, mut truth) = setup();
        for _ in 0..400 {
            phys.step(&mut truth, 0.0025);
        }
        assert!(truth.on_ground);
        assert!(truth.position.altitude.abs() < 1e-6);
    }

    #[test]
    fn hover_throttle_balances_gravity() {
        let (mut phys, mut truth) = setup();
        let hover = phys.params.hover_throttle();
        // Slightly above hover to lift off, then exact hover.
        truth.motor_outputs = [hover + 0.05; 4];
        for _ in 0..800 {
            phys.step(&mut truth, 0.0025);
        }
        let climb_alt = truth.position.altitude;
        assert!(climb_alt > 0.5, "should have lifted off: {climb_alt}");
        truth.motor_outputs = [hover; 4];
        let v_before = truth.velocity.z.abs();
        for _ in 0..400 {
            phys.step(&mut truth, 0.0025);
        }
        // At exact hover thrust, vertical acceleration ~0 (minus
        // drag): vertical speed must not be growing.
        assert!(truth.velocity.z.abs() <= v_before + 0.3);
    }

    #[test]
    fn differential_thrust_rolls_the_airframe() {
        let (mut phys, mut truth) = setup();
        let hover = phys.params.hover_throttle();
        truth.motor_outputs = [hover + 0.1; 4];
        for _ in 0..400 {
            phys.step(&mut truth, 0.0025);
        }
        // More thrust on the left motors -> positive roll torque.
        truth.motor_outputs = [hover - 0.05, hover + 0.05, hover + 0.05, hover - 0.05];
        for _ in 0..40 {
            phys.step(&mut truth, 0.0025);
        }
        assert!(truth.attitude.roll > 0.01, "roll {}", truth.attitude.roll);
    }

    #[test]
    fn energy_accrues_while_flying() {
        let (mut phys, mut truth) = setup();
        truth.motor_outputs = [phys.params.hover_throttle(); 4];
        for _ in 0..4000 {
            phys.step(&mut truth, 0.0025);
        }
        // 10 s near hover should consume roughly 150 W * 10 s.
        let j = truth.energy_consumed_j;
        assert!((1_000.0..2_500.0).contains(&j), "energy {j} J");
        assert!(truth.battery_voltage < 12.6);
        assert!(truth.battery_current > 5.0);
    }

    #[test]
    fn lean_produces_horizontal_motion() {
        let (mut phys, mut truth) = setup();
        let hover = phys.params.hover_throttle();
        truth.motor_outputs = [hover + 0.1; 4];
        for _ in 0..400 {
            phys.step(&mut truth, 0.0025);
        }
        // Pitch the nose down briefly (more rear thrust).
        truth.motor_outputs = [hover + 0.04, hover - 0.04, hover + 0.04, hover - 0.04];
        for _ in 0..60 {
            phys.step(&mut truth, 0.0025);
        }
        truth.motor_outputs = [hover; 4];
        for _ in 0..400 {
            phys.step(&mut truth, 0.0025);
        }
        assert!(
            truth.velocity.norm_xy() > 0.5,
            "speed {}",
            truth.velocity.norm_xy()
        );
    }

    #[test]
    fn wrap_pi_bounds() {
        assert!((wrap_pi(3.0 * std::f64::consts::PI) - std::f64::consts::PI).abs() < 1e-9);
        assert!((wrap_pi(-3.0 * std::f64::consts::PI) - std::f64::consts::PI).abs() < 1e-9);
        assert_eq!(wrap_pi(0.5), 0.5);
    }
}
