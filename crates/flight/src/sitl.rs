//! Software-in-the-loop harness.
//!
//! Ties the physics, the HAL sensor devices, the estimator, and the
//! flight controller into one steppable vehicle — the equivalent of
//! the paper's ArduPilot SITL setup (Section 6.6). Stepping is
//! deterministic: the physics and the controller fast loop both run
//! at 400 Hz, GPS at 5 Hz, barometer at 10 Hz.

use androne_hal::{
    share, Barometer, GeoPoint, GpsFix, HardwareBoard, ImuSample, SensorFaultMode, SharedBoard,
    Vec3,
};
use androne_mavlink::{FlightMode, Message};
use androne_simkern::{SimDuration, StateHash, StateHasher};

use crate::controller::{FlightController, FAST_LOOP_HZ};
use crate::estimator::Estimator;
use crate::log_analyzer::FlightRecorder;
use crate::physics::{AirframeParams, QuadPhysics};

/// One simulated vehicle: hardware, physics, estimation, control.
pub struct Sitl {
    /// The hardware board (shared with the device container's
    /// services, which sample the same sensors the controller flies
    /// on).
    pub board: SharedBoard,
    /// Rigid-body physics.
    pub physics: QuadPhysics,
    /// State estimator.
    pub estimator: Estimator,
    /// The flight controller.
    pub fc: FlightController,
    step_count: u64,
    /// Last good IMU sample, replayed under a stuck-sensor fault.
    last_imu: Option<ImuSample>,
    /// Last good GPS fix, replayed under a stuck-sensor fault.
    last_gps: Option<GpsFix>,
    /// Last good barometer reading, replayed under a stuck-sensor
    /// fault.
    last_baro: Option<f64>,
    /// Peak attitude estimate divergence seen, radians (the paper's
    /// AED check).
    pub max_attitude_divergence: f64,
    /// The DataFlash-style flight log (estimated vs canonical
    /// attitude at 10 Hz) for post-flight AED analysis.
    pub recorder: FlightRecorder,
}

impl Sitl {
    /// Creates a vehicle at rest at `home` with a private board.
    pub fn new(home: GeoPoint, seed: u64) -> Self {
        Self::with_board(share(HardwareBoard::new(home, seed)), home)
    }

    /// Creates a vehicle flying on an existing (shared) board — how
    /// the full drone stack wires the SITL vehicle and the device
    /// container to the same physical sensors.
    pub fn with_board(board: SharedBoard, home: GeoPoint) -> Self {
        let params = AirframeParams::f450_prototype();
        Sitl {
            board,
            physics: QuadPhysics::new(params, home),
            estimator: Estimator::new(home),
            fc: FlightController::new(params, home),
            step_count: 0,
            last_imu: None,
            last_gps: None,
            last_baro: None,
            max_attitude_divergence: 0.0,
            recorder: FlightRecorder::new(),
        }
    }

    /// Feeds one MAVLink message to the controller, returning replies.
    pub fn handle_message(&mut self, msg: &Message) -> Vec<Message> {
        let est = self.estimator.state();
        self.fc.handle_message(msg, &est)
    }

    /// Runs one 2.5 ms step (sensor sampling, estimation, fast loop,
    /// physics), returning any telemetry due this step.
    pub fn step(&mut self) -> Vec<Message> {
        self.step_count += 1;
        let dt = 1.0 / FAST_LOOP_HZ;

        let truth = *self.board.borrow().truth.borrow();

        // Sensors and estimation, gated by the injected fault modes.
        // A dropped-out sensor skips its update AND its noise draws;
        // a stuck sensor replays the last good sample without
        // drawing; a biased sensor samples normally and offsets. GPS
        // dropout therefore leaves the estimator dead-reckoning on
        // the IMU until the fix returns.
        {
            let mut board = self.board.borrow_mut();
            let faults = board.faults;
            match faults.imu {
                SensorFaultMode::Dropout => {}
                SensorFaultMode::Stuck => {
                    if let Some(imu) = self.last_imu {
                        self.estimator.imu_update(&imu, &truth.attitude, dt);
                    }
                }
                mode => {
                    let mut imu = {
                        let imu = board.imu.clone();
                        imu.sample(&truth, &mut board.rng)
                    };
                    self.last_imu = Some(imu);
                    if let SensorFaultMode::Bias(b) = mode {
                        imu.accel += Vec3::new(b, b, b);
                    }
                    self.estimator.imu_update(&imu, &truth.attitude, dt);
                }
            }
            if self.step_count.is_multiple_of(80) {
                // 5 Hz GPS.
                match faults.gps {
                    SensorFaultMode::Dropout => {}
                    SensorFaultMode::Stuck => {
                        if let Some(fix) = self.last_gps {
                            self.estimator.gps_update(&fix, truth.velocity);
                        }
                    }
                    mode => {
                        let mut fix = {
                            let gps = board.gps.clone();
                            gps.fix(&truth, &mut board.rng)
                        };
                        self.last_gps = Some(fix);
                        if let SensorFaultMode::Bias(b) = mode {
                            fix.position = fix.position.offset_m(b, 0.0, 0.0);
                        }
                        self.estimator.gps_update(&fix, truth.velocity);
                    }
                }
            }
            if self.step_count.is_multiple_of(40) {
                // 10 Hz barometer.
                match faults.baro {
                    SensorFaultMode::Dropout => {}
                    SensorFaultMode::Stuck => {
                        if let Some(p) = self.last_baro {
                            self.estimator.baro_update(p);
                        }
                    }
                    mode => {
                        let p = {
                            let baro = board.barometer.clone();
                            baro.pressure_pa(&truth, &mut board.rng)
                        };
                        self.last_baro = Some(p);
                        let p = if let SensorFaultMode::Bias(b) = mode {
                            let alt = Barometer::altitude_from_pressure(p) + b;
                            101_325.0 * (1.0 - 2.25577e-5 * alt).powf(5.25588)
                        } else {
                            p
                        };
                        self.estimator.baro_update(p);
                    }
                }
            }
        }
        let div = self.estimator.attitude_divergence(&truth.attitude);
        self.max_attitude_divergence = self.max_attitude_divergence.max(div);
        if self.step_count.is_multiple_of(40) {
            // 10 Hz ATT log records, as a DataFlash log would carry.
            self.recorder.record(
                self.step_count as f64 / FAST_LOOP_HZ,
                self.estimator.state().attitude,
                truth.attitude,
            );
        }

        // Control and actuation.
        let est = self.estimator.state();
        let motors = self.fc.fast_loop(&est, truth.on_ground);
        if let Some((pitch, yaw)) = self.fc.mount_target.take() {
            self.board.borrow_mut().gimbal.point(pitch, yaw);
        }
        {
            let board = self.board.borrow();
            let mut t = board.truth.borrow_mut();
            board.motors.set_outputs(&mut t, motors);
            // Physics.
            self.physics.step(&mut t, dt);
        }

        let truth = *self.board.borrow().truth.borrow();
        self.fc
            .telemetry(&est, truth.battery_voltage, truth.battery_current)
    }

    /// Runs for a span of simulated time, discarding telemetry.
    pub fn run_for(&mut self, span: SimDuration) {
        let steps = (span.as_secs_f64() * FAST_LOOP_HZ) as u64;
        for _ in 0..steps {
            self.step();
        }
    }

    /// True position (for assertions).
    pub fn position(&self) -> GeoPoint {
        self.board.borrow().truth.borrow().position
    }

    /// True NED velocity.
    pub fn velocity(&self) -> Vec3 {
        self.board.borrow().truth.borrow().velocity
    }

    /// Whether the vehicle is on the ground.
    pub fn on_ground(&self) -> bool {
        self.board.borrow().truth.borrow().on_ground
    }

    /// Cumulative energy drawn from the battery, joules.
    pub fn energy_consumed_j(&self) -> f64 {
        self.board.borrow().truth.borrow().energy_consumed_j
    }

    /// Convenience: arm, take off to `alt` meters, and wait until the
    /// altitude is reached (or `timeout` elapses). Returns success.
    pub fn arm_and_takeoff(&mut self, alt: f64, timeout: SimDuration) -> bool {
        use androne_mavlink::MavCmd;
        self.handle_message(&Message::SetMode {
            mode: FlightMode::Guided,
        });
        self.handle_message(&Message::CommandLong {
            command: MavCmd::ComponentArmDisarm,
            params: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        });
        self.handle_message(&Message::CommandLong {
            command: MavCmd::NavTakeoff,
            params: [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, alt as f32],
        });
        let steps = (timeout.as_secs_f64() * FAST_LOOP_HZ) as u64;
        for _ in 0..steps {
            self.step();
            if self.position().altitude >= alt - 0.5 {
                return true;
            }
        }
        false
    }

    /// Convenience: fly to a guided target and wait until within
    /// `tolerance` meters (or `timeout`). Returns success.
    pub fn goto(
        &mut self,
        target: GeoPoint,
        speed: f64,
        tolerance: f64,
        timeout: SimDuration,
    ) -> bool {
        use androne_mavlink::deg_to_e7;
        self.handle_message(&Message::SetPositionTargetGlobalInt {
            lat: deg_to_e7(target.latitude),
            lon: deg_to_e7(target.longitude),
            alt: target.altitude as f32,
            speed: speed as f32,
        });
        let steps = (timeout.as_secs_f64() * FAST_LOOP_HZ) as u64;
        for _ in 0..steps {
            self.step();
            if self.position().distance_m(&target) <= tolerance {
                return true;
            }
        }
        false
    }
}

impl StateHash for Sitl {
    fn state_hash(&self, h: &mut StateHasher) {
        // The board's sensor-noise RNG state is not hashed directly,
        // but every draw lands in the estimator (via noisy samples)
        // and the physics (via motor commands computed from the
        // estimate), so a diverging RNG stream shows up here within
        // one fast-loop step.
        self.board.borrow().truth.borrow().state_hash(h);
        self.physics.state_hash(h);
        self.estimator.state_hash(h);
        self.fc.state_hash(h);
        h.write_u64(self.step_count);
        h.write_f64(self.max_attitude_divergence);
        self.recorder.state_hash(h);
        self.board.borrow().faults.state_hash(h);
        match self.last_imu {
            Some(s) => {
                h.write_bool(true);
                s.state_hash(h);
            }
            None => h.write_bool(false),
        }
        match self.last_gps {
            Some(f) => {
                h.write_bool(true);
                f.state_hash(h);
            }
            None => h.write_bool(false),
        }
        match self.last_baro {
            Some(p) => {
                h.write_bool(true);
                h.write_f64(p);
            }
            None => h.write_bool(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use androne_mavlink::MavCmd;

    const HOME: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

    #[test]
    fn takeoff_reaches_altitude() {
        let mut sitl = Sitl::new(HOME, 42);
        assert!(sitl.arm_and_takeoff(15.0, SimDuration::from_secs(30)));
        assert!(!sitl.on_ground());
        // Hold for a while: altitude stays near target.
        sitl.run_for(SimDuration::from_secs(10));
        let alt = sitl.position().altitude;
        assert!((13.0..18.0).contains(&alt), "altitude {alt}");
    }

    #[test]
    fn guided_flight_to_waypoint() {
        let mut sitl = Sitl::new(HOME, 43);
        assert!(sitl.arm_and_takeoff(15.0, SimDuration::from_secs(30)));
        let target = HOME.offset_m(80.0, 40.0, 15.0);
        assert!(sitl.goto(target, 5.0, 2.5, SimDuration::from_secs(60)));
    }

    #[test]
    fn rtl_returns_home_and_lands() {
        let mut sitl = Sitl::new(HOME, 44);
        assert!(sitl.arm_and_takeoff(15.0, SimDuration::from_secs(30)));
        let away = HOME.offset_m(50.0, 0.0, 15.0);
        assert!(sitl.goto(away, 5.0, 2.5, SimDuration::from_secs(60)));
        sitl.handle_message(&Message::CommandLong {
            command: MavCmd::NavReturnToLaunch,
            params: [0.0; 7],
        });
        sitl.run_for(SimDuration::from_secs(90));
        assert!(sitl.on_ground(), "landed after RTL");
        let home_dist = sitl.position().ground_distance_m(&HOME);
        assert!(home_dist < 5.0, "near home: {home_dist} m");
        assert!(!sitl.fc.armed(), "disarmed after landing");
    }

    #[test]
    fn hover_attitude_estimate_stays_within_aed_bounds() {
        // Paper Section 6.2: hover flights show attitude estimate
        // divergence within the 5-degree normal band.
        let mut sitl = Sitl::new(HOME, 45);
        assert!(sitl.arm_and_takeoff(10.0, SimDuration::from_secs(30)));
        sitl.run_for(SimDuration::from_secs(20));
        assert!(
            sitl.max_attitude_divergence < 5f64.to_radians(),
            "AED {} deg",
            sitl.max_attitude_divergence.to_degrees()
        );
    }

    #[test]
    fn unarmed_takeoff_is_denied() {
        let mut sitl = Sitl::new(HOME, 46);
        let replies = sitl.handle_message(&Message::CommandLong {
            command: MavCmd::NavTakeoff,
            params: [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 15.0],
        });
        assert!(matches!(
            replies[0],
            Message::CommandAck {
                result: androne_mavlink::MavResult::Denied,
                ..
            }
        ));
        sitl.run_for(SimDuration::from_secs(2));
        assert!(sitl.on_ground());
    }

    #[test]
    fn energy_is_consumed_in_flight() {
        let mut sitl = Sitl::new(HOME, 47);
        assert!(sitl.arm_and_takeoff(10.0, SimDuration::from_secs(30)));
        let e0 = sitl.energy_consumed_j();
        sitl.run_for(SimDuration::from_secs(10));
        let de = sitl.energy_consumed_j() - e0;
        // Hover power ~130-220 W.
        assert!((1_000.0..3_000.0).contains(&de), "10s hover used {de} J");
    }

    #[test]
    fn land_command_descends_and_disarms() {
        let mut sitl = Sitl::new(HOME, 48);
        assert!(sitl.arm_and_takeoff(8.0, SimDuration::from_secs(30)));
        sitl.handle_message(&Message::CommandLong {
            command: MavCmd::NavLand,
            params: [0.0; 7],
        });
        sitl.run_for(SimDuration::from_secs(30));
        assert!(sitl.on_ground());
        assert!(!sitl.fc.armed());
    }
}

#[cfg(test)]
mod auto_mode_tests {
    use super::*;

    const HOME: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

    #[test]
    fn auto_mode_flies_a_loaded_mission_in_order() {
        let mut sitl = Sitl::new(HOME, 71);
        let wp1 = HOME.offset_m(50.0, 0.0, 15.0);
        let wp2 = HOME.offset_m(50.0, 50.0, 15.0);
        sitl.fc.set_mission(vec![wp1, wp2]);
        assert!(sitl.arm_and_takeoff(15.0, SimDuration::from_secs(30)));
        sitl.handle_message(&Message::SetMode {
            mode: FlightMode::Auto,
        });
        // The mission visits wp1 first, then wp2, holding at the end.
        let mut hit_wp1_before_wp2 = false;
        for _ in 0..(90.0 * 400.0) as u64 {
            sitl.step();
            if !hit_wp1_before_wp2 && sitl.position().distance_m(&wp1) < 3.0 {
                hit_wp1_before_wp2 = true;
            }
            if sitl.position().distance_m(&wp2) < 3.0 {
                break;
            }
        }
        assert!(hit_wp1_before_wp2, "visited wp1 on the way");
        assert!(sitl.position().distance_m(&wp2) < 3.0, "reached wp2");
        // Holds at the final waypoint.
        sitl.run_for(SimDuration::from_secs(8));
        assert!(sitl.position().distance_m(&wp2) < 4.0, "holds at mission end");
    }

    #[test]
    fn empty_mission_in_auto_holds_position() {
        let mut sitl = Sitl::new(HOME, 72);
        assert!(sitl.arm_and_takeoff(12.0, SimDuration::from_secs(30)));
        let before = sitl.position();
        sitl.handle_message(&Message::SetMode {
            mode: FlightMode::Auto,
        });
        sitl.run_for(SimDuration::from_secs(10));
        assert!(
            sitl.position().distance_m(&before) < 5.0,
            "no mission -> hold"
        );
    }
}

#[cfg(test)]
mod mission_upload_tests {
    use super::*;
    use androne_mavlink::{deg_to_e7, MavCmd};

    const HOME: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

    /// Drives the full MISSION_COUNT/REQUEST/ITEM/ACK handshake.
    fn upload_mission(sitl: &mut Sitl, waypoints: &[GeoPoint]) -> Vec<Message> {
        let mut replies = sitl.handle_message(&Message::MissionCount {
            count: waypoints.len() as u16,
        });
        let mut log = replies.clone();
        while let Some(Message::MissionRequestInt { seq }) = replies.first() {
            let wp = waypoints[*seq as usize];
            replies = sitl.handle_message(&Message::MissionItemInt {
                seq: *seq,
                lat: deg_to_e7(wp.latitude),
                lon: deg_to_e7(wp.longitude),
                alt: wp.altitude as f32,
            });
            log.extend(replies.clone());
        }
        log
    }

    #[test]
    fn mission_upload_handshake_accepts_and_flies() {
        let mut sitl = Sitl::new(HOME, 73);
        let wps = vec![
            HOME.offset_m(40.0, 0.0, 15.0),
            HOME.offset_m(40.0, 40.0, 15.0),
        ];
        let log = upload_mission(&mut sitl, &wps);
        assert!(
            log.iter().any(|m| matches!(m, Message::MissionAck { result: 0 })),
            "{log:?}"
        );
        assert_eq!(sitl.fc.mission().len(), 2);

        // Fly the uploaded mission in Auto.
        assert!(sitl.arm_and_takeoff(15.0, SimDuration::from_secs(30)));
        sitl.handle_message(&Message::SetMode {
            mode: FlightMode::Auto,
        });
        for _ in 0..(120.0 * 400.0) as u64 {
            sitl.step();
            if sitl.position().distance_m(&wps[1]) < 3.0 {
                break;
            }
        }
        assert!(sitl.position().distance_m(&wps[1]) < 3.0, "mission flown");
    }

    #[test]
    fn out_of_order_item_aborts_the_upload() {
        let mut sitl = Sitl::new(HOME, 74);
        sitl.handle_message(&Message::MissionCount { count: 2 });
        let replies = sitl.handle_message(&Message::MissionItemInt {
            seq: 1, // Expected 0.
            lat: deg_to_e7(HOME.latitude),
            lon: deg_to_e7(HOME.longitude),
            alt: 15.0,
        });
        assert!(matches!(replies[0], Message::MissionAck { result: 13 }));
        assert!(sitl.fc.mission().is_empty());
    }

    #[test]
    fn zero_count_clears_the_mission() {
        let mut sitl = Sitl::new(HOME, 75);
        upload_mission(&mut sitl, &[HOME.offset_m(30.0, 0.0, 15.0)]);
        assert_eq!(sitl.fc.mission().len(), 1);
        let replies = sitl.handle_message(&Message::MissionCount { count: 0 });
        assert!(matches!(replies[0], Message::MissionAck { result: 0 }));
        assert!(sitl.fc.mission().is_empty());
    }

    #[test]
    fn mount_control_points_the_gimbal() {
        let mut sitl = Sitl::new(HOME, 76);
        sitl.handle_message(&Message::CommandLong {
            command: MavCmd::DoMountControl,
            // Pitch -45 deg (look down), yaw 90 deg.
            params: [-45.0, 0.0, 90.0, 0.0, 0.0, 0.0, 0.0],
        });
        sitl.step();
        let board = sitl.board.borrow();
        assert!((board.gimbal.pitch + 45f64.to_radians()).abs() < 1e-9);
        assert!((board.gimbal.yaw - 90f64.to_radians()).abs() < 1e-9);
    }
}
