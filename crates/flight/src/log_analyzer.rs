//! Flight log recording and the Attitude Estimate Divergence (AED)
//! analyzer.
//!
//! The paper validates flight stability with DroneKit's Log Analyzer
//! (Section 6.2): the AED check "determines if the flight
//! controller's estimated attitude of the drone differs significantly
//! from the canonical drone attitude, indicating instability if the
//! drone's yaw, pitch, or roll diverges more than 5° from the
//! estimates for longer than .5 seconds". This module records the
//! same dual-attitude log a DataFlash log carries and implements the
//! same analysis.

use androne_hal::Attitude;

use crate::physics::wrap_pi;

/// AED thresholds from the DroneKit analyzer.
pub const AED_THRESHOLD_RAD: f64 = 5.0 * std::f64::consts::PI / 180.0;
/// Minimum violation duration, seconds.
pub const AED_MIN_DURATION_S: f64 = 0.5;

/// One attitude axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Roll.
    Roll,
    /// Pitch.
    Pitch,
    /// Yaw.
    Yaw,
}

/// One log sample: estimated vs canonical attitude at a time.
#[derive(Debug, Clone, Copy)]
pub struct AttSample {
    /// Seconds since log start.
    pub t: f64,
    /// The controller's estimate (the log's ATT record).
    pub estimated: Attitude,
    /// The canonical attitude (SITL truth / the analyzer's reference
    /// solution).
    pub canonical: Attitude,
}

/// A sustained divergence the analyzer flags.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AedViolation {
    /// Axis that diverged.
    pub axis: Axis,
    /// Violation start, seconds.
    pub start_s: f64,
    /// Violation end, seconds.
    pub end_s: f64,
    /// Peak divergence in the window, radians.
    pub peak_rad: f64,
}

/// The analyzer's verdict for one flight log.
#[derive(Debug, Clone)]
pub struct AedReport {
    /// Sustained violations found (empty = within normal divergence).
    pub violations: Vec<AedViolation>,
    /// Peak instantaneous divergence over the whole log, radians.
    pub peak_rad: f64,
    /// Samples analyzed.
    pub samples: usize,
}

impl AedReport {
    /// Whether the flight "was within normal divergence" (paper's
    /// phrasing for a passing flight).
    pub fn passes(&self) -> bool {
        self.violations.is_empty()
    }
}

/// An in-memory flight log (the DataFlash-log stand-in).
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    samples: Vec<AttSample>,
}

impl FlightRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        FlightRecorder::default()
    }

    /// Appends one sample (callers record at ~10 Hz, the ATT log
    /// rate).
    pub fn record(&mut self, t: f64, estimated: Attitude, canonical: Attitude) {
        self.samples.push(AttSample {
            t,
            estimated,
            canonical,
        });
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Runs the AED analysis over the log.
    pub fn aed_analysis(&self) -> AedReport {
        let mut violations = Vec::new();
        let mut peak = 0.0f64;
        for axis in [Axis::Roll, Axis::Pitch, Axis::Yaw] {
            let mut window_start: Option<f64> = None;
            let mut window_peak = 0.0f64;
            let mut last_t = 0.0;
            for s in &self.samples {
                let err = match axis {
                    Axis::Roll => (s.estimated.roll - s.canonical.roll).abs(),
                    Axis::Pitch => (s.estimated.pitch - s.canonical.pitch).abs(),
                    Axis::Yaw => wrap_pi(s.estimated.yaw - s.canonical.yaw).abs(),
                };
                peak = peak.max(err);
                last_t = s.t;
                if err > AED_THRESHOLD_RAD {
                    window_start.get_or_insert(s.t);
                    window_peak = window_peak.max(err);
                } else if let Some(start) = window_start.take() {
                    if s.t - start >= AED_MIN_DURATION_S {
                        violations.push(AedViolation {
                            axis,
                            start_s: start,
                            end_s: s.t,
                            peak_rad: window_peak,
                        });
                    }
                    window_peak = 0.0;
                }
            }
            // A violation window still open at log end counts if it
            // lasted long enough.
            if let Some(start) = window_start {
                if last_t - start >= AED_MIN_DURATION_S {
                    violations.push(AedViolation {
                        axis,
                        start_s: start,
                        end_s: last_t,
                        peak_rad: window_peak,
                    });
                }
            }
        }
        AedReport {
            violations,
            peak_rad: peak,
            samples: self.samples.len(),
        }
    }
}

impl androne_simkern::StateHash for FlightRecorder {
    fn state_hash(&self, h: &mut androne_simkern::StateHasher) {
        h.write_usize(self.samples.len());
        for s in &self.samples {
            h.write_f64(s.t);
            s.estimated.state_hash(h);
            s.canonical.state_hash(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn att(roll: f64, pitch: f64, yaw: f64) -> Attitude {
        Attitude { roll, pitch, yaw }
    }

    #[test]
    fn clean_log_passes() {
        let mut rec = FlightRecorder::new();
        for i in 0..100 {
            let t = i as f64 * 0.1;
            rec.record(t, att(0.01, -0.02, 1.0), att(0.012, -0.018, 1.002));
        }
        let report = rec.aed_analysis();
        assert!(report.passes());
        assert!(report.peak_rad < AED_THRESHOLD_RAD);
        assert_eq!(report.samples, 100);
    }

    #[test]
    fn sustained_divergence_is_flagged() {
        let mut rec = FlightRecorder::new();
        for i in 0..100 {
            let t = i as f64 * 0.1;
            // Roll estimate diverges by 10 degrees between t=3 and
            // t=5 (2 s > 0.5 s).
            let est_roll = if (3.0..5.0).contains(&t) { 0.175 } else { 0.0 };
            rec.record(t, att(est_roll, 0.0, 0.0), att(0.0, 0.0, 0.0));
        }
        let report = rec.aed_analysis();
        assert!(!report.passes());
        assert_eq!(report.violations.len(), 1);
        let v = report.violations[0];
        assert_eq!(v.axis, Axis::Roll);
        assert!((v.start_s - 3.0).abs() < 0.15);
        assert!((v.end_s - 5.0).abs() < 0.15);
        assert!(v.peak_rad > AED_THRESHOLD_RAD);
    }

    #[test]
    fn brief_spikes_are_tolerated() {
        // The analyzer only flags divergence held for 0.5 s; a
        // 0.2 s spike (e.g. during an aggressive maneuver) passes.
        let mut rec = FlightRecorder::new();
        for i in 0..100 {
            let t = i as f64 * 0.1;
            let est_pitch = if (4.0..4.2).contains(&t) { 0.2 } else { 0.0 };
            rec.record(t, att(0.0, est_pitch, 0.0), att(0.0, 0.0, 0.0));
        }
        assert!(rec.aed_analysis().passes());
    }

    #[test]
    fn yaw_divergence_wraps_correctly() {
        let mut rec = FlightRecorder::new();
        for i in 0..30 {
            let t = i as f64 * 0.1;
            // Estimated 179°, canonical -179°: only 2° apart through
            // the wrap, not 358°.
            rec.record(t, att(0.0, 0.0, 3.124), att(0.0, 0.0, -3.124));
        }
        let report = rec.aed_analysis();
        assert!(report.passes(), "wrapped yaw error is small");
    }

    #[test]
    fn violation_open_at_log_end_is_counted() {
        let mut rec = FlightRecorder::new();
        for i in 0..20 {
            let t = i as f64 * 0.1;
            let est = if t >= 1.0 { 0.3 } else { 0.0 };
            rec.record(t, att(est, 0.0, 0.0), att(0.0, 0.0, 0.0));
        }
        let report = rec.aed_analysis();
        assert_eq!(report.violations.len(), 1);
    }
}
