//! State estimation for the flight controller.
//!
//! The attitude path is a complementary filter: high-rate gyro
//! integration corrected at low gain toward the reference attitude
//! solution (standing in for ArduPilot's full EKF fusion of
//! accelerometer, compass, and GPS — the gyro noise and bias still
//! flow through, so estimate/truth divergence is a meaningful signal,
//! which is what the paper's Attitude Estimate Divergence analysis
//! checks). Position fuses 5 Hz GPS fixes with velocity
//! dead-reckoning; altitude blends the barometer.

use androne_hal::{Attitude, Barometer, GeoPoint, GpsFix, ImuSample, Vec3};
use androne_simkern::{StateHash, StateHasher};

use crate::physics::wrap_pi;

/// The estimated vehicle state the controller flies on.
#[derive(Debug, Clone, Copy)]
pub struct StateEstimate {
    /// Estimated position.
    pub position: GeoPoint,
    /// Estimated NED velocity, m/s.
    pub velocity: Vec3,
    /// Estimated attitude.
    pub attitude: Attitude,
    /// Body rates straight from the gyro (bias-corrected estimate).
    pub rates: Vec3,
}

/// Complementary-filter estimator.
#[derive(Debug, Clone)]
pub struct Estimator {
    est: StateEstimate,
    /// Attitude correction time constant, s.
    pub att_tau: f64,
    /// Estimated gyro bias (learned slowly).
    gyro_bias: Vec3,
    initialized: bool,
}

impl Estimator {
    /// Creates an estimator starting at `home`, level.
    pub fn new(home: GeoPoint) -> Self {
        Estimator {
            est: StateEstimate {
                position: home,
                velocity: Vec3::ZERO,
                attitude: Attitude::LEVEL,
                rates: Vec3::ZERO,
            },
            att_tau: 2.0,
            gyro_bias: Vec3::ZERO,
            initialized: false,
        }
    }

    /// The current estimate.
    pub fn state(&self) -> StateEstimate {
        self.est
    }

    /// High-rate IMU update (gyro integration + slow correction
    /// toward the fused reference attitude).
    pub fn imu_update(&mut self, imu: &ImuSample, reference: &Attitude, dt: f64) {
        let gyro = imu.gyro - self.gyro_bias;
        self.est.rates = gyro;
        self.est.attitude.roll += gyro.x * dt;
        self.est.attitude.pitch += gyro.y * dt;
        self.est.attitude.yaw = wrap_pi(self.est.attitude.yaw + gyro.z * dt);

        // Low-gain correction toward the fused solution; also learn
        // gyro bias from the persistent part of the correction.
        let alpha = (dt / self.att_tau).min(1.0);
        let err_r = reference.roll - self.est.attitude.roll;
        let err_p = reference.pitch - self.est.attitude.pitch;
        let err_y = wrap_pi(reference.yaw - self.est.attitude.yaw);
        self.est.attitude.roll += alpha * err_r;
        self.est.attitude.pitch += alpha * err_p;
        self.est.attitude.yaw = wrap_pi(self.est.attitude.yaw + alpha * err_y);
        let bias_gain = 0.02 * alpha;
        self.gyro_bias += Vec3::new(-err_r, -err_p, -err_y) * bias_gain;

        // Dead-reckon position between GPS fixes.
        self.est.position = self.est.position.offset_m(
            self.est.velocity.x * dt,
            self.est.velocity.y * dt,
            -self.est.velocity.z * dt,
        );
    }

    /// 5 Hz GPS update.
    pub fn gps_update(&mut self, fix: &GpsFix, velocity_ned: Vec3) {
        if !self.initialized {
            self.est.position = fix.position;
            self.initialized = true;
            return;
        }
        // Blend 60% toward the fix to bound drift while filtering
        // fix-to-fix noise.
        let w = 0.6;
        let delta = fix.position.ned_from(&self.est.position);
        self.est.position = self.est.position.offset_m(w * delta.x, w * delta.y, 0.0);
        self.est.velocity = velocity_ned;
        let alt_err = fix.position.altitude - self.est.position.altitude;
        self.est.position.altitude += 0.2 * alt_err;
    }

    /// Barometer update (altitude blend).
    pub fn baro_update(&mut self, pressure_pa: f64) {
        let alt = Barometer::altitude_from_pressure(pressure_pa);
        self.est.position.altitude += 0.15 * (alt - self.est.position.altitude);
    }

    /// Divergence between estimate and truth attitude, radians
    /// (max over roll/pitch/yaw) — the paper's AED metric.
    pub fn attitude_divergence(&self, truth: &Attitude) -> f64 {
        (self.est.attitude.roll - truth.roll)
            .abs()
            .max((self.est.attitude.pitch - truth.pitch).abs())
            .max(wrap_pi(self.est.attitude.yaw - truth.yaw).abs())
    }
}

impl StateHash for StateEstimate {
    fn state_hash(&self, h: &mut StateHasher) {
        self.position.state_hash(h);
        self.velocity.state_hash(h);
        self.attitude.state_hash(h);
        self.rates.state_hash(h);
    }
}

impl StateHash for Estimator {
    fn state_hash(&self, h: &mut StateHasher) {
        self.est.state_hash(h);
        h.write_f64(self.att_tau);
        self.gyro_bias.state_hash(h);
        h.write_bool(self.initialized);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use androne_hal::{GeoPoint, Imu, VehicleTruth};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn attitude_tracks_reference_within_divergence_bound() {
        let home = GeoPoint::new(43.6, -85.8, 0.0);
        let mut est = Estimator::new(home);
        let imu = Imu::default();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut truth = VehicleTruth::at_rest(home);
        // Vehicle slowly rolls to 0.2 rad while the estimator runs at
        // 400 Hz for 4 seconds.
        for i in 0..1600 {
            truth.attitude.roll = 0.2 * (i as f64 / 1600.0);
            truth.body_rates = Vec3::new(0.2 / 4.0, 0.0, 0.0);
            let sample = imu.sample(&truth, &mut rng);
            est.imu_update(&sample, &truth.attitude, 0.0025);
        }
        // Paper's AED threshold: 5 degrees (0.087 rad).
        assert!(
            est.attitude_divergence(&truth.attitude) < 0.087,
            "divergence {}",
            est.attitude_divergence(&truth.attitude)
        );
    }

    #[test]
    fn first_gps_fix_initializes_position() {
        let home = GeoPoint::new(43.6, -85.8, 0.0);
        let mut est = Estimator::new(home);
        let fix = GpsFix {
            position: home.offset_m(5.0, -3.0, 10.0),
            ground_speed: 0.0,
            course: 0.0,
            satellites: 11,
            valid: true,
        };
        est.gps_update(&fix, Vec3::ZERO);
        let err = est.state().position.ned_from(&fix.position);
        assert!(err.norm() < 1e-6);
    }

    #[test]
    fn gps_updates_bound_position_drift() {
        let home = GeoPoint::new(43.6, -85.8, 0.0);
        let mut est = Estimator::new(home);
        est.gps_update(
            &GpsFix {
                position: home,
                ground_speed: 0.0,
                course: 0.0,
                satellites: 11,
                valid: true,
            },
            Vec3::ZERO,
        );
        // Repeatedly blend toward a fix 10 m north.
        let fix = GpsFix {
            position: home.offset_m(10.0, 0.0, 0.0),
            ground_speed: 0.0,
            course: 0.0,
            satellites: 11,
            valid: true,
        };
        for _ in 0..10 {
            est.gps_update(&fix, Vec3::ZERO);
        }
        let remaining = est.state().position.ned_from(&fix.position).norm_xy();
        assert!(remaining < 0.2, "converges to the fix: {remaining}");
    }

    #[test]
    fn baro_blends_altitude() {
        let home = GeoPoint::new(43.6, -85.8, 0.0);
        let mut est = Estimator::new(home);
        let p_50m = 101_325.0 * (1.0 - 2.25577e-5 * 50.0f64).powf(5.25588);
        for _ in 0..60 {
            est.baro_update(p_50m);
        }
        assert!((est.state().position.altitude - 50.0).abs() < 1.0);
    }
}
