//! MAVLink command whitelists for virtual flight controllers.
//!
//! The extent of a virtual drone's flight control "is configurable
//! via a whitelist of MAVLink commands available as a number of
//! preconfigured whitelist templates which are customizable by the
//! service provider" (paper Section 4.3). The most restrictive
//! template only permits guided mode (position targets); the least
//! restrictive allows full control within the geofence.

use std::collections::BTreeSet;

use androne_mavlink::{FlightMode, MavCmd, Message};
use androne_simkern::{StateHash, StateHasher};

/// A whitelist of MAVLink traffic a VFC connection will accept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandWhitelist {
    /// Template name (for provider configuration/diagnostics).
    pub name: String,
    allowed_cmds: BTreeSet<u16>,
    allowed_modes: BTreeSet<u32>,
    allow_position_targets: bool,
    allow_mission_upload: bool,
}

impl CommandWhitelist {
    /// An empty whitelist builder.
    pub fn named(name: impl Into<String>) -> Self {
        CommandWhitelist {
            name: name.into(),
            allowed_cmds: BTreeSet::new(),
            allowed_modes: BTreeSet::new(),
            allow_position_targets: false,
            allow_mission_upload: false,
        }
    }

    /// Adds a permitted command.
    pub fn allow_cmd(mut self, cmd: MavCmd) -> Self {
        self.allowed_cmds.insert(cmd.id());
        self
    }

    /// Adds a permitted flight mode for SET_MODE.
    pub fn allow_mode(mut self, mode: FlightMode) -> Self {
        self.allowed_modes.insert(mode.custom_mode());
        self
    }

    /// Permits guided position targets.
    pub fn allow_position_targets(mut self) -> Self {
        self.allow_position_targets = true;
        self
    }

    /// Permits MAVLink mission uploads (defining Auto flights).
    pub fn allow_mission_upload(mut self) -> Self {
        self.allow_mission_upload = true;
        self
    }

    /// The most restrictive template: guided mode only — the virtual
    /// drone "is given destination coordinates and a velocity with
    /// which to reach it".
    pub fn guided_only() -> Self {
        CommandWhitelist::named("guided-only").allow_position_targets()
    }

    /// A mid-level template: guided targets plus takeoff/land/yaw and
    /// gimbal control, and mode changes among Guided/Loiter/Land.
    pub fn standard() -> Self {
        CommandWhitelist::named("standard")
            .allow_position_targets()
            .allow_cmd(MavCmd::NavTakeoff)
            .allow_cmd(MavCmd::NavLand)
            .allow_cmd(MavCmd::ConditionYaw)
            .allow_cmd(MavCmd::DoMountControl)
            .allow_mode(FlightMode::Guided)
            .allow_mode(FlightMode::Loiter)
            .allow_mode(FlightMode::Land)
    }

    /// The least restrictive template: full control (the geofence
    /// still applies).
    pub fn full() -> Self {
        let mut w = CommandWhitelist::named("full")
            .allow_position_targets()
            .allow_mission_upload();
        for cmd in MavCmd::ALL {
            w.allowed_cmds.insert(cmd.id());
        }
        for mode in FlightMode::ALL {
            w.allowed_modes.insert(mode.custom_mode());
        }
        w
    }

    /// Whether this whitelist permits `msg`.
    pub fn permits(&self, msg: &Message) -> bool {
        match msg {
            Message::CommandLong { command, .. } => self.allowed_cmds.contains(&command.id()),
            Message::SetMode { mode } => self.allowed_modes.contains(&mode.custom_mode()),
            Message::SetPositionTargetGlobalInt { .. } => self.allow_position_targets,
            Message::MissionCount { .. } | Message::MissionItemInt { .. } => {
                self.allow_mission_upload
            }
            // Telemetry-direction messages carry no authority.
            _ => true,
        }
    }
}

impl StateHash for CommandWhitelist {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_str(&self.name);
        h.write_usize(self.allowed_cmds.len());
        for cmd in &self.allowed_cmds {
            h.write_u32(u32::from(*cmd));
        }
        h.write_usize(self.allowed_modes.len());
        for mode in &self.allowed_modes {
            h.write_u32(*mode);
        }
        h.write_bool(self.allow_position_targets);
        h.write_bool(self.allow_mission_upload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn takeoff() -> Message {
        Message::CommandLong {
            command: MavCmd::NavTakeoff,
            params: [0.0; 7],
        }
    }

    fn target() -> Message {
        Message::SetPositionTargetGlobalInt {
            lat: 0,
            lon: 0,
            alt: 15.0,
            speed: 5.0,
        }
    }

    #[test]
    fn guided_only_permits_targets_and_nothing_else() {
        let w = CommandWhitelist::guided_only();
        assert!(w.permits(&target()));
        assert!(!w.permits(&takeoff()));
        assert!(!w.permits(&Message::SetMode {
            mode: FlightMode::Auto
        }));
    }

    #[test]
    fn standard_permits_takeoff_but_not_arm() {
        let w = CommandWhitelist::standard();
        assert!(w.permits(&takeoff()));
        assert!(!w.permits(&Message::CommandLong {
            command: MavCmd::ComponentArmDisarm,
            params: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        }));
        assert!(w.permits(&Message::SetMode {
            mode: FlightMode::Loiter
        }));
        assert!(!w.permits(&Message::SetMode {
            mode: FlightMode::Auto
        }));
    }

    #[test]
    fn full_permits_everything() {
        let w = CommandWhitelist::full();
        for cmd in MavCmd::ALL {
            assert!(w.permits(&Message::CommandLong {
                command: cmd,
                params: [0.0; 7]
            }));
        }
        for mode in FlightMode::ALL {
            assert!(w.permits(&Message::SetMode { mode }));
        }
    }

    #[test]
    fn custom_templates_compose() {
        let w = CommandWhitelist::named("survey-only")
            .allow_position_targets()
            .allow_cmd(MavCmd::DoMountControl);
        assert!(w.permits(&Message::CommandLong {
            command: MavCmd::DoMountControl,
            params: [0.0; 7]
        }));
        assert!(!w.permits(&takeoff()));
        assert_eq!(w.name, "survey-only");
    }
}
