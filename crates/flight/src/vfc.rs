//! Virtual flight controllers (VFCs).
//!
//! MAVProxy presents each virtual drone with its own VFC connection
//! (paper Section 4.3). The VFC restricts which commands are accepted
//! (whitelist + geofence) and presents a *virtualized view* of the
//! drone:
//!
//! - before the virtual drone's waypoint is reached, its drone
//!   appears idle on the ground at the waypoint, and all commands are
//!   declined;
//! - as the real drone approaches, the presented drone automatically
//!   "takes off" to meet the physical drone's position;
//! - while active, commands control the physical drone, subject to
//!   the whitelist and the geofence;
//! - when the virtual drone finishes (or is forced to finish), the
//!   presented drone lands and stays landed for the rest of the
//!   flight.
//!
//! Virtual drones with continuous device access see the real
//! position throughout (to avoid contradicting their sensor
//! readings), but commands are still declined off-waypoint.

use std::rc::Rc;

use androne_hal::GeoPoint;
use androne_mavlink::{deg_to_e7, FlightMode, Message};
use androne_simkern::{StateHash, StateHasher};

use crate::geofence::Geofence;
use crate::whitelist::CommandWhitelist;

/// VFC lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VfcState {
    /// Waypoint not yet reached: synthetic grounded view, commands
    /// declined.
    Pending,
    /// Real drone is approaching: synthetic takeoff animation,
    /// commands still declined.
    Approaching,
    /// Flight control granted.
    Active,
    /// Geofence breached: commands declined while the flight
    /// container recovers the drone.
    BreachRecovery,
    /// Finished: synthetic landing view, commands declined forever.
    Finished,
}

/// The VFC's verdict on a client message.
#[derive(Debug, Clone, PartialEq)]
pub enum VfcDecision {
    /// Forward to the real flight controller.
    Forward(Message),
    /// Decline, replying with the given message.
    Deny(Message),
}

/// A per-virtual-drone virtual flight controller.
#[derive(Debug, Clone)]
pub struct Vfc {
    /// Owning client (virtual drone container name).
    pub client: String,
    /// Command whitelist template in force.
    pub whitelist: CommandWhitelist,
    /// Geofence applied while active.
    pub geofence: Geofence,
    /// Whether the client sees the real drone position off-waypoint
    /// (continuous-device virtual drones).
    pub continuous_view: bool,
    state: VfcState,
    /// Synthetic altitude for takeoff/landing animation, m.
    synthetic_alt: f64,
    /// Horizontal position frozen at finish time.
    frozen_position: Option<GeoPoint>,
}

impl Vfc {
    /// Creates a pending VFC for `client`, fenced around its waypoint.
    pub fn new(
        client: impl Into<String>,
        whitelist: CommandWhitelist,
        geofence: Geofence,
        continuous_view: bool,
    ) -> Self {
        Vfc {
            client: client.into(),
            whitelist,
            geofence,
            continuous_view,
            state: VfcState::Pending,
            synthetic_alt: 0.0,
            frozen_position: None,
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> VfcState {
        self.state
    }

    /// Marks the real drone as approaching the waypoint (synthetic
    /// takeoff begins).
    pub fn begin_approach(&mut self) {
        if self.state == VfcState::Pending {
            self.state = VfcState::Approaching;
        }
    }

    /// Grants flight control (waypoint reached).
    pub fn activate(&mut self) {
        self.state = VfcState::Active;
    }

    /// Retargets the VFC at the virtual drone's next waypoint: the
    /// geofence moves and the view returns to the grounded-idle
    /// presentation until the drone approaches again.
    pub fn retarget(&mut self, geofence: Geofence) {
        self.geofence = geofence;
        self.state = VfcState::Pending;
        self.synthetic_alt = 0.0;
        self.frozen_position = None;
    }

    /// Revokes flight control permanently; the view lands and stays
    /// landed.
    pub fn finish(&mut self, last_position: GeoPoint) {
        self.state = VfcState::Finished;
        self.frozen_position = Some(last_position);
        self.synthetic_alt = last_position.altitude;
    }

    /// Enters geofence-breach recovery: commands decline until
    /// recovery completes.
    pub fn begin_breach_recovery(&mut self) -> Message {
        self.state = VfcState::BreachRecovery;
        Message::StatusText {
            severity: 2,
            text: "geofence breach: control suspended".into(),
        }
    }

    /// Recovery complete: control returns to the virtual drone.
    pub fn end_breach_recovery(&mut self) -> Message {
        self.state = VfcState::Active;
        Message::StatusText {
            severity: 6,
            text: "geofence recovery complete: control returned".into(),
        }
    }

    fn deny(&self, msg: &Message, why: &str) -> VfcDecision {
        match msg {
            Message::CommandLong { command, .. } => VfcDecision::Deny(Message::CommandAck {
                command: *command,
                result: androne_mavlink::MavResult::Denied,
            }),
            _ => VfcDecision::Deny(Message::StatusText {
                severity: 4,
                text: format!("declined: {why}"),
            }),
        }
    }

    /// Screens one client message.
    pub fn on_client_message(&mut self, msg: &Message) -> VfcDecision {
        match self.state {
            VfcState::Pending | VfcState::Approaching => {
                self.deny(msg, "not at waypoint")
            }
            VfcState::BreachRecovery => self.deny(msg, "geofence recovery in progress"),
            VfcState::Finished => self.deny(msg, "waypoint completed"),
            VfcState::Active => {
                if !self.whitelist.permits(msg) {
                    return self.deny(msg, "command not in whitelist");
                }
                // Guided targets outside the geofence are declined
                // up front rather than flown and breached.
                if let Message::SetPositionTargetGlobalInt { lat, lon, alt, .. } = msg {
                    let target = GeoPoint::new(
                        androne_mavlink::e7_to_deg(*lat),
                        androne_mavlink::e7_to_deg(*lon),
                        *alt as f64,
                    );
                    if !self.geofence.contains(&target) {
                        return self.deny(msg, "target outside geofence");
                    }
                }
                VfcDecision::Forward(msg.clone())
            }
        }
    }

    /// Whether telemetry currently passes through unmodified. The
    /// proxy hoists this check out of its per-message fan-out loop:
    /// identity-view clients receive shared references instead of
    /// per-message rewrites.
    pub fn telemetry_is_identity(&self) -> bool {
        matches!(self.state, VfcState::Active | VfcState::BreachRecovery)
    }

    /// Transforms one telemetry message into this client's view.
    /// `real_position` is the physical drone's current position.
    pub fn transform_telemetry(&mut self, msg: &Message, real_position: &GeoPoint) -> Message {
        match self.transform_patch(msg, real_position) {
            Some(patched) => patched,
            None => msg.clone(),
        }
    }

    /// Shared-reference variant: returns the input reference when the
    /// view leaves the message untouched, allocating only for
    /// genuinely rewritten messages.
    pub fn transform_telemetry_shared(
        &mut self,
        msg: &Rc<Message>,
        real_position: &GeoPoint,
    ) -> Rc<Message> {
        match self.transform_patch(msg, real_position) {
            Some(patched) => Rc::new(patched),
            None => Rc::clone(msg),
        }
    }

    /// Core view logic: `None` means the message passes through
    /// unchanged, `Some` carries the rewritten view.
    fn transform_patch(&mut self, msg: &Message, real_position: &GeoPoint) -> Option<Message> {
        match self.state {
            VfcState::Active | VfcState::BreachRecovery => None,
            VfcState::Pending => match msg {
                Message::GlobalPositionInt { time_boot_ms, .. } => {
                    if self.continuous_view {
                        None
                    } else {
                        // Idle on the ground at the waypoint.
                        Some(synthetic_position(*time_boot_ms, &self.geofence.center, 0.0))
                    }
                }
                Message::Heartbeat { .. } => Some(Message::Heartbeat {
                    mode: FlightMode::Loiter,
                    armed: false,
                    system_status: 3,
                }),
                // A grounded drone draws idle current; leaking the
                // real in-flight draw would contradict the view.
                Message::SysStatus { voltage_mv, .. } if !self.continuous_view => {
                    Some(Message::SysStatus {
                        voltage_mv: *voltage_mv,
                        current_ca: 30,
                        battery_remaining: 100,
                    })
                }
                _ => None,
            },
            VfcState::Approaching => match msg {
                Message::GlobalPositionInt { time_boot_ms, .. } => {
                    if self.continuous_view {
                        return None;
                    }
                    // Climb the synthetic drone toward the real
                    // altitude to "meet" the physical drone.
                    let target = real_position.altitude;
                    self.synthetic_alt = (self.synthetic_alt + 0.5).min(target);
                    Some(synthetic_position(
                        *time_boot_ms,
                        &self.geofence.center,
                        self.synthetic_alt,
                    ))
                }
                Message::Heartbeat { .. } => Some(Message::Heartbeat {
                    mode: FlightMode::Guided,
                    armed: true,
                    system_status: 4,
                }),
                _ => None,
            },
            VfcState::Finished => match msg {
                Message::GlobalPositionInt { time_boot_ms, .. } => {
                    // Descend the synthetic drone, then stay landed.
                    self.synthetic_alt = (self.synthetic_alt - 0.5).max(0.0);
                    let pos = self.frozen_position.unwrap_or(self.geofence.center);
                    Some(synthetic_position(*time_boot_ms, &pos, self.synthetic_alt))
                }
                Message::Heartbeat { .. } => Some(Message::Heartbeat {
                    mode: if self.synthetic_alt > 0.0 {
                        FlightMode::Land
                    } else {
                        FlightMode::Loiter
                    },
                    armed: self.synthetic_alt > 0.0,
                    system_status: if self.synthetic_alt > 0.0 { 4 } else { 3 },
                }),
                _ => None,
            },
        }
    }
}

impl StateHash for Vfc {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_str(&self.client);
        self.whitelist.state_hash(h);
        self.geofence.state_hash(h);
        h.write_bool(self.continuous_view);
        h.write_u8(match self.state {
            VfcState::Pending => 0,
            VfcState::Approaching => 1,
            VfcState::Active => 2,
            VfcState::BreachRecovery => 3,
            VfcState::Finished => 4,
        });
        h.write_f64(self.synthetic_alt);
        match self.frozen_position {
            Some(p) => {
                h.write_u8(1);
                p.state_hash(h);
            }
            None => h.write_u8(0),
        }
    }
}

fn synthetic_position(time_boot_ms: u32, at: &GeoPoint, alt: f64) -> Message {
    Message::GlobalPositionInt {
        time_boot_ms,
        lat: deg_to_e7(at.latitude),
        lon: deg_to_e7(at.longitude),
        relative_alt: (alt * 1000.0) as i32,
        vx: 0,
        vy: 0,
        vz: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use androne_mavlink::{MavCmd, MavResult};

    fn waypoint() -> GeoPoint {
        GeoPoint::new(43.6084298, -85.8110359, 15.0)
    }

    fn vfc() -> Vfc {
        Vfc::new(
            "vd1",
            CommandWhitelist::standard(),
            Geofence::new(waypoint(), 30.0),
            false,
        )
    }

    fn takeoff_cmd() -> Message {
        Message::CommandLong {
            command: MavCmd::NavTakeoff,
            params: [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 15.0],
        }
    }

    fn position_msg() -> Message {
        Message::GlobalPositionInt {
            time_boot_ms: 1000,
            lat: deg_to_e7(43.60),
            lon: deg_to_e7(-85.80),
            relative_alt: 20_000,
            vx: 100,
            vy: 0,
            vz: 0,
        }
    }

    #[test]
    fn pending_vfc_declines_commands() {
        let mut v = vfc();
        match v.on_client_message(&takeoff_cmd()) {
            VfcDecision::Deny(Message::CommandAck { result, .. }) => {
                assert_eq!(result, MavResult::Denied)
            }
            other => panic!("expected denial, got {other:?}"),
        }
    }

    #[test]
    fn pending_view_shows_drone_idle_at_waypoint() {
        let mut v = vfc();
        let real = GeoPoint::new(43.0, -85.0, 40.0); // Far away.
        let out = v.transform_telemetry(&position_msg(), &real);
        match out {
            Message::GlobalPositionInt {
                lat, relative_alt, ..
            } => {
                assert_eq!(lat, deg_to_e7(waypoint().latitude));
                assert_eq!(relative_alt, 0, "on the ground");
            }
            other => panic!("{other:?}"),
        }
        // Heartbeat shows a disarmed, standby drone.
        let hb = v.transform_telemetry(
            &Message::Heartbeat {
                mode: FlightMode::Auto,
                armed: true,
                system_status: 4,
            },
            &real,
        );
        assert_eq!(
            hb,
            Message::Heartbeat {
                mode: FlightMode::Loiter,
                armed: false,
                system_status: 3
            }
        );
    }

    #[test]
    fn continuous_view_exposes_real_position_but_declines_commands() {
        let mut v = Vfc::new(
            "vd1",
            CommandWhitelist::standard(),
            Geofence::new(waypoint(), 30.0),
            true,
        );
        let real = GeoPoint::new(43.0, -85.0, 40.0);
        let out = v.transform_telemetry(&position_msg(), &real);
        assert_eq!(out, position_msg(), "real position passes through");
        assert!(matches!(
            v.on_client_message(&takeoff_cmd()),
            VfcDecision::Deny(_)
        ));
    }

    #[test]
    fn approaching_view_takes_off_to_meet_the_drone() {
        let mut v = vfc();
        v.begin_approach();
        let real = waypoint();
        let mut last_alt = -1i32;
        for _ in 0..40 {
            if let Message::GlobalPositionInt { relative_alt, .. } =
                v.transform_telemetry(&position_msg(), &real)
            {
                assert!(relative_alt >= last_alt, "monotonic climb");
                last_alt = relative_alt;
            }
        }
        assert_eq!(last_alt, 15_000, "met the real drone's altitude");
    }

    #[test]
    fn active_vfc_forwards_whitelisted_commands() {
        let mut v = vfc();
        v.activate();
        assert!(matches!(
            v.on_client_message(&takeoff_cmd()),
            VfcDecision::Forward(_)
        ));
        // Arm/disarm is not in the standard template.
        let arm = Message::CommandLong {
            command: MavCmd::ComponentArmDisarm,
            params: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        };
        assert!(matches!(v.on_client_message(&arm), VfcDecision::Deny(_)));
    }

    #[test]
    fn guided_targets_outside_geofence_are_declined() {
        let mut v = vfc();
        v.activate();
        let outside = waypoint().offset_m(100.0, 0.0, 0.0);
        let msg = Message::SetPositionTargetGlobalInt {
            lat: deg_to_e7(outside.latitude),
            lon: deg_to_e7(outside.longitude),
            alt: 15.0,
            speed: 5.0,
        };
        assert!(matches!(v.on_client_message(&msg), VfcDecision::Deny(_)));
        let inside = waypoint().offset_m(10.0, 0.0, 0.0);
        let msg = Message::SetPositionTargetGlobalInt {
            lat: deg_to_e7(inside.latitude),
            lon: deg_to_e7(inside.longitude),
            alt: 15.0,
            speed: 5.0,
        };
        assert!(matches!(v.on_client_message(&msg), VfcDecision::Forward(_)));
    }

    #[test]
    fn breach_recovery_suspends_and_returns_control() {
        let mut v = vfc();
        v.activate();
        let notice = v.begin_breach_recovery();
        assert!(matches!(notice, Message::StatusText { severity: 2, .. }));
        assert!(matches!(
            v.on_client_message(&takeoff_cmd()),
            VfcDecision::Deny(_)
        ));
        let done = v.end_breach_recovery();
        assert!(matches!(done, Message::StatusText { severity: 6, .. }));
        assert!(matches!(
            v.on_client_message(&takeoff_cmd()),
            VfcDecision::Forward(_)
        ));
    }

    #[test]
    fn finished_vfc_lands_and_stays_landed() {
        let mut v = vfc();
        v.activate();
        let last = waypoint().offset_m(5.0, 5.0, 0.0);
        v.finish(last);
        assert!(matches!(
            v.on_client_message(&takeoff_cmd()),
            VfcDecision::Deny(_)
        ));
        let real = waypoint().offset_m(500.0, 0.0, 30.0); // Drone flew on.
        let mut final_alt = i32::MAX;
        for _ in 0..60 {
            if let Message::GlobalPositionInt {
                relative_alt, lat, ..
            } = v.transform_telemetry(&position_msg(), &real)
            {
                final_alt = relative_alt;
                assert_eq!(lat, deg_to_e7(last.latitude), "view frozen at waypoint");
            }
        }
        assert_eq!(final_alt, 0, "landed view");
    }
}

#[cfg(test)]
mod sys_status_tests {
    use super::*;
    use crate::whitelist::CommandWhitelist;

    #[test]
    fn pending_view_hides_in_flight_battery_draw() {
        let center = GeoPoint::new(43.6, -85.8, 15.0);
        let mut vfc = Vfc::new(
            "vd",
            CommandWhitelist::standard(),
            Geofence::new(center, 30.0),
            false,
        );
        let real = Message::SysStatus {
            voltage_mv: 11_800,
            current_ca: 1_450, // 14.5 A: clearly flying.
            battery_remaining: 62,
        };
        let seen = vfc.transform_telemetry(&real, &center);
        match seen {
            Message::SysStatus { current_ca, .. } => {
                assert!(current_ca < 100, "grounded view shows idle draw")
            }
            other => panic!("{other:?}"),
        }
        // Continuous-view tenants see the truth (their sensors would
        // contradict a synthetic view).
        let mut vfc_cont = Vfc::new(
            "vd2",
            CommandWhitelist::standard(),
            Geofence::new(center, 30.0),
            true,
        );
        assert_eq!(vfc_cont.transform_telemetry(&real, &center), real);
        // Active tenants see the truth too.
        vfc.activate();
        assert_eq!(vfc.transform_telemetry(&real, &center), real);
    }
}
