//! The flight controller (ArduPilot Copter equivalent).
//!
//! A cascade controller with ArduPilot's structure: a 400 Hz *fast
//! loop* running the rate PIDs and motor mixer (the paper's real-time
//! deadline — 2500 µs — comes from this loop), an attitude P stage,
//! and a position/velocity stage feeding desired lean angles. Flight
//! modes follow Copter semantics: Stabilize, AltHold, Auto, Guided,
//! Loiter, RTL, Land.

use androne_hal::{GeoPoint, Vec3, G};
use androne_mavlink::{deg_to_e7, e7_to_deg, FlightMode, MavCmd, MavResult, Message};
use androne_simkern::{StateHash, StateHasher};

use crate::estimator::StateEstimate;
use crate::physics::{wrap_pi, AirframeParams};
use crate::pid::Pid;

/// The fast loop frequency, Hz (ArduPilot Copter default).
pub const FAST_LOOP_HZ: f64 = 400.0;

/// Maximum commanded lean angle, radians (~20 degrees).
pub const MAX_LEAN: f64 = 0.35;

/// Default horizontal speed for autonomous modes, m/s.
pub const DEFAULT_SPEED: f64 = 5.0;

/// A guided-mode position target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuidedTarget {
    /// Where to go.
    pub position: GeoPoint,
    /// Ground speed to get there, m/s.
    pub speed: f64,
}

/// Internal vertical state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// On the ground, motors stopped.
    Grounded,
    /// Climbing to the takeoff altitude.
    TakingOff { target_alt: f64 },
    /// Normal flight.
    Flying,
    /// Descending to land.
    Landing,
}

/// The ArduPilot-style flight controller.
pub struct FlightController {
    params: AirframeParams,
    home: GeoPoint,
    mode: FlightMode,
    armed: bool,
    phase: Phase,
    guided_target: Option<GuidedTarget>,
    /// Position captured on Loiter entry (or after reaching a target).
    hold_position: Option<GeoPoint>,
    yaw_target: f64,
    /// Auto-mode mission.
    mission: Vec<GeoPoint>,
    mission_index: usize,
    /// In-progress MAVLink mission upload: expected count and items
    /// received so far.
    mission_upload: Option<(u16, Vec<GeoPoint>)>,
    /// Commanded gimbal orientation `(pitch, yaw)`, radians; applied
    /// to the mount by the SITL harness.
    pub mount_target: Option<(f64, f64)>,

    vel_n: Pid,
    vel_e: Pid,
    climb: Pid,
    rate_roll: Pid,
    rate_pitch: Pid,
    rate_yaw: Pid,

    loop_count: u64,
}

impl FlightController {
    /// Creates a disarmed controller at `home` in Stabilize mode.
    pub fn new(params: AirframeParams, home: GeoPoint) -> Self {
        FlightController {
            params,
            home,
            mode: FlightMode::Stabilize,
            armed: false,
            phase: Phase::Grounded,
            guided_target: None,
            hold_position: None,
            yaw_target: 0.0,
            mission: Vec::new(),
            mission_index: 0,
            mission_upload: None,
            mount_target: None,
            vel_n: Pid::new(1.2, 0.15, 0.0, 3.0, 1.0),
            vel_e: Pid::new(1.2, 0.15, 0.0, 3.0, 1.0),
            climb: Pid::new(0.09, 0.05, 0.0, 0.25, 1.5),
            rate_roll: Pid::new(0.06, 0.03, 0.001, 0.35, 0.2),
            rate_pitch: Pid::new(0.06, 0.03, 0.001, 0.35, 0.2),
            rate_yaw: Pid::new(0.5, 0.05, 0.0, 0.3, 0.2),
            loop_count: 0,
        }
    }

    /// Current flight mode.
    pub fn mode(&self) -> FlightMode {
        self.mode
    }

    /// Whether the vehicle is armed.
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// Home (launch) position.
    pub fn home(&self) -> GeoPoint {
        self.home
    }

    /// Loads an Auto-mode mission.
    pub fn set_mission(&mut self, waypoints: Vec<GeoPoint>) {
        self.mission = waypoints;
        self.mission_index = 0;
    }

    /// The active guided target, if any.
    pub fn guided_target(&self) -> Option<GuidedTarget> {
        self.guided_target
    }

    fn set_mode(&mut self, mode: FlightMode, est: &StateEstimate) {
        self.mode = mode;
        match mode {
            FlightMode::Loiter | FlightMode::AltHold => {
                self.hold_position = Some(est.position);
            }
            FlightMode::Guided
                // Keep any existing target; hold in place until one
                // arrives.
                if self.guided_target.is_none() => {
                    self.hold_position = Some(est.position);
                }
            FlightMode::Land => self.phase = Phase::Landing,
            FlightMode::Rtl => {}
            _ => {}
        }
    }

    /// Handles one inbound MAVLink message, returning replies.
    pub fn handle_message(&mut self, msg: &Message, est: &StateEstimate) -> Vec<Message> {
        let mut out = Vec::new();
        match msg {
            Message::SetMode { mode } => {
                self.set_mode(*mode, est);
            }
            Message::SetPositionTargetGlobalInt {
                lat,
                lon,
                alt,
                speed,
            }
                if self.mode == FlightMode::Guided => {
                    self.guided_target = Some(GuidedTarget {
                        position: GeoPoint::new(e7_to_deg(*lat), e7_to_deg(*lon), *alt as f64),
                        speed: if *speed > 0.0 {
                            *speed as f64
                        } else {
                            DEFAULT_SPEED
                        },
                    });
                    self.hold_position = None;
                    if self.phase == Phase::Grounded && self.armed {
                        // A guided target while grounded implies an
                        // implicit takeoff to the target altitude.
                        self.phase = Phase::TakingOff {
                            target_alt: (*alt as f64).max(2.0),
                        };
                    }
                }
            Message::CommandLong { command, params } => {
                let result = self.handle_command(*command, params, est);
                out.push(Message::CommandAck {
                    command: *command,
                    result,
                });
            }
            // MAVLink mission upload: COUNT -> REQUEST(0) ->
            // ITEM(0) -> REQUEST(1) -> ... -> ACK(accepted).
            Message::MissionCount { count } => {
                if *count == 0 {
                    self.mission.clear();
                    self.mission_index = 0;
                    out.push(Message::MissionAck { result: 0 });
                } else {
                    self.mission_upload = Some((*count, Vec::new()));
                    out.push(Message::MissionRequestInt { seq: 0 });
                }
            }
            Message::MissionItemInt { seq, lat, lon, alt } => {
                if let Some((count, mut items)) = self.mission_upload.take() {
                    if *seq as usize != items.len() {
                        // Out-of-order item: error ack (MAV_MISSION_
                        // INVALID_SEQUENCE = 13) and abort the upload.
                        out.push(Message::MissionAck { result: 13 });
                    } else {
                        items.push(GeoPoint::new(
                            e7_to_deg(*lat),
                            e7_to_deg(*lon),
                            *alt as f64,
                        ));
                        if items.len() == count as usize {
                            self.mission = items;
                            self.mission_index = 0;
                            out.push(Message::MissionAck { result: 0 });
                        } else {
                            let next = items.len() as u16;
                            self.mission_upload = Some((count, items));
                            out.push(Message::MissionRequestInt { seq: next });
                        }
                    }
                }
            }
            _ => {}
        }
        out
    }

    /// The loaded Auto-mode mission (diagnostics).
    pub fn mission(&self) -> &[GeoPoint] {
        &self.mission
    }

    fn handle_command(
        &mut self,
        command: MavCmd,
        params: &[f32; 7],
        est: &StateEstimate,
    ) -> MavResult {
        match command {
            MavCmd::ComponentArmDisarm => {
                if params[0] >= 0.5 {
                    self.armed = true;
                    MavResult::Accepted
                } else if self.phase == Phase::Grounded || params[1] == 21196.0 {
                    self.armed = false;
                    self.phase = Phase::Grounded;
                    MavResult::Accepted
                } else {
                    MavResult::Denied
                }
            }
            MavCmd::NavTakeoff => {
                if !self.armed {
                    return MavResult::Denied;
                }
                if self.phase == Phase::Grounded {
                    self.phase = Phase::TakingOff {
                        target_alt: (params[6] as f64).max(1.0),
                    };
                    self.hold_position = Some(est.position);
                }
                MavResult::Accepted
            }
            MavCmd::NavLand => {
                self.phase = Phase::Landing;
                self.mode = FlightMode::Land;
                MavResult::Accepted
            }
            MavCmd::NavReturnToLaunch => {
                self.mode = FlightMode::Rtl;
                MavResult::Accepted
            }
            MavCmd::ConditionYaw => {
                self.yaw_target = (params[0] as f64).to_radians();
                MavResult::Accepted
            }
            MavCmd::DoSetMode => match androne_mavlink::FlightMode::from_custom_mode(
                params[1] as u32,
            ) {
                Ok(mode) => {
                    self.set_mode(mode, est);
                    MavResult::Accepted
                }
                Err(_) => MavResult::Failed,
            },
            MavCmd::DoMountControl => {
                // param1 = pitch (deg), param3 = yaw (deg).
                self.mount_target = Some((
                    (params[0] as f64).to_radians(),
                    (params[2] as f64).to_radians(),
                ));
                MavResult::Accepted
            }
            MavCmd::NavWaypoint => MavResult::Accepted,
        }
    }

    /// Desired horizontal velocity and altitude for the current mode.
    fn navigation(&mut self, est: &StateEstimate) -> (Vec3, f64) {
        let hold = |p: &Option<GeoPoint>, est: &StateEstimate| -> (Vec3, f64) {
            match p {
                Some(pos) => {
                    let d = pos.ned_from(&est.position);
                    (
                        Vec3::new(0.8 * d.x, 0.8 * d.y, 0.0).clamp_abs(DEFAULT_SPEED),
                        pos.altitude,
                    )
                }
                None => (Vec3::ZERO, est.position.altitude),
            }
        };
        match self.mode {
            FlightMode::Guided => match self.guided_target {
                Some(t) => {
                    let d = t.position.ned_from(&est.position);
                    if d.norm_xy() < 1.0 && (d.z).abs() < 1.0 {
                        // Target reached: hold there.
                        self.hold_position = Some(t.position);
                        self.guided_target = None;
                        return hold(&self.hold_position, est);
                    }
                    let dist = d.norm_xy().max(1e-6);
                    let speed = t.speed.min(0.8 * dist.max(1.0));
                    (
                        Vec3::new(speed * d.x / dist, speed * d.y / dist, 0.0),
                        t.position.altitude,
                    )
                }
                None => hold(&self.hold_position, est),
            },
            FlightMode::Loiter | FlightMode::AltHold | FlightMode::Stabilize => {
                hold(&self.hold_position, est)
            }
            FlightMode::Rtl => {
                let d = self.home.ned_from(&est.position);
                if d.norm_xy() < 1.5 {
                    self.phase = Phase::Landing;
                    return (Vec3::ZERO, est.position.altitude);
                }
                let dist = d.norm_xy();
                let speed = DEFAULT_SPEED.min(0.8 * dist);
                (
                    Vec3::new(speed * d.x / dist, speed * d.y / dist, 0.0),
                    est.position.altitude.max(15.0),
                )
            }
            FlightMode::Auto => {
                if self.mission_index >= self.mission.len() {
                    return hold(&self.hold_position, est);
                }
                let wp = self.mission[self.mission_index];
                let d = wp.ned_from(&est.position);
                if d.norm_xy() < 1.5 {
                    self.mission_index += 1;
                    self.hold_position = Some(wp);
                    return hold(&self.hold_position, est);
                }
                let dist = d.norm_xy();
                let speed = DEFAULT_SPEED.min(0.8 * dist);
                (
                    Vec3::new(speed * d.x / dist, speed * d.y / dist, 0.0),
                    wp.altitude,
                )
            }
            FlightMode::Land => (Vec3::ZERO, 0.0),
        }
    }

    /// One 400 Hz fast-loop iteration: returns normalized motor
    /// outputs.
    pub fn fast_loop(&mut self, est: &StateEstimate, on_ground: bool) -> [f64; 4] {
        self.loop_count += 1;
        let dt = 1.0 / FAST_LOOP_HZ;
        if !self.armed {
            self.phase = Phase::Grounded;
            return [0.0; 4];
        }

        // Vertical phase handling.
        let (vel_des, alt_des, climb_override) = match self.phase {
            Phase::Grounded => {
                return [0.0; 4];
            }
            Phase::TakingOff { target_alt } => {
                if est.position.altitude >= target_alt - 0.3 {
                    self.phase = Phase::Flying;
                    // Hold at the takeoff point *at altitude* (the
                    // captured hold position is at ground level).
                    let mut hold = self.hold_position.unwrap_or(est.position);
                    hold.altitude = target_alt;
                    self.hold_position = Some(hold);
                }
                let hold = self
                    .hold_position
                    .unwrap_or(est.position);
                let d = hold.ned_from(&est.position);
                (
                    Vec3::new(0.8 * d.x, 0.8 * d.y, 0.0).clamp_abs(2.0),
                    target_alt,
                    Some(2.0),
                )
            }
            Phase::Landing => {
                if on_ground {
                    self.armed = false;
                    self.phase = Phase::Grounded;
                    self.reset_controllers();
                    return [0.0; 4];
                }
                (Vec3::ZERO, 0.0, Some(-0.75))
            }
            Phase::Flying => {
                let (v, a) = self.navigation(est);
                (v, a, None)
            }
        };

        // Velocity -> desired acceleration -> desired lean angles.
        let a_n = self.vel_n.update(vel_des.x - est.velocity.x, dt);
        let a_e = self.vel_e.update(vel_des.y - est.velocity.y, dt);
        let (sy, cy) = est.attitude.yaw.sin_cos();
        let pitch_des = (-(a_n * cy + a_e * sy) / G).clamp(-MAX_LEAN, MAX_LEAN);
        let roll_des = ((-a_n * sy + a_e * cy) / G).clamp(-MAX_LEAN, MAX_LEAN);

        // Altitude -> climb rate -> thrust.
        let climb_des = match climb_override {
            Some(c) => c,
            None => (1.0 * (alt_des - est.position.altitude)).clamp(-1.5, 2.5),
        };
        let climb_actual = -est.velocity.z;
        let thr_adj = self.climb.update(climb_des - climb_actual, dt);
        let tilt = (est.attitude.roll.cos() * est.attitude.pitch.cos()).max(0.5);
        let throttle = (self.params.hover_throttle() / tilt + thr_adj).clamp(0.0, 0.95);

        // Attitude P -> desired rates.
        let yaw_des = if vel_des.norm_xy() > 1.0 {
            vel_des.y.atan2(vel_des.x)
        } else {
            self.yaw_target
        };
        self.yaw_target = yaw_des;
        let rate_des = Vec3::new(
            (5.0 * (roll_des - est.attitude.roll)).clamp(-2.5, 2.5),
            (5.0 * (pitch_des - est.attitude.pitch)).clamp(-2.5, 2.5),
            (2.5 * wrap_pi(yaw_des - est.attitude.yaw)).clamp(-1.5, 1.5),
        );

        // Rate PIDs -> normalized torque commands.
        let r = self.rate_roll.update(rate_des.x - est.rates.x, dt);
        let p = self.rate_pitch.update(rate_des.y - est.rates.y, dt);
        let y = self.rate_yaw.update(rate_des.z - est.rates.z, dt);

        // Mixer (X config; signs match the physics motor layout).
        let mix = [
            throttle - r + p + y, // 0: front-right (CCW)
            throttle + r - p + y, // 1: rear-left  (CCW)
            throttle + r + p - y, // 2: front-left (CW)
            throttle - r - p - y, // 3: rear-right (CW)
        ];
        mix.map(|m| m.clamp(0.0, 1.0))
    }

    fn reset_controllers(&mut self) {
        self.vel_n.reset();
        self.vel_e.reset();
        self.climb.reset();
        self.rate_roll.reset();
        self.rate_pitch.reset();
        self.rate_yaw.reset();
    }

    /// Whether a takeoff/climb phase is in progress (diagnostics).
    pub fn airborne_phase(&self) -> bool {
        !matches!(self.phase, Phase::Grounded)
    }

    /// Periodic telemetry. Call once per fast loop; messages are
    /// emitted at their standard rates (heartbeat 1 Hz, attitude
    /// 10 Hz, position 4 Hz, sys-status 1 Hz).
    pub fn telemetry(&self, est: &StateEstimate, battery_v: f64, battery_a: f64) -> Vec<Message> {
        let mut out = Vec::new();
        let n = self.loop_count;
        let time_boot_ms = (n as f64 * 1000.0 / FAST_LOOP_HZ) as u32;
        if n.is_multiple_of(400) {
            out.push(Message::Heartbeat {
                mode: self.mode,
                armed: self.armed,
                system_status: if self.armed { 4 } else { 3 },
            });
            out.push(Message::SysStatus {
                voltage_mv: (battery_v * 1000.0) as u16,
                current_ca: (battery_a * 100.0) as i16,
                battery_remaining: 100,
            });
        }
        if n.is_multiple_of(40) {
            out.push(Message::Attitude {
                time_boot_ms,
                roll: est.attitude.roll as f32,
                pitch: est.attitude.pitch as f32,
                yaw: est.attitude.yaw as f32,
            });
        }
        if n.is_multiple_of(100) {
            out.push(Message::GlobalPositionInt {
                time_boot_ms,
                lat: deg_to_e7(est.position.latitude),
                lon: deg_to_e7(est.position.longitude),
                relative_alt: (est.position.altitude * 1000.0) as i32,
                vx: (est.velocity.x * 100.0) as i16,
                vy: (est.velocity.y * 100.0) as i16,
                vz: (est.velocity.z * 100.0) as i16,
            });
        }
        out
    }
}

impl StateHash for FlightController {
    fn state_hash(&self, h: &mut StateHasher) {
        self.params.state_hash(h);
        self.home.state_hash(h);
        h.write_u32(self.mode.custom_mode());
        h.write_bool(self.armed);
        match self.phase {
            Phase::Grounded => h.write_u8(0),
            Phase::TakingOff { target_alt } => {
                h.write_u8(1);
                h.write_f64(target_alt);
            }
            Phase::Flying => h.write_u8(2),
            Phase::Landing => h.write_u8(3),
        }
        match self.guided_target {
            Some(t) => {
                h.write_u8(1);
                t.position.state_hash(h);
                h.write_f64(t.speed);
            }
            None => h.write_u8(0),
        }
        match self.hold_position {
            Some(p) => {
                h.write_u8(1);
                p.state_hash(h);
            }
            None => h.write_u8(0),
        }
        h.write_f64(self.yaw_target);
        h.write_usize(self.mission.len());
        for wp in &self.mission {
            wp.state_hash(h);
        }
        h.write_usize(self.mission_index);
        match &self.mission_upload {
            Some((count, items)) => {
                h.write_u8(1);
                h.write_u32(u32::from(*count));
                h.write_usize(items.len());
                for wp in items {
                    wp.state_hash(h);
                }
            }
            None => h.write_u8(0),
        }
        match self.mount_target {
            Some((pitch, yaw)) => {
                h.write_u8(1);
                h.write_f64(pitch);
                h.write_f64(yaw);
            }
            None => h.write_u8(0),
        }
        self.vel_n.state_hash(h);
        self.vel_e.state_hash(h);
        self.climb.state_hash(h);
        self.rate_roll.state_hash(h);
        self.rate_pitch.state_hash(h);
        self.rate_yaw.state_hash(h);
        h.write_u64(self.loop_count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use androne_hal::Attitude;
    use androne_mavlink::MavResult;

    const HOME: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

    fn fc() -> FlightController {
        FlightController::new(AirframeParams::f450_prototype(), HOME)
    }

    fn est_at(home: GeoPoint, alt: f64) -> StateEstimate {
        StateEstimate {
            position: GeoPoint::new(home.latitude, home.longitude, alt),
            velocity: Vec3::ZERO,
            attitude: Attitude::LEVEL,
            rates: Vec3::ZERO,
        }
    }

    fn cmd(fc: &mut FlightController, command: MavCmd, params: [f32; 7]) -> MavResult {
        let est = est_at(HOME, 0.0);
        let replies = fc.handle_message(&Message::CommandLong { command, params }, &est);
        match replies.first() {
            Some(Message::CommandAck { result, .. }) => *result,
            other => panic!("expected ack, got {other:?}"),
        }
    }

    #[test]
    fn boots_disarmed_in_stabilize() {
        let fc = fc();
        assert!(!fc.armed());
        assert_eq!(fc.mode(), FlightMode::Stabilize);
    }

    #[test]
    fn arm_then_takeoff_is_accepted() {
        let mut fc = fc();
        assert_eq!(
            cmd(&mut fc, MavCmd::ComponentArmDisarm, [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
            MavResult::Accepted
        );
        assert!(fc.armed());
        assert_eq!(
            cmd(&mut fc, MavCmd::NavTakeoff, [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 15.0]),
            MavResult::Accepted
        );
        assert!(fc.airborne_phase());
    }

    #[test]
    fn takeoff_without_arming_is_denied() {
        let mut fc = fc();
        assert_eq!(
            cmd(&mut fc, MavCmd::NavTakeoff, [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 15.0]),
            MavResult::Denied
        );
    }

    #[test]
    fn in_air_disarm_requires_the_force_magic() {
        let mut fc = fc();
        cmd(&mut fc, MavCmd::ComponentArmDisarm, [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        cmd(&mut fc, MavCmd::NavTakeoff, [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 15.0]);
        // Plain disarm denied while airborne.
        assert_eq!(
            cmd(&mut fc, MavCmd::ComponentArmDisarm, [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
            MavResult::Denied
        );
        assert!(fc.armed());
        // ArduPilot's forced-disarm magic number works.
        assert_eq!(
            cmd(
                &mut fc,
                MavCmd::ComponentArmDisarm,
                [0.0, 21196.0, 0.0, 0.0, 0.0, 0.0, 0.0]
            ),
            MavResult::Accepted
        );
        assert!(!fc.armed());
    }

    #[test]
    fn guided_target_is_ignored_outside_guided_mode() {
        let mut fc = fc();
        let est = est_at(HOME, 15.0);
        fc.handle_message(
            &Message::SetPositionTargetGlobalInt {
                lat: deg_to_e7(HOME.latitude),
                lon: deg_to_e7(HOME.longitude),
                alt: 20.0,
                speed: 5.0,
            },
            &est,
        );
        assert!(fc.guided_target().is_none(), "target dropped in Stabilize");
        fc.handle_message(
            &Message::SetMode {
                mode: FlightMode::Guided,
            },
            &est,
        );
        fc.handle_message(
            &Message::SetPositionTargetGlobalInt {
                lat: deg_to_e7(HOME.latitude),
                lon: deg_to_e7(HOME.longitude),
                alt: 20.0,
                speed: 5.0,
            },
            &est,
        );
        assert!(fc.guided_target().is_some());
    }

    #[test]
    fn zero_speed_target_defaults_to_cruise() {
        let mut fc = fc();
        let est = est_at(HOME, 15.0);
        fc.handle_message(
            &Message::SetMode {
                mode: FlightMode::Guided,
            },
            &est,
        );
        fc.handle_message(
            &Message::SetPositionTargetGlobalInt {
                lat: deg_to_e7(HOME.latitude),
                lon: deg_to_e7(HOME.longitude),
                alt: 20.0,
                speed: 0.0,
            },
            &est,
        );
        assert_eq!(fc.guided_target().unwrap().speed, DEFAULT_SPEED);
    }

    #[test]
    fn do_set_mode_parses_custom_mode() {
        let mut fc = fc();
        assert_eq!(
            cmd(
                &mut fc,
                MavCmd::DoSetMode,
                [1.0, FlightMode::Loiter.custom_mode() as f32, 0.0, 0.0, 0.0, 0.0, 0.0]
            ),
            MavResult::Accepted
        );
        assert_eq!(fc.mode(), FlightMode::Loiter);
        assert_eq!(
            cmd(&mut fc, MavCmd::DoSetMode, [1.0, 42.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
            MavResult::Failed
        );
    }

    #[test]
    fn disarmed_fast_loop_keeps_motors_off() {
        let mut fc = fc();
        let est = est_at(HOME, 0.0);
        assert_eq!(fc.fast_loop(&est, true), [0.0; 4]);
    }

    #[test]
    fn telemetry_rates_match_standards() {
        let mut fc = fc();
        let est = est_at(HOME, 0.0);
        let mut heartbeats = 0;
        let mut attitudes = 0;
        let mut positions = 0;
        for _ in 0..400 {
            fc.fast_loop(&est, true);
            for msg in fc.telemetry(&est, 12.6, 0.0) {
                match msg {
                    Message::Heartbeat { .. } => heartbeats += 1,
                    Message::Attitude { .. } => attitudes += 1,
                    Message::GlobalPositionInt { .. } => positions += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(heartbeats, 1, "1 Hz heartbeat");
        assert_eq!(attitudes, 10, "10 Hz attitude");
        assert_eq!(positions, 4, "4 Hz position");
    }
}
