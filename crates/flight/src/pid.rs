//! PID controller primitive used throughout the control cascade.

/// A PID controller with output limiting and anti-windup.
#[derive(Debug, Clone)]
pub struct Pid {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    /// Symmetric output limit.
    pub out_limit: f64,
    /// Symmetric integrator limit (anti-windup).
    pub int_limit: f64,
    integ: f64,
    last_err: Option<f64>,
}

impl Pid {
    /// Creates a PID with the given gains and limits.
    pub fn new(kp: f64, ki: f64, kd: f64, out_limit: f64, int_limit: f64) -> Self {
        Pid {
            kp,
            ki,
            kd,
            out_limit,
            int_limit,
            integ: 0.0,
            last_err: None,
        }
    }

    /// A proportional-only controller.
    pub fn p_only(kp: f64, out_limit: f64) -> Self {
        Pid::new(kp, 0.0, 0.0, out_limit, 0.0)
    }

    /// Updates with error `err` over timestep `dt`, returning the
    /// limited output.
    pub fn update(&mut self, err: f64, dt: f64) -> f64 {
        if dt <= 0.0 {
            return 0.0;
        }
        self.integ = (self.integ + err * dt).clamp(-self.int_limit, self.int_limit);
        let deriv = match self.last_err {
            Some(last) => (err - last) / dt,
            None => 0.0,
        };
        self.last_err = Some(err);
        (self.kp * err + self.ki * self.integ + self.kd * deriv)
            .clamp(-self.out_limit, self.out_limit)
    }

    /// Clears the integrator and derivative history (mode changes,
    /// landing).
    pub fn reset(&mut self) {
        self.integ = 0.0;
        self.last_err = None;
    }
}

impl androne_simkern::StateHash for Pid {
    fn state_hash(&self, h: &mut androne_simkern::StateHasher) {
        h.write_f64(self.kp);
        h.write_f64(self.ki);
        h.write_f64(self.kd);
        h.write_f64(self.out_limit);
        h.write_f64(self.int_limit);
        h.write_f64(self.integ);
        match self.last_err {
            Some(e) => {
                h.write_u8(1);
                h.write_f64(e);
            }
            None => h.write_u8(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_action() {
        let mut pid = Pid::p_only(2.0, 10.0);
        assert_eq!(pid.update(3.0, 0.01), 6.0);
    }

    #[test]
    fn output_is_limited() {
        let mut pid = Pid::p_only(100.0, 1.0);
        assert_eq!(pid.update(5.0, 0.01), 1.0);
        assert_eq!(pid.update(-5.0, 0.01), -1.0);
    }

    #[test]
    fn integrator_winds_up_bounded() {
        let mut pid = Pid::new(0.0, 1.0, 0.0, 10.0, 0.5);
        for _ in 0..1_000 {
            pid.update(1.0, 0.01);
        }
        assert!(pid.update(1.0, 0.01) <= 0.5 + 1e-9);
    }

    #[test]
    fn derivative_opposes_rapid_change() {
        let mut pid = Pid::new(0.0, 0.0, 1.0, 500.0, 0.0);
        pid.update(0.0, 0.01);
        let out = pid.update(1.0, 0.01);
        assert!(out > 50.0, "d-term reacts to the step: {out}");
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = Pid::new(0.0, 1.0, 1.0, 10.0, 5.0);
        pid.update(1.0, 0.1);
        pid.reset();
        assert_eq!(pid.update(0.0, 0.1), 0.0);
    }

    #[test]
    fn zero_dt_is_safe() {
        let mut pid = Pid::p_only(1.0, 1.0);
        assert_eq!(pid.update(1.0, 0.0), 0.0);
    }
}
