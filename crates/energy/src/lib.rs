//! # androne-energy
//!
//! Energy modelling and billing for the AnDrone reproduction:
//!
//! - [`dorling`]: the Dorling et al. multirotor power model the
//!   paper's flight planner is built on (exact and linearized).
//! - [`battery`]: battery packs as plannable energy budgets with
//!   landing reserves.
//! - [`billing`]: the paper's utility-style energy billing (max
//!   charge → energy cap) plus storage/network metering.
//! - [`power_meter`]: the SBC power model behind Figure 13.

pub mod battery;
pub mod billing;
pub mod dorling;
pub mod power_meter;

pub use battery::BatteryPack;
pub use billing::{Bill, BillingLedger, PriceSchedule};
pub use dorling::{DorlingModel, RHO};
pub use power_meter::{PowerMeter, PowerModel};
