//! Battery energy accounting for flight planning.

/// A drone battery pack viewed as an energy budget.
#[derive(Debug, Clone, Copy)]
pub struct BatteryPack {
    /// Usable capacity, joules.
    pub capacity_j: f64,
    /// Fraction held back as a landing reserve (never planned
    /// against).
    pub reserve_fraction: f64,
    consumed_j: f64,
}

impl BatteryPack {
    /// A fresh pack of `capacity_j` with a reserve fraction.
    pub fn new(capacity_j: f64, reserve_fraction: f64) -> Self {
        BatteryPack {
            capacity_j: capacity_j.max(0.0),
            reserve_fraction: reserve_fraction.clamp(0.0, 0.9),
            consumed_j: 0.0,
        }
    }

    /// The prototype's Turnigy 3S 5000 mAh pack with a 20% reserve.
    pub fn turnigy_3s_5000() -> Self {
        BatteryPack::new(11.1 * 5.0 * 3600.0, 0.20)
    }

    /// Joules available for planning (capacity minus reserve minus
    /// consumption).
    pub fn plannable_j(&self) -> f64 {
        (self.capacity_j * (1.0 - self.reserve_fraction) - self.consumed_j).max(0.0)
    }

    /// Joules consumed so far.
    pub fn consumed_j(&self) -> f64 {
        self.consumed_j
    }

    /// Whether `j` more joules fit within the plannable budget.
    pub fn can_afford(&self, j: f64) -> bool {
        j <= self.plannable_j()
    }

    /// Draws `j` joules. Returns `false` (without drawing) if that
    /// would eat into the reserve.
    pub fn draw(&mut self, j: f64) -> bool {
        if !self.can_afford(j) {
            return false;
        }
        self.consumed_j += j.max(0.0);
        true
    }

    /// Unconditional drain (actual flight, as opposed to planning) —
    /// may eat into the reserve.
    pub fn force_drain(&mut self, j: f64) {
        self.consumed_j += j.max(0.0);
    }

    /// State of charge in `0.0..=1.0`.
    pub fn state_of_charge(&self) -> f64 {
        (1.0 - self.consumed_j / self.capacity_j.max(1e-9)).clamp(0.0, 1.0)
    }

    /// Degrades the cells: usable capacity shrinks to `health`
    /// (clamped to `(0.05, 1.0]`) of its current value. Consumed
    /// energy is untouched, so degradation mid-flight only removes
    /// headroom — it never refunds joules already spent.
    pub fn degrade(&mut self, health: f64) {
        self.capacity_j *= health.clamp(0.05, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plannable_excludes_reserve() {
        let b = BatteryPack::new(1000.0, 0.2);
        assert_eq!(b.plannable_j(), 800.0);
    }

    #[test]
    fn draw_respects_reserve() {
        let mut b = BatteryPack::new(1000.0, 0.2);
        assert!(b.draw(700.0));
        assert!(!b.draw(200.0), "would eat into the reserve");
        assert_eq!(b.consumed_j(), 700.0, "failed draw takes nothing");
        assert!(b.draw(100.0));
    }

    #[test]
    fn force_drain_can_use_reserve() {
        let mut b = BatteryPack::new(1000.0, 0.2);
        b.force_drain(950.0);
        assert_eq!(b.plannable_j(), 0.0);
        assert!((b.state_of_charge() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn degradation_shrinks_plannable_headroom() {
        let mut b = BatteryPack::new(1000.0, 0.2);
        b.force_drain(100.0);
        b.degrade(0.8);
        assert!((b.capacity_j - 800.0).abs() < 1e-9);
        assert!((b.plannable_j() - 540.0).abs() < 1e-9);
        assert_eq!(b.consumed_j(), 100.0, "consumption is not refunded");
        b.degrade(-3.0);
        assert!(b.capacity_j > 0.0, "health is clamped to a floor");
    }

    #[test]
    fn prototype_pack_capacity() {
        let b = BatteryPack::turnigy_3s_5000();
        assert!((b.capacity_j - 199_800.0).abs() < 1.0);
    }
}
