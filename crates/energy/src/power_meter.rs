//! SBC power metering (the Monsoon Power Monitor stand-in).
//!
//! Figure 13 measures the Raspberry Pi's power at rest in every
//! AnDrone configuration, normalized to stock Android Things: all
//! configurations land within 3% of stock, ~1.7 W idle with three
//! virtual drones, and 3.4 W when fully stressed regardless of
//! configuration (the CPU saturates either way).
//!
//! The model: power interpolates between the board's idle and
//! saturated draw with CPU utilization, plus a small per-running-
//! container housekeeping term (idle Android instances still wake
//! for timers and heartbeats).

/// Power model for the RPi3-class board.
#[derive(Debug, Clone, Copy)]
pub struct PowerModel {
    /// Idle draw with a single stock Android Things instance, W.
    pub idle_w: f64,
    /// Fully stressed draw, W.
    pub max_w: f64,
    /// Additional idle draw per extra running container, W.
    pub per_container_w: f64,
}

impl PowerModel {
    /// The prototype board, calibrated to Figure 13 (idle ~1.65 W
    /// stock, 1.7 W with 3 virtual drones, 3.4 W stressed).
    pub fn rpi3() -> Self {
        PowerModel {
            idle_w: 1.655,
            max_w: 3.4,
            per_container_w: 0.009,
        }
    }

    /// Instantaneous board power, watts.
    ///
    /// `cpu_utilization` in `0.0..=1.0`; `extra_containers` counts
    /// running containers beyond the single stock instance.
    pub fn power_w(&self, cpu_utilization: f64, extra_containers: usize) -> f64 {
        let u = cpu_utilization.clamp(0.0, 1.0);
        let idle = self.idle_w + self.per_container_w * extra_containers as f64;
        // Saturated power is the same regardless of container count:
        // the CPU can only burn so much.
        (idle + (self.max_w - idle) * u).min(self.max_w)
    }
}

/// Integrates board power into energy over simulated time.
#[derive(Debug, Clone, Default)]
pub struct PowerMeter {
    energy_j: f64,
}

impl PowerMeter {
    /// Creates a meter at zero.
    pub fn new() -> Self {
        PowerMeter::default()
    }

    /// Accumulates `watts` over `seconds`.
    pub fn integrate(&mut self, watts: f64, seconds: f64) {
        self.energy_j += watts.max(0.0) * seconds.max(0.0);
    }

    /// Total energy recorded, joules.
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_with_three_vdrones_matches_figure_13() {
        let m = PowerModel::rpi3();
        // Three virtual drones + device + flight container = 5 extra.
        let p = m.power_w(0.0, 5);
        assert!((1.68..1.72).contains(&p), "power {p} W");
        // Within 3% of stock idle.
        assert!(p / m.power_w(0.0, 0) < 1.03);
    }

    #[test]
    fn stressed_power_is_config_independent() {
        let m = PowerModel::rpi3();
        assert_eq!(m.power_w(1.0, 0), 3.4);
        assert_eq!(m.power_w(1.0, 5), 3.4);
    }

    #[test]
    fn board_power_is_negligible_next_to_flight_power() {
        // Section 6.4: "even consumer-level drone batteries are rated
        // to allow a power draw of well over 100 W".
        let m = PowerModel::rpi3();
        assert!(m.power_w(1.0, 5) / 150.0 < 0.03);
    }

    #[test]
    fn meter_integrates() {
        let mut meter = PowerMeter::new();
        meter.integrate(2.0, 10.0);
        meter.integrate(-5.0, 10.0); // Clamped.
        assert_eq!(meter.energy_j(), 20.0);
    }
}
