//! The Dorling et al. multirotor power model.
//!
//! AnDrone's flight planner "is based on the multirotor drone energy
//! consumption model and the drone delivery routing algorithm
//! developed by Dorling, et al." (paper Section 4, citing *Vehicle
//! Routing Problems for Drone Delivery*, IEEE T-SMC 2017). The model
//! derives hover power from helicopter momentum theory:
//!
//! ```text
//! P(m) = (W + m)^(3/2) · sqrt(g³ / (2 ρ ζ n))
//! ```
//!
//! where `W` is frame+battery mass, `m` payload mass, `ρ` air
//! density, `ζ` rotor disk area, and `n` the rotor count. Dorling et
//! al. linearize it as `P ≈ α(W + m) + β` for use inside the VRP;
//! both forms are provided.

use androne_hal::G;

/// Air density at sea level, kg/m³.
pub const RHO: f64 = 1.225;

/// Parameters of the Dorling power model for one drone type.
#[derive(Debug, Clone, Copy)]
pub struct DorlingModel {
    /// Frame + battery mass `W`, kg.
    pub frame_mass: f64,
    /// Rotor disk area `ζ`, m² per rotor.
    pub disk_area: f64,
    /// Number of rotors `n`.
    pub rotors: u32,
    /// Powertrain efficiency divisor applied to the ideal power.
    pub efficiency: f64,
    /// Cruise speed used for leg-energy estimates, m/s.
    pub cruise_speed: f64,
}

impl DorlingModel {
    /// The paper's F450 prototype (matches
    /// `androne_flight::AirframeParams::f450_prototype`).
    pub fn f450_prototype() -> Self {
        DorlingModel {
            frame_mass: 1.5,
            disk_area: std::f64::consts::PI * 0.12 * 0.12,
            rotors: 4,
            efficiency: 0.55,
            cruise_speed: 5.0,
        }
    }

    /// Exact hover power with payload `m`, watts.
    pub fn hover_power_w(&self, payload_kg: f64) -> f64 {
        let total = (self.frame_mass + payload_kg.max(0.0)).max(0.0);
        let ideal = total.powf(1.5)
            * (G.powi(3) / (2.0 * RHO * self.disk_area * self.rotors as f64)).sqrt();
        ideal / self.efficiency
    }

    /// Linearization coefficients `(alpha, beta)` such that
    /// `P ≈ alpha·(W+m) + beta`, fitted over `0..=max_payload`.
    pub fn linearize(&self, max_payload_kg: f64) -> (f64, f64) {
        // Two-point fit at zero payload and max payload (what the
        // VRP uses; the curve is gently convex so the fit is tight).
        let p0 = self.hover_power_w(0.0);
        let p1 = self.hover_power_w(max_payload_kg);
        let m0 = self.frame_mass;
        let m1 = self.frame_mass + max_payload_kg;
        let alpha = (p1 - p0) / (m1 - m0);
        let beta = p0 - alpha * m0;
        (alpha, beta)
    }

    /// Linearized hover power, watts.
    pub fn hover_power_linear_w(&self, payload_kg: f64, max_payload_kg: f64) -> f64 {
        let (alpha, beta) = self.linearize(max_payload_kg);
        alpha * (self.frame_mass + payload_kg) + beta
    }

    /// Energy to fly a leg of `distance_m` at cruise speed with
    /// payload `m`, joules. Cruise power is approximated by hover
    /// power (Dorling et al.'s conservative assumption).
    pub fn leg_energy_j(&self, distance_m: f64, payload_kg: f64) -> f64 {
        let t = distance_m.max(0.0) / self.cruise_speed;
        self.hover_power_w(payload_kg) * t
    }

    /// Time to fly a leg at cruise speed, seconds.
    pub fn leg_time_s(&self, distance_m: f64) -> f64 {
        distance_m.max(0.0) / self.cruise_speed
    }

    /// Hover endurance on a battery of `capacity_j`, seconds.
    pub fn hover_endurance_s(&self, capacity_j: f64, payload_kg: f64) -> f64 {
        capacity_j / self.hover_power_w(payload_kg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f450_hover_power_is_realistic() {
        let m = DorlingModel::f450_prototype();
        let p = m.hover_power_w(0.0);
        // Measured F450 hover power is roughly 150-220 W.
        assert!((120.0..260.0).contains(&p), "hover power {p} W");
    }

    #[test]
    fn power_grows_superlinearly_with_payload() {
        let m = DorlingModel::f450_prototype();
        let p0 = m.hover_power_w(0.0);
        let p1 = m.hover_power_w(0.5);
        let p2 = m.hover_power_w(1.0);
        assert!(p1 > p0 && p2 > p1);
        assert!(p2 - p1 > p1 - p0, "convex in payload");
    }

    #[test]
    fn linearization_is_tight_within_fit_range() {
        let m = DorlingModel::f450_prototype();
        for payload in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let exact = m.hover_power_w(payload);
            let lin = m.hover_power_linear_w(payload, 1.0);
            let err = (exact - lin).abs() / exact;
            assert!(err < 0.03, "payload {payload}: {err}");
        }
    }

    #[test]
    fn leg_energy_scales_with_distance() {
        let m = DorlingModel::f450_prototype();
        let e1 = m.leg_energy_j(100.0, 0.0);
        let e2 = m.leg_energy_j(200.0, 0.0);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
        assert_eq!(m.leg_energy_j(-5.0, 0.0), 0.0, "negative distance clamps");
    }

    #[test]
    fn endurance_matches_battery_math() {
        let m = DorlingModel::f450_prototype();
        // 3S 5000 mAh ≈ 199.8 kJ; at ~180 W that's ~15-20 min, the
        // typical F450 figure.
        let endurance = m.hover_endurance_s(11.1 * 5.0 * 3600.0, 0.0);
        assert!(
            (600.0..1_500.0).contains(&endurance),
            "endurance {endurance} s"
        );
    }
}
