//! Energy-based billing.
//!
//! "AnDrone ... bills drone usage based on energy consumption, like a
//! traditional energy utility service" (paper Section 2). Users
//! specify a maximum billing charge when ordering, which caps the
//! energy their virtual drone may consume at its waypoints.
//! Traditional cloud resources (storage, network) bill on regular
//! usage.

use std::collections::BTreeMap;

/// Provider price schedule.
#[derive(Debug, Clone, Copy)]
pub struct PriceSchedule {
    /// Cents per kilojoule of drone energy.
    pub cents_per_kj: f64,
    /// Cents per gigabyte-month of cloud storage.
    pub cents_per_gb_month: f64,
    /// Cents per gigabyte of network transfer.
    pub cents_per_gb_transfer: f64,
}

impl PriceSchedule {
    /// A default schedule (energy priced well above grid rates — it
    /// is delivered airborne).
    pub fn default_schedule() -> Self {
        PriceSchedule {
            cents_per_kj: 2.5,
            cents_per_gb_month: 2.0,
            cents_per_gb_transfer: 8.0,
        }
    }

    /// Converts a user's maximum charge (cents) into an energy cap
    /// (joules).
    pub fn energy_cap_j(&self, max_charge_cents: f64) -> f64 {
        (max_charge_cents.max(0.0) / self.cents_per_kj) * 1_000.0
    }
}

/// One customer's running bill.
#[derive(Debug, Clone, Default)]
pub struct Bill {
    /// Drone energy consumed, joules.
    pub energy_j: f64,
    /// Drone energy refunded (unserved allotment on a terminally
    /// failed order), joules.
    pub energy_refund_j: f64,
    /// Cloud storage used, GB-months.
    pub storage_gb_months: f64,
    /// Network transfer, GB.
    pub transfer_gb: f64,
}

impl Bill {
    /// Energy the customer actually pays for, joules.
    pub fn net_energy_j(&self) -> f64 {
        (self.energy_j - self.energy_refund_j).max(0.0)
    }

    /// Total in cents under a schedule.
    pub fn total_cents(&self, prices: &PriceSchedule) -> f64 {
        self.net_energy_j() / 1_000.0 * prices.cents_per_kj
            + self.storage_gb_months * prices.cents_per_gb_month
            + self.transfer_gb * prices.cents_per_gb_transfer
    }
}

/// Per-account usage metering.
#[derive(Debug, Default)]
pub struct BillingLedger {
    bills: BTreeMap<String, Bill>,
}

impl BillingLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        BillingLedger::default()
    }

    /// Records drone energy use for an account.
    pub fn charge_energy(&mut self, account: &str, joules: f64) {
        self.bills.entry(account.to_string()).or_default().energy_j += joules.max(0.0);
    }

    /// Credits energy back to an account (an order the service could
    /// not complete: the virtual drone was terminally interrupted and
    /// never resumed).
    pub fn refund_energy(&mut self, account: &str, joules: f64) {
        self.bills
            .entry(account.to_string())
            .or_default()
            .energy_refund_j += joules.max(0.0);
    }

    /// Records storage use.
    pub fn charge_storage(&mut self, account: &str, gb_months: f64) {
        self.bills
            .entry(account.to_string())
            .or_default()
            .storage_gb_months += gb_months.max(0.0);
    }

    /// Records network transfer.
    pub fn charge_transfer(&mut self, account: &str, gb: f64) {
        self.bills.entry(account.to_string()).or_default().transfer_gb += gb.max(0.0);
    }

    /// The bill for an account (zeroed if never charged).
    pub fn bill(&self, account: &str) -> Bill {
        self.bills.get(account).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_charge_converts_to_energy_cap() {
        let p = PriceSchedule::default_schedule();
        // The example spec allots 45,000 J; at 2.5 c/kJ that is a
        // $1.13 maximum charge.
        let cap = p.energy_cap_j(112.5);
        assert!((cap - 45_000.0).abs() < 1.0);
        assert_eq!(p.energy_cap_j(-5.0), 0.0);
    }

    #[test]
    fn bill_totals_all_components() {
        let p = PriceSchedule::default_schedule();
        let mut ledger = BillingLedger::new();
        ledger.charge_energy("alice", 10_000.0);
        ledger.charge_storage("alice", 2.0);
        ledger.charge_transfer("alice", 1.0);
        let total = ledger.bill("alice").total_cents(&p);
        assert!((total - (25.0 + 4.0 + 8.0)).abs() < 1e-9);
    }

    #[test]
    fn refunds_credit_energy_but_never_go_negative() {
        let p = PriceSchedule::default_schedule();
        let mut ledger = BillingLedger::new();
        ledger.charge_energy("alice", 10_000.0);
        ledger.refund_energy("alice", 4_000.0);
        assert!((ledger.bill("alice").net_energy_j() - 6_000.0).abs() < 1e-9);
        ledger.refund_energy("alice", 100_000.0);
        assert_eq!(ledger.bill("alice").net_energy_j(), 0.0);
        assert!((ledger.bill("alice").total_cents(&p) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn accounts_are_independent() {
        let mut ledger = BillingLedger::new();
        ledger.charge_energy("alice", 100.0);
        assert_eq!(ledger.bill("bob").energy_j, 0.0);
    }
}
