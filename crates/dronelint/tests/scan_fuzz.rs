//! Property fuzz for the lexical scanner: random pastings of the
//! nastiest Rust surface syntax — raw strings with `#` fences, nested
//! block comments, byte/char literals, unterminated everything — must
//! never panic the preprocessor, must preserve the line count
//! (violation line numbers depend on it), and must keep every token
//! column inside its line.

use dronelint::scan::{preprocess, tokenize};
use proptest::prelude::*;

/// Deliberately adversarial source fragments. Unbalanced delimiters
/// are the point: truncated raw strings, stray `*/`, lone quotes.
const FRAGMENTS: &[&str] = &[
    "fn f() {",
    "}",
    "let x = 1;",
    "r\"raw\"",
    "r#\"fenced \" quote\"#",
    "r##\"deep \"# fence\"##",
    "br#\"byte raw\"#",
    "r#\"unterminated",
    "/*",
    "*/",
    "/* nested /* deep /* deeper */ */ */",
    "// line comment with \" quote and /* opener",
    "\"plain string\"",
    "\"unterminated string",
    "\"escape \\\" inside\"",
    "b'x'",
    "b'\\''",
    "'\\''",
    "'\"'",
    "'a'",
    "'unterminated",
    "&'static str",
    "#[cfg(test)]",
    "#[test]",
    "mod tests {",
    "x.unwrap();",
    "HashMap::new()",
    "// dronelint:allow(R1, fuzz reason)",
    "\\",
    "\"",
    "#",
    "r#",
    "r",
    "'",
    "   ",
];

fn assemble(idxs: &[usize], seps: &[u8]) -> String {
    let mut src = String::new();
    for (k, &i) in idxs.iter().enumerate() {
        src.push_str(FRAGMENTS[i % FRAGMENTS.len()]);
        match seps.get(k).copied().unwrap_or(0) % 3 {
            0 => src.push('\n'),
            1 => src.push(' '),
            _ => {}
        }
    }
    src
}

proptest! {
    #[test]
    fn preprocess_never_panics_and_preserves_line_count(
        idxs in prop::collection::vec(0usize..FRAGMENTS.len(), 0..60),
        seps in prop::collection::vec(0u8..3, 0..60),
    ) {
        let src = assemble(&idxs, &seps);
        let lines = preprocess(&src);
        prop_assert_eq!(
            lines.len(),
            src.lines().count(),
            "line count drifted for {:?}",
            src
        );
        for (line, raw) in lines.iter().zip(src.lines()) {
            // Blanking only removes or replaces — the code view never
            // grows past the original line.
            prop_assert!(
                line.code.chars().count() <= raw.chars().count(),
                "code view longer than source line: {:?} from {:?}",
                line.code,
                raw
            );
        }
    }

    #[test]
    fn tokenize_columns_stay_inside_the_line(
        idxs in prop::collection::vec(0usize..FRAGMENTS.len(), 0..40),
        seps in prop::collection::vec(0u8..3, 0..40),
    ) {
        let src = assemble(&idxs, &seps);
        for line in preprocess(&src) {
            let len = line.code.chars().count();
            for tok in tokenize(&line.code) {
                prop_assert!(tok.col >= 1, "columns are 1-based");
                prop_assert!(
                    tok.col + tok.text.chars().count() - 1 <= len,
                    "token {:?}@{} overruns line of length {}",
                    tok.text,
                    tok.col,
                    len
                );
                prop_assert!(
                    !tok.text.chars().any(char::is_whitespace),
                    "token {:?} contains whitespace",
                    tok.text
                );
            }
        }
    }

    #[test]
    fn scan_source_never_panics_on_fuzzed_input(
        idxs in prop::collection::vec(0usize..FRAGMENTS.len(), 0..40),
        seps in prop::collection::vec(0u8..3, 0..40),
    ) {
        let src = assemble(&idxs, &seps);
        // The full single-file pipeline (rules + suppressions) on a
        // sim-crate path: must terminate without panicking, and every
        // violation must point at a real line.
        let n = src.lines().count();
        for v in dronelint::scan_source("crates/simkern/src/fuzz.rs", &src) {
            prop_assert!(v.line >= 1 && v.line <= n.max(1), "line {} of {}", v.line, n);
        }
    }
}

#[test]
fn cfg_test_edges_survive_adversarial_neighbors() {
    // The latch cases that historically break attribute scanners: the
    // attribute inside a string, inside a comment, and a real one
    // immediately after an unterminated-looking raw string.
    let src = "let s = \"#[cfg(test)]\";\nlet t = r#\"#[test]\"#;\n// #[cfg(test)]\nfn live() { s.a(); }\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
    let lines = preprocess(src);
    assert!(
        lines[..4].iter().all(|l| !l.in_test),
        "quoted/commented attributes must not latch"
    );
    assert!(lines[5].in_test && lines[6].in_test, "the real region latches");
}
