//! Fixture-driven tests for the v2 graph rules: R8 island-boundary
//! purity, R9 no-lock/no-blocking-I/O in island-reachable code, and
//! R10 RNG stream discipline — exact line numbers, suppression-scope
//! coverage, and a baseline-ratchet test driven through the binary's
//! JSON output path.

use dronelint::{analyze_sources, scan_source, Violation};

fn pair(path: &str, text: &str) -> (String, String) {
    (path.to_string(), text.to_string())
}

fn rule_hits<'a>(violations: &'a [Violation], rule: &str) -> Vec<&'a Violation> {
    violations.iter().filter(|v| v.rule == rule).collect()
}

#[test]
fn r8_fixture_flags_the_nested_impure_type_with_its_chain() {
    let a = analyze_sources(&[pair(
        "crates/core/src/fleet.rs",
        include_str!("fixtures/r8_island_impure.rs"),
    )]);
    let r8 = rule_hits(&a.violations, "R8");
    assert_eq!(r8.len(), 1, "{:?}", a.violations);
    // Flagged at `Inner`'s definition — the type actually holding the
    // `Rc` — with the boundary-to-type provenance chain spelled out.
    assert_eq!(r8[0].line, 4);
    assert!(r8[0].message.contains("`Inner`"), "{}", r8[0].message);
    assert!(r8[0].message.contains("`Rc`"), "{}", r8[0].message);
    assert!(r8[0].message.contains("via Work -> Inner"), "{}", r8[0].message);
}

#[test]
fn r8_suppression_binds_to_the_definition_line_and_needs_a_reason() {
    let silenced = analyze_sources(&[pair(
        "crates/core/src/fleet.rs",
        "// dronelint:allow(R8, cache is rebuilt per worker, never crosses threads)\n\
         pub struct Work { cache: Rc<u32> }\n\
         pub fn run_island(work: Work) {}\n",
    )]);
    assert!(
        rule_hits(&silenced.violations, "R8").is_empty(),
        "{:?}",
        silenced.violations
    );

    // A reasonless allow suppresses nothing and is itself R0.
    let reasonless = analyze_sources(&[pair(
        "crates/core/src/fleet.rs",
        "// dronelint:allow(R8)\n\
         pub struct Work { cache: Rc<u32> }\n\
         pub fn run_island(work: Work) {}\n",
    )]);
    assert_eq!(rule_hits(&reasonless.violations, "R8").len(), 1);
    assert_eq!(rule_hits(&reasonless.violations, "R0").len(), 1);

    // The allow covers the definition line only — an allow parked on
    // some other type does not bleed over.
    let elsewhere = analyze_sources(&[pair(
        "crates/core/src/fleet.rs",
        "// dronelint:allow(R8, wrong type entirely)\n\
         pub struct Other { id: u64 }\n\
         pub struct Work { cache: Rc<u32> }\n\
         pub fn run_island(work: Work) {}\n",
    )]);
    let r8 = rule_hits(&elsewhere.violations, "R8");
    assert_eq!(r8.len(), 1);
    assert_eq!(r8[0].line, 3);
}

#[test]
fn r9_fixture_flags_locks_sleep_and_blocking_io_at_exact_lines() {
    let a = analyze_sources(&[pair(
        "crates/core/src/fleet.rs",
        include_str!("fixtures/r9_island_blocking.rs"),
    )]);
    let got: Vec<usize> = rule_hits(&a.violations, "R9").iter().map(|v| v.line).collect();
    // Lines 5 (lock), 10 (sleep), 11 (File::open), 12 (TcpStream) are
    // island-reachable (`run_island` -> `helper`); the lock in
    // `off_island` (line 17) is outside every island span.
    assert_eq!(got, vec![5, 10, 11, 12], "{:?}", a.violations);
}

#[test]
fn r9_suppression_with_reason_silences_exactly_one_line() {
    let a = analyze_sources(&[pair(
        "crates/core/src/fleet.rs",
        "pub fn run_island(work: u64) -> u64 {\n\
         \x20   // dronelint:allow(R9, startup-only: pool is still single-threaded here)\n\
         \x20   let _guard = SHARED.lock();\n\
         \x20   let _again = SHARED.lock();\n\
         \x20   work\n\
         }\n",
    )]);
    let r9 = rule_hits(&a.violations, "R9");
    assert_eq!(r9.len(), 1, "{:?}", a.violations);
    assert_eq!(r9[0].line, 4, "the carried allow covers line 3 only");
}

#[test]
fn r10_fixture_flags_every_adhoc_rng_constructor() {
    let got: Vec<(&str, usize)> = scan_source(
        "crates/simkern/src/bad_rng.rs",
        include_str!("fixtures/r10_adhoc_rng.rs"),
    )
    .into_iter()
    .map(|v| (v.rule, v.line))
    .collect();
    assert_eq!(got, vec![("R10", 5), ("R10", 9), ("R10", 13)]);
}

#[test]
fn r10_exempts_the_rng_funnel_home_and_non_sim_crates() {
    let fixture = include_str!("fixtures/r10_adhoc_rng.rs");
    // `simkern::rng` is where the audited funnels live: constructing
    // RNGs there is the point.
    assert!(scan_source("crates/simkern/src/rng.rs", fixture).is_empty());
    // Outside SIM_CRATES the rule does not bind.
    assert!(scan_source("crates/sdk/src/x.rs", fixture).is_empty());
}

#[test]
fn r10_suppression_with_reason_silences_the_line() {
    let src = "// dronelint:allow(R10, golden-vector test harness needs the raw seed)\n\
               pub fn make(seed: u64) -> SmallRng { SmallRng::seed_from_u64(seed) }\n";
    assert!(scan_source("crates/simkern/src/x.rs", src).is_empty());
}

fn field<'a>(v: &'a serde_json::Value, key: &str) -> &'a serde_json::Value {
    v.get(key).unwrap_or_else(|| panic!("report missing field {key:?}"))
}

fn num(v: &serde_json::Value, key: &str) -> f64 {
    field(v, key).as_f64().unwrap_or_else(|| panic!("field {key:?} is not a number"))
}

/// The JSON output path, end to end through the real binary: a seeded
/// violation is absorbed by a covering baseline (exit 0), reported
/// when the baseline is empty (exit 1), and its baseline entry goes
/// stale once the violation is fixed (exit 1) — all read back from
/// the `--out` report, which must stay valid JSON throughout.
#[test]
fn json_report_baseline_ratchet_via_the_binary() {
    let tmp = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("json_ratchet");
    let src_dir = tmp.join("crates/simkern/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    let report = tmp.join("report.json");

    let run = |root: &std::path::Path, baseline: Option<&std::path::Path>| {
        let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_dronelint"));
        cmd.arg("--root").arg(root).arg("--out").arg(&report);
        if let Some(b) = baseline {
            cmd.arg("--baseline").arg(b);
        }
        let out = cmd.output().expect("run dronelint");
        let text = std::fs::read_to_string(&report).expect("report written");
        let json: serde_json::Value = serde_json::from_str(&text).expect("report is valid JSON");
        (out.status.code(), json)
    };

    std::fs::write(
        src_dir.join("bad.rs"),
        "pub fn f() { let m = HashMap::new(); }\n",
    )
    .expect("write");

    // Empty baseline: the violation is new, exit 1, and the report
    // carries both the diagnostic and the graph stats block.
    let (code, json) = run(&tmp, None);
    assert_eq!(code, Some(1));
    let v = field(&json, "violations").as_array().expect("violations array");
    assert_eq!(v.len(), 1);
    assert_eq!(field(&v[0], "rule").as_str(), Some("R1"));
    assert_eq!(field(&v[0], "path").as_str(), Some("crates/simkern/src/bad.rs"));
    assert_eq!(num(&v[0], "line"), 1.0);
    assert_eq!(num(&json, "baselined"), 0.0);
    assert_eq!(num(field(&json, "graph"), "files_scanned"), 1.0);

    // A covering baseline absorbs it: exit 0, empty violations.
    let baseline = tmp.join("baseline.json");
    std::fs::write(
        &baseline,
        r#"{"entries": [{"rule": "R1", "path": "crates/simkern/src/bad.rs", "snippet": "pub fn f() { let m = HashMap::new(); }"}]}"#,
    )
    .expect("write baseline");
    let (code, json) = run(&tmp, Some(&baseline));
    assert_eq!(code, Some(0), "{json:?}");
    assert_eq!(field(&json, "violations").as_array().map(Vec::len), Some(0));
    assert_eq!(num(&json, "baselined"), 1.0);

    // Fix the violation: the entry goes stale and the ratchet demands
    // the baseline shrink (exit 1 again).
    std::fs::write(src_dir.join("bad.rs"), "pub fn f() {}\n").expect("rewrite");
    let (code, json) = run(&tmp, Some(&baseline));
    assert_eq!(code, Some(1), "{json:?}");
    let stale = field(&json, "stale_baseline_entries").as_array().expect("stale array");
    assert_eq!(stale.len(), 1);
    assert_eq!(field(&stale[0], "rule").as_str(), Some("R1"));
}
