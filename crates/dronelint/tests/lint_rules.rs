//! Fixture-driven integration tests: each seeded-violation fixture is
//! linted under a pretend in-scope path and must produce exactly the
//! expected rule ids at the expected lines.

use dronelint::{scan_source, scan_workspace, Baseline};

fn hits(path: &str, fixture: &str) -> Vec<(&'static str, usize)> {
    scan_source(path, fixture)
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn r1_fixture_flags_hash_collections() {
    let got = hits(
        "crates/simkern/src/bad_collections.rs",
        include_str!("fixtures/r1_hashmap.rs"),
    );
    assert_eq!(got, vec![("R1", 3), ("R1", 6), ("R1", 9), ("R1", 10)]);
}

#[test]
fn r2_fixture_flags_wall_clock_and_entropy() {
    let got = hits(
        "crates/cloud/src/bad_time.rs",
        include_str!("fixtures/r2_wallclock.rs"),
    );
    assert_eq!(got, vec![("R2", 3), ("R2", 6), ("R2", 11), ("R2", 18)]);
}

#[test]
fn r3_fixture_flags_panic_paths() {
    let got = hits(
        "crates/flight/src/bad_panic.rs",
        include_str!("fixtures/r3_panic.rs"),
    );
    assert_eq!(got, vec![("R3", 4), ("R3", 8), ("R3", 12)]);
}

#[test]
fn r4_fixture_flags_bare_casts() {
    let got = hits(
        "crates/mavlink/src/codec.rs",
        include_str!("fixtures/r4_casts.rs"),
    );
    assert_eq!(got, vec![("R4", 4), ("R4", 8)]);
}

#[test]
fn r5_fixture_flags_mutable_globals() {
    let got = hits(
        "crates/binder/src/bad_globals.rs",
        include_str!("fixtures/r5_statics.rs"),
    );
    assert_eq!(got, vec![("R5", 3), ("R5", 5)]);
}

#[test]
fn r6_fixture_flags_alias_uses_not_the_definition() {
    let got = hits(
        "crates/simkern/src/bad_alias.rs",
        include_str!("fixtures/r6_alias.rs"),
    );
    // Lines 3 and 7 spell HashMap out (R1's catch); the laundered
    // name's uses on lines 9-10 are R6's.
    assert_eq!(got, vec![("R1", 3), ("R1", 7), ("R6", 9), ("R6", 10)]);
}

#[test]
fn r7_fixture_flags_the_collections_glob() {
    let got = hits(
        "crates/simkern/src/bad_glob.rs",
        include_str!("fixtures/r7_glob.rs"),
    );
    assert_eq!(got, vec![("R7", 3)]);
}

#[test]
fn clean_fixture_produces_nothing() {
    let got = hits("crates/simkern/src/good.rs", include_str!("fixtures/clean.rs"));
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn suppression_covers_exactly_one_line() {
    // Lines 3 (same-line allow) and 6 (carried allow) are suppressed;
    // the call on line 9 is not.
    let got = hits(
        "crates/vdc/src/suppressed.rs",
        include_str!("fixtures/suppressed.rs"),
    );
    assert_eq!(got, vec![("R1", 9)]);
}

#[test]
fn fixtures_out_of_scope_paths_do_not_fire() {
    // The same seeded text under an unscoped path is silent: R1/R5
    // only bind to sim crates (which, since lint v2, include cloud —
    // so the neutral path lives in the sdk crate), R4 only to the
    // wire files.
    assert!(hits("crates/sdk/src/x.rs", include_str!("fixtures/r1_hashmap.rs")).is_empty());
    assert!(hits("crates/sdk/src/x.rs", include_str!("fixtures/r4_casts.rs")).is_empty());
    assert!(hits("crates/sdk/src/x.rs", include_str!("fixtures/r5_statics.rs")).is_empty());
    assert!(hits("crates/sdk/src/x.rs", include_str!("fixtures/r6_alias.rs")).is_empty());
    assert!(hits("crates/sdk/src/x.rs", include_str!("fixtures/r7_glob.rs")).is_empty());
}

#[test]
fn baseline_ratchet_absorbs_then_demands_cleanup() {
    let violations = scan_source(
        "crates/mavlink/src/codec.rs",
        include_str!("fixtures/r4_casts.rs"),
    );
    assert_eq!(violations.len(), 2);

    // A baseline covering both: lint passes, nothing new.
    let covering = Baseline::parse(
        r#"{"entries": [
            {"rule": "R4", "path": "crates/mavlink/src/codec.rs", "snippet": "payload.len() as u8"},
            {"rule": "R4", "path": "crates/mavlink/src/codec.rs", "snippet": "x as u16"}
        ]}"#,
    )
    .expect("parse");
    let r = covering.reconcile(violations.clone());
    assert!(r.new.is_empty());
    assert_eq!(r.baselined, 2);
    assert!(r.stale.is_empty());

    // Fix one violation (drop it from the scan): its entry goes
    // stale and the lint fails until the baseline shrinks.
    let r = covering.reconcile(violations[..1].to_vec());
    assert_eq!(r.baselined, 1);
    assert_eq!(r.stale.len(), 1);
    assert_eq!(r.stale[0].snippet, "x as u16");

    // A new violation is never absorbed by an unrelated entry.
    let r = covering.reconcile(
        violations
            .into_iter()
            .chain(scan_source(
                "crates/mavlink/src/crc.rs",
                "pub fn f(x: u16) -> u8 { x as u8 }\n",
            ))
            .collect(),
    );
    assert_eq!(r.new.len(), 1);
    assert_eq!(r.new[0].path, "crates/mavlink/src/crc.rs");
}

#[test]
fn workspace_is_clean_under_the_checked_in_baseline() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let violations = scan_workspace(&root).expect("scan");
    let baseline = match std::fs::read_to_string(root.join("dronelint.baseline.json")) {
        Ok(text) => Baseline::parse(&text).expect("baseline parses"),
        Err(_) => Baseline::default(),
    };
    let r = baseline.reconcile(violations);
    assert!(
        r.new.is_empty(),
        "new lint violations in the workspace: {:#?}",
        r.new
    );
    assert!(
        r.stale.is_empty(),
        "stale baseline entries (violations fixed — shrink the baseline): {:#?}",
        r.stale
    );
}
