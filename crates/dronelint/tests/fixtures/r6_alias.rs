// Fixture: seeded R6 violations. Scanned with the pretend path
// crates/simkern/src/bad_alias.rs.
use std::collections::HashMap;

// The definition itself is R1's catch (HashMap is spelled out);
// R6 takes over at every *use* of the laundered name.
type FastIndex = HashMap<String, u32>;

pub fn build() -> FastIndex {
    let mut idx = FastIndex::new();
    idx.insert("alpha".to_string(), 1);
    idx
}

// An alias over a deterministic collection must NOT fire.
type Ordered = std::collections::BTreeMap<String, u32>;

pub fn ordered() -> Ordered {
    Ordered::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Test-region uses are exempt, like every other rule.
    #[test]
    fn test_uses_are_exempt() {
        let _m: FastIndex = FastIndex::new();
    }
}
