// Fixture: seeded R7 violation. Scanned with the pretend path
// crates/simkern/src/bad_glob.rs.
use std::collections::*;

// Named imports of deterministic collections must NOT fire.
use std::collections::{BTreeMap, BTreeSet};

pub fn counts() -> BTreeMap<String, u32> {
    BTreeMap::new()
}

pub fn seen() -> BTreeSet<u32> {
    BTreeSet::new()
}
