// Fixture: inline suppressions. Scanned with the pretend path
// crates/vdc/src/suppressed.rs.
use std::collections::HashMap; // dronelint:allow(R1, interop shim; keys are re-sorted before any iteration)

// dronelint:allow(R1, scratch map local to one tick; order never observed)
pub fn scratch() -> HashMap<u32, u32> {
    // The call below is deliberately NOT suppressed: an allow
    // directive covers exactly one code line.
    HashMap::new()
}
