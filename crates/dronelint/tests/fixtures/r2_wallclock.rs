// Fixture: seeded R2 violations. Scanned with the pretend path
// crates/cloud/src/bad_time.rs.
use std::time::Instant;

pub fn elapsed_ms() -> u128 {
    let start = Instant::now();
    start.elapsed().as_millis()
}

pub fn wall_secs() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

pub fn roll() -> u32 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

// "Instant" inside a string must NOT fire.
pub const LABEL: &str = "Instant replay";
