//! R8 fixture: the island work type smuggles an `Rc` across the
//! worker-pool thread boundary through a nested field.

pub struct Inner {
    pub cache: Rc<u32>,
}

pub struct Work {
    pub id: u64,
    pub inner: Inner,
}

pub fn run_island(work: Work) -> u64 {
    work.id
}
