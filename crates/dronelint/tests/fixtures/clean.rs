// Fixture: a clean sim-crate file. Scanned with the pretend path
// crates/simkern/src/good.rs — zero violations expected.
use std::collections::BTreeMap;

pub struct Registry {
    by_name: BTreeMap<String, u32>,
}

pub fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

pub static LIMITS: [u32; 3] = [1, 2, 3];

/// Docs may mention HashMap, Instant::now, unwrap() freely.
pub fn checked_len(payload: &[u8]) -> Option<u8> {
    u8::try_from(payload.len()).ok()
}
