//! R10 fixture: ad-hoc RNG construction in a sim crate — every
//! stream must come through the `simkern::rng` funnels.

pub fn make(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

pub fn from_parts(seed: [u8; 32]) -> SmallRng {
    SmallRng::from_seed(seed)
}

pub fn derived(parent: &mut SmallRng) -> SmallRng {
    SmallRng::from_rng(parent)
}
