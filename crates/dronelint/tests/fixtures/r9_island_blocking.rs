//! R9 fixture: island-reachable code must not take locks, sleep, or
//! touch blocking I/O — one island owns one worker thread outright.

pub fn run_island(work: u64) -> u64 {
    let _guard = SHARED.lock();
    helper(work)
}

fn helper(work: u64) -> u64 {
    std::thread::sleep(Duration::from_millis(1));
    let _f = File::open("telemetry.log");
    let _s = TcpStream::connect(addr);
    work
}

fn off_island() {
    let _guard = OTHER.lock();
}
