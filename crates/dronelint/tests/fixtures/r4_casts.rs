// Fixture: seeded R4 violations. Scanned with the pretend path
// crates/mavlink/src/codec.rs (the wire scope).
pub fn frame_len(payload: &[u8]) -> u8 {
    payload.len() as u8
}

pub fn widen(x: u8) -> u16 {
    x as u16
}

// Non-numeric `as` must NOT fire.
pub use core::option::Option as Maybe;

// try_from is the sanctioned spelling.
pub fn checked_len(payload: &[u8]) -> Option<u8> {
    u8::try_from(payload.len()).ok()
}
