// Fixture: seeded R5 violations. Scanned with the pretend path
// crates/binder/src/bad_globals.rs.
pub static mut TICKS: u64 = 0;

pub static CACHE: std::sync::Mutex<Vec<u32>> = std::sync::Mutex::new(Vec::new());

// Immutable statics and 'static lifetimes must NOT fire.
pub static NAMES: [&str; 2] = ["alpha", "beta"];

pub fn greet(name: &'static str) -> &'static str {
    name
}
