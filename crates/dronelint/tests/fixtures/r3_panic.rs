// Fixture: seeded R3 violations. Scanned with the pretend path
// crates/flight/src/bad_panic.rs.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn named(x: Option<u32>) -> u32 {
    x.expect("must be set")
}

pub fn boom() {
    panic!("unreachable state");
}

// Lookalikes must NOT fire.
pub fn soft(x: Option<u32>) -> u32 {
    x.unwrap_or(7)
}

pub fn err_side(x: Result<u32, u32>) -> u32 {
    x.expect_err("want the error")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
