// Fixture: seeded R1 violations. Scanned with the pretend path
// crates/simkern/src/bad_collections.rs.
use std::collections::HashMap;

pub struct Registry {
    by_name: HashMap<String, u32>,
}

pub fn lookup_set() -> std::collections::HashSet<u32> {
    std::collections::HashSet::new()
}

// A doc mention of HashMap must NOT fire: comments are blanked.
/// Returns a map; historically a HashMap, now ordered.
pub fn ordered() -> std::collections::BTreeMap<String, u32> {
    std::collections::BTreeMap::new()
}

#[cfg(test)]
mod tests {
    // Test code is exempt.
    use std::collections::HashMap;

    #[test]
    fn compares_against_hashmap() {
        let _m: HashMap<u32, u32> = HashMap::new();
    }
}
