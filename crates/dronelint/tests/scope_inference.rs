//! The superset pin: the reachability-inferred R3/R4 scopes must
//! cover everything the pre-v2 hardcoded lists named. Inference is
//! allowed to GROW the scope (that is the point — new hot-path files
//! are picked up automatically); a legacy file falling out of the
//! inferred scope means an entry point was renamed or the call-graph
//! resolution regressed, and this test is the alarm.

use dronelint::analyze_workspace;
use dronelint::rules::{LEGACY_R3_FILES, LEGACY_R3_PREFIXES, LEGACY_R4_FILES};

fn root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Whether the file has at least one non-test fn item. Files without
/// fns (`lib.rs` module rosters) have no bodies to panic in and
/// nothing for fn-granular reachability to find — they are exempt
/// from the coverage pin.
fn has_live_fns(rel: &str) -> bool {
    let Ok(source) = std::fs::read_to_string(root().join(rel)) else {
        return false;
    };
    let items = dronelint::items::parse_items(&dronelint::scan::preprocess(&source));
    items.fns.iter().any(|f| !f.in_test)
}

/// Workspace files (repo-relative, forward slashes) under a prefix.
fn files_under(prefix: &str) -> Vec<String> {
    let dir = root().join(prefix);
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let sub = format!(
                "{}{}/",
                prefix,
                entry.file_name().to_string_lossy()
            );
            out.extend(files_under(&sub));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(format!("{}{}", prefix, entry.file_name().to_string_lossy()));
        }
    }
    out
}

#[test]
fn inferred_r3_scope_covers_every_legacy_file() {
    let analysis = analyze_workspace(&root()).expect("scan");
    let mut missing = Vec::new();
    for file in LEGACY_R3_FILES {
        if root().join(file).exists() && has_live_fns(file) && !analysis.scopes.r3_applies(file) {
            missing.push(file.to_string());
        }
    }
    for prefix in LEGACY_R3_PREFIXES {
        for file in files_under(prefix) {
            if has_live_fns(&file) && !analysis.scopes.r3_applies(&file) {
                missing.push(file);
            }
        }
    }
    assert!(
        missing.is_empty(),
        "legacy R3 files escaped the inferred scope (entry point renamed, or call \
         resolution regressed): {missing:#?}"
    );
}

#[test]
fn inferred_r4_scope_covers_every_legacy_file() {
    let analysis = analyze_workspace(&root()).expect("scan");
    let missing: Vec<&str> = LEGACY_R4_FILES
        .iter()
        .filter(|f| root().join(f).exists() && !analysis.scopes.r4_applies(f))
        .copied()
        .collect();
    assert!(
        missing.is_empty(),
        "legacy R4 files escaped the inferred scope: {missing:#?}"
    );
}

#[test]
fn inference_extends_beyond_the_legacy_lists() {
    // The whole point of v2: reachability finds hot-path files the
    // lists never named. At minimum the mavlink message decoder
    // (reachable from decode_payload) is new R4 scope, and the R3
    // scope strictly exceeds the legacy file count.
    let analysis = analyze_workspace(&root()).expect("scan");
    assert!(
        analysis.scopes.r4_applies("crates/mavlink/src/message.rs"),
        "message.rs hosts decode_payload and must be wire scope"
    );
    assert!(
        !analysis.scopes.r4_applies("crates/mavlink/src/wire.rs"),
        "wire.rs is the audited cast home, never in scope"
    );
    assert!(
        analysis.stats.r3_inferred_files > analysis.stats.r3_legacy_files,
        "inferred R3 scope ({}) should exceed the legacy list ({})",
        analysis.stats.r3_inferred_files,
        analysis.stats.r3_legacy_files
    );
}

#[test]
fn island_scope_and_graph_are_nonempty() {
    let analysis = analyze_workspace(&root()).expect("scan");
    assert!(analysis.stats.island_fns > 10, "{:?}", analysis.stats);
    assert!(analysis.stats.fn_nodes > 500, "{:?}", analysis.stats);
    assert!(analysis.stats.type_nodes > 100, "{:?}", analysis.stats);
    assert!(analysis.stats.call_edges > 500, "{:?}", analysis.stats);
    assert!(
        analysis
            .scopes
            .island_spans
            .contains_key("crates/core/src/fleet.rs"),
        "run_island's own file must carry island spans"
    );
}
