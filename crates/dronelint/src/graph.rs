//! Workspace module/call-graph construction and the derived rule
//! scopes.
//!
//! PR 2's R3/R4 scoping was a hardcoded file list — every new
//! hot-path file silently escaped it (the ROADMAP's named blind
//! spot). This module replaces the lists with *reachability*: the
//! entry points below are the places where a panic or a silent
//! truncation actually costs a fleet (the fleet executor, the
//! per-flight island, the Binder translation path, the MAVLink
//! decoders), and any function a BFS over the approximate call graph
//! can reach from them is in scope. The hardcoded lists survive only
//! as [`crate::rules`]' `LEGACY_*` constants, pinned by a test to be
//! a subset of what inference finds — scope can only grow.
//!
//! Name resolution is approximate by design (no type inference):
//! `T::m(..)` resolves through impl blocks, bare `f(..)` resolves
//! same-file → same-crate → workspace free fns, and `.m(..)` resolves
//! to every workspace method of that name. Over-approximation is the
//! safe direction for a lint scope.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{CallRef, FileItems};

/// Call-graph roots: places where a panic aborts a whole fleet or a
/// truncation corrupts attacker-controlled bytes.
pub const ENTRY_POINTS: &[(&str, &str)] = &[
    ("crates/core/src/fleet.rs", "execute_fleet"),
    ("crates/core/src/fleet.rs", "execute_fleet_with_worker_chaos"),
    ("crates/core/src/fleet.rs", "run_island"),
    ("crates/binder/src/driver.rs", "translate_parcel"),
    ("crates/mavlink/src/codec.rs", "decode_frame"),
    ("crates/mavlink/src/message.rs", "decode_payload"),
];

/// The subset of [`ENTRY_POINTS`] whose reachable set defines the R9
/// no-lock scope and roots the R8 purity walk: one island = one
/// thread, so everything `run_island` reaches must neither block nor
/// smuggle `Rc` state across the pool boundary.
pub const ISLAND_ENTRY: (&str, &str) = ("crates/core/src/fleet.rs", "run_island");

/// The subset of [`ENTRY_POINTS`] whose reachable set defines the R4
/// no-bare-cast scope (wire parsing of attacker-controlled bytes).
pub const DECODE_ENTRIES: &[(&str, &str)] = &[
    ("crates/mavlink/src/codec.rs", "decode_frame"),
    ("crates/mavlink/src/message.rs", "decode_payload"),
];

/// Crates excluded from the graph domain: `bench` measures host time
/// by design and `dronelint` is the lint itself — resolving calls
/// into them would drag them into hot-path scope through generous
/// method-name matching.
pub const EXCLUDED_CRATES: &[&str] = &["bench", "dronelint"];

/// Interior-mutability / non-`Send` types banned from island
/// boundary structs (R8).
const ISLAND_IMPURE: &[&str] = &["Rc", "RefCell", "Cell", "UnsafeCell"];

/// One parsed file in the workspace graph.
#[derive(Debug, Clone)]
pub struct WorkspaceFile {
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// Crate name (`crates/<name>/...`).
    pub krate: String,
    /// The file's parsed items.
    pub items: FileItems,
}

/// (file index, fn index) — one function in the workspace.
pub type FnId = (usize, usize);

/// The workspace item graph.
pub struct Workspace {
    /// Files in the resolution domain, sorted by path.
    pub files: Vec<WorkspaceFile>,
    /// `(self_ty, name)` → implementing fns.
    qualified: BTreeMap<(String, String), Vec<FnId>>,
    /// Free-fn name → fns, per file.
    free_in_file: BTreeMap<(usize, String), Vec<FnId>>,
    /// Free-fn name → fns, per crate.
    free_in_crate: BTreeMap<(String, String), Vec<FnId>>,
    /// Free-fn name → fns, workspace-wide.
    free_global: BTreeMap<String, Vec<FnId>>,
    /// Method name → fns with any self type.
    methods: BTreeMap<String, Vec<FnId>>,
    /// Type name → defining (file, type index); first definition in
    /// path order wins (collisions are acceptable over-approximation).
    types: BTreeMap<String, (usize, usize)>,
    /// Resolved call edges (deduplicated), for stats.
    pub call_edges: usize,
}

/// Whether `path` is inside the graph resolution domain: a crate's
/// `src/` tree, minus the excluded crates. Integration tests,
/// benches, and examples are all-test code by construction — letting
/// their helper fns into the graph would drag whole test files into
/// hot-path scope through method-name over-approximation.
pub fn in_domain(path: &str) -> bool {
    let Some(rest) = path.strip_prefix("crates/") else {
        return false;
    };
    let mut parts = rest.split('/');
    let krate = parts.next().unwrap_or("");
    parts.next() == Some("src") && !EXCLUDED_CRATES.contains(&krate)
}

impl Workspace {
    /// Builds the graph from parsed files. Files outside the domain
    /// (non-`crates/`, bench, dronelint) are dropped here.
    pub fn build(parsed: Vec<(String, FileItems)>) -> Workspace {
        let mut files: Vec<WorkspaceFile> = parsed
            .into_iter()
            .filter(|(path, _)| in_domain(path))
            .map(|(path, items)| {
                let krate = path
                    .strip_prefix("crates/")
                    .and_then(|r| r.split('/').next())
                    .unwrap_or("")
                    .to_string();
                WorkspaceFile { path, krate, items }
            })
            .collect();
        files.sort_by(|a, b| a.path.cmp(&b.path));

        let mut ws = Workspace {
            files,
            qualified: BTreeMap::new(),
            free_in_file: BTreeMap::new(),
            free_in_crate: BTreeMap::new(),
            free_global: BTreeMap::new(),
            methods: BTreeMap::new(),
            types: BTreeMap::new(),
            call_edges: 0,
        };

        for (fi, file) in ws.files.iter().enumerate() {
            for (gi, f) in file.items.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                let id: FnId = (fi, gi);
                match &f.self_ty {
                    Some(ty) => {
                        ws.qualified
                            .entry((ty.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                        ws.methods.entry(f.name.clone()).or_default().push(id);
                    }
                    None => {
                        ws.free_in_file
                            .entry((fi, f.name.clone()))
                            .or_default()
                            .push(id);
                        ws.free_in_crate
                            .entry((file.krate.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                        ws.free_global.entry(f.name.clone()).or_default().push(id);
                    }
                }
            }
            for (ti, t) in file.items.types.iter().enumerate() {
                if t.in_test {
                    continue;
                }
                ws.types.entry(t.name.clone()).or_insert((fi, ti));
            }
        }
        ws
    }

    /// Resolves one call site to candidate fns. `caller_self_ty` is
    /// the caller's impl type, used to bind `Self::helper(..)`.
    fn resolve(
        &self,
        caller_file: usize,
        caller_self_ty: Option<&str>,
        call: &CallRef,
    ) -> Vec<FnId> {
        match call {
            CallRef::Bare(name) => {
                if let Some(v) = self.free_in_file.get(&(caller_file, name.clone())) {
                    return v.clone();
                }
                let krate = &self.files[caller_file].krate;
                if let Some(v) = self.free_in_crate.get(&(krate.clone(), name.clone())) {
                    return v.clone();
                }
                self.free_global.get(name).cloned().unwrap_or_default()
            }
            CallRef::Qualified(owner, name) => {
                let is_type = owner.chars().next().is_some_and(|c| c.is_ascii_uppercase());
                if is_type {
                    // `Self::helper(..)` binds to the caller's impl.
                    let owner = if owner == "Self" {
                        match caller_self_ty {
                            Some(ty) => ty.to_string(),
                            None => return Vec::new(),
                        }
                    } else {
                        owner.clone()
                    };
                    self.qualified
                        .get(&(owner, name.clone()))
                        .cloned()
                        .unwrap_or_default()
                } else {
                    // `module::func(..)` — a free fn somewhere.
                    self.free_global.get(name).cloned().unwrap_or_default()
                }
            }
            CallRef::Method(name) => self.methods.get(name).cloned().unwrap_or_default(),
        }
    }

    fn find_fn(&self, path: &str, name: &str) -> Option<FnId> {
        let fi = self.files.iter().position(|f| f.path == path)?;
        let gi = self.files[fi]
            .items
            .fns
            .iter()
            .position(|f| f.name == name && !f.in_test)?;
        Some((fi, gi))
    }

    /// BFS over the call graph from the given `(file, fn)` roots.
    /// Returns every reachable non-test fn (roots included). Missing
    /// roots are skipped (a renamed entry point shows up as a scope
    /// collapse the superset pin test catches).
    pub fn reachable(&mut self, roots: &[(&str, &str)]) -> BTreeSet<FnId> {
        let mut seen: BTreeSet<FnId> = BTreeSet::new();
        let mut queue: Vec<FnId> = roots
            .iter()
            .filter_map(|(p, n)| self.find_fn(p, n))
            .collect();
        let mut edges: BTreeSet<(FnId, FnId)> = BTreeSet::new();
        while let Some(id) = queue.pop() {
            if !seen.insert(id) {
                continue;
            }
            let caller = &self.files[id.0].items.fns[id.1];
            let calls = caller.calls.clone();
            let self_ty = caller.self_ty.clone();
            for call in &calls {
                for target in self.resolve(id.0, self_ty.as_deref(), call) {
                    edges.insert((id, target));
                    if !seen.contains(&target) {
                        queue.push(target);
                    }
                }
            }
        }
        self.call_edges = self.call_edges.max(edges.len());
        seen
    }

    /// Files containing at least one fn from `set`.
    pub fn files_of(&self, set: &BTreeSet<FnId>) -> BTreeSet<String> {
        set.iter().map(|&(fi, _)| self.files[fi].path.clone()).collect()
    }

    /// Per-file body line ranges of the fns in `set`.
    pub fn spans_of(&self, set: &BTreeSet<FnId>) -> BTreeMap<String, Vec<(usize, usize)>> {
        let mut out: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        for &(fi, gi) in set {
            out.entry(self.files[fi].path.clone())
                .or_default()
                .push(self.files[fi].items.fns[gi].span);
        }
        for spans in out.values_mut() {
            spans.sort_unstable();
        }
        out
    }

    /// R8 island-boundary purity: every type reachable through the
    /// struct graph from `run_island`'s signature types must be plain
    /// data — no `Rc`/`RefCell`/`Cell`/`UnsafeCell` anywhere in its
    /// field closure, because island work/results cross the
    /// `WorkerPool`'s thread boundary by value.
    pub fn island_purity_violations(&self) -> Vec<PurityViolation> {
        let Some((fi, gi)) = self.find_fn(ISLAND_ENTRY.0, ISLAND_ENTRY.1) else {
            return Vec::new();
        };
        let roots = self.files[fi].items.fns[gi].sig_types.clone();

        let mut out = Vec::new();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        // (type name, boundary-to-type field chain). First visit wins;
        // a shorter/alternate chain to an already-seen type adds no
        // new impurity.
        let mut queue: Vec<(String, Vec<String>)> = roots
            .into_iter()
            .map(|name| {
                let chain = vec![name.clone()];
                (name, chain)
            })
            .collect();
        while let Some((name, chain)) = queue.pop() {
            if !seen.insert(name.clone()) {
                continue;
            }
            let Some(&(tf, ti)) = self.types.get(&name) else {
                continue; // std / external type: opaque, assumed Send.
            };
            let ty = &self.files[tf].items.types[ti];
            for field in &ty.field_types {
                if ISLAND_IMPURE.contains(&field.as_str()) {
                    out.push(PurityViolation {
                        path: self.files[tf].path.clone(),
                        line: ty.line,
                        type_name: ty.name.clone(),
                        impure: field.clone(),
                        chain: chain.join(" -> "),
                    });
                } else if !seen.contains(field) {
                    let mut next = chain.clone();
                    next.push(field.clone());
                    queue.push((field.clone(), next));
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Total fns and types in the domain (for stats).
    pub fn node_counts(&self) -> (usize, usize) {
        let fns = self.files.iter().map(|f| f.items.fns.len()).sum();
        let types = self.files.iter().map(|f| f.items.types.len()).sum();
        (fns, types)
    }
}

/// One R8 island-boundary purity violation: a type in the field
/// closure of `run_island`'s signature holds an impure field.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PurityViolation {
    /// File defining the impure type.
    pub path: String,
    /// 1-based line of the type definition.
    pub line: usize,
    /// The type holding the impure field.
    pub type_name: String,
    /// The impure wrapper found (`Rc`, `RefCell`, ...).
    pub impure: String,
    /// How the boundary reaches this type, `" -> "`-joined from the
    /// signature type down.
    pub chain: String,
}

/// Graph statistics for the JSON report / EXPERIMENTS.md.
#[derive(Debug, Clone, Default)]
pub struct GraphStats {
    /// Files parsed workspace-wide (lint scope).
    pub files_scanned: usize,
    /// Files in the graph resolution domain.
    pub graph_files: usize,
    /// fn items in the domain.
    pub fn_nodes: usize,
    /// type items in the domain.
    pub type_nodes: usize,
    /// Resolved, deduplicated call edges seen during reachability.
    pub call_edges: usize,
    /// Files in the inferred R3 scope.
    pub r3_inferred_files: usize,
    /// Files the legacy hardcoded R3 scope named (with ≥1 fn item).
    pub r3_legacy_files: usize,
    /// Files in the inferred R4 scope.
    pub r4_inferred_files: usize,
    /// fns reachable from the island entry (R9 scope).
    pub island_fns: usize,
    /// Wall-clock of the full analysis, milliseconds.
    pub wall_ms: u128,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::scan::preprocess;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(p, src)| (p.to_string(), parse_items(&preprocess(src))))
                .collect(),
        )
    }

    #[test]
    fn bare_calls_resolve_same_file_first() {
        let mut w = ws(&[
            (
                "crates/core/src/fleet.rs",
                "fn run_island() { helper(); }\nfn helper() {}\n",
            ),
            ("crates/flight/src/x.rs", "fn helper() { deep(); }\nfn deep() {}\n"),
        ]);
        let r = w.reachable(&[("crates/core/src/fleet.rs", "run_island")]);
        let files = w.files_of(&r);
        assert!(files.contains("crates/core/src/fleet.rs"));
        assert!(
            !files.contains("crates/flight/src/x.rs"),
            "same-file helper shadows the cross-crate one"
        );
    }

    #[test]
    fn method_calls_resolve_across_the_workspace() {
        let mut w = ws(&[
            (
                "crates/core/src/fleet.rs",
                "fn run_island(d: Drone) { d.fly(); }\n",
            ),
            (
                "crates/flight/src/sitl.rs",
                "impl Drone {\n    pub fn fly(&self) { self.tick(); }\n    fn tick(&self) {}\n}\n",
            ),
        ]);
        let r = w.reachable(&[("crates/core/src/fleet.rs", "run_island")]);
        assert_eq!(r.len(), 3, "entry + fly + tick");
    }

    #[test]
    fn excluded_crates_never_enter_the_graph() {
        let mut w = ws(&[
            ("crates/core/src/fleet.rs", "fn run_island() { go(); }\n"),
            ("crates/bench/src/x.rs", "fn go() {}\n"),
        ]);
        let r = w.reachable(&[("crates/core/src/fleet.rs", "run_island")]);
        assert_eq!(w.files_of(&r).len(), 1);
    }

    #[test]
    fn test_fns_are_invisible() {
        let mut w = ws(&[(
            "crates/core/src/fleet.rs",
            "fn run_island() { helper(); }\n#[cfg(test)]\nmod tests {\n    fn helper() { nuke(); }\n}\nfn nuke() {}\n",
        )]);
        let r = w.reachable(&[("crates/core/src/fleet.rs", "run_island")]);
        // The test helper is skipped; bare `helper` then resolves to
        // nothing in-file, nothing in-crate, nothing global.
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn island_purity_walk_flags_transitive_rc() {
        let w = ws(&[
            (
                "crates/core/src/fleet.rs",
                "pub struct Work { inner: Payload }\nfn run_island(w: Work) -> Verdict { loop {} }\npub enum Verdict { Ok }\n",
            ),
            (
                "crates/core/src/pool.rs",
                "pub struct Payload { cell: Rc<Thing> }\npub struct Thing;\n",
            ),
        ]);
        let v = w.island_purity_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].type_name, "Payload");
        assert_eq!(v[0].impure, "Rc");
        assert_eq!(v[0].line, 1, "flagged at the struct definition line");
        assert_eq!(v[0].chain, "Work -> Payload");
    }

    #[test]
    fn island_purity_clean_when_fields_are_plain() {
        let w = ws(&[(
            "crates/core/src/fleet.rs",
            "pub struct Work { plan: Vec<u32>, seed: u64 }\nfn run_island(w: Work) -> u64 { w.seed }\n",
        )]);
        assert!(w.island_purity_violations().is_empty());
    }

    #[test]
    fn aliases_forward_through_the_purity_walk() {
        let w = ws(&[(
            "crates/core/src/fleet.rs",
            "type Handle = Rc<RefCell<Kernel>>;\npub struct Work { k: Handle }\nfn run_island(w: Work) {}\npub struct Kernel;\n",
        )]);
        let v = w.island_purity_violations();
        assert!(
            v.iter().any(|p| p.type_name == "Handle"),
            "alias over Rc flagged: {v:?}"
        );
    }
}
