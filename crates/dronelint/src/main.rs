//! CLI for the dronelint engine.
//!
//! ```text
//! dronelint [--root PATH] [--baseline PATH] [--format human|json]
//!           [--out PATH] [--explain R<N>] [--self-check]
//! ```
//!
//! `--out PATH` writes the JSON report (violations + graph stats) to
//! a file regardless of the stdout format — CI uploads it as an
//! artifact. `--explain R<N>` prints one rule's rationale and example
//! fix and exits. `--self-check` restricts the report to
//! `crates/dronelint/` itself (the lint must hold to its own rules).
//!
//! Exit codes: 0 clean, 1 new violations or stale baseline entries,
//! 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use dronelint::{analyze_workspace, Baseline, GraphStats, Reconciled, RULES};

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    json: bool,
    out: Option<PathBuf>,
    explain: Option<String>,
    self_check: bool,
}

fn parse_args() -> Result<Args, String> {
    // Default root: the workspace two levels above this crate.
    let mut args = Args {
        root: PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
        baseline: None,
        json: false,
        out: None,
        explain: None,
        self_check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a path")?);
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?));
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("human") => args.json = false,
                other => return Err(format!("--format must be human or json, got {other:?}")),
            },
            "--out" => {
                args.out = Some(PathBuf::from(it.next().ok_or("--out needs a path")?));
            }
            "--explain" => {
                args.explain = Some(it.next().ok_or("--explain needs a rule id (e.g. R3)")?);
            }
            "--self-check" => args.self_check = true,
            "--help" | "-h" => {
                return Err(
                    "usage: dronelint [--root PATH] [--baseline PATH] [--format human|json] \
                     [--out PATH] [--explain R<N>] [--self-check]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn explain(rule_id: &str) -> ExitCode {
    let Some(ri) = RULES.iter().find(|ri| ri.id == rule_id) else {
        eprintln!(
            "dronelint: unknown rule {rule_id}; known rules: {}",
            RULES.iter().map(|r| r.id).collect::<Vec<_>>().join(" ")
        );
        return ExitCode::from(2);
    };
    println!("{} {}", ri.id, ri.name);
    println!();
    println!("why:  {}", ri.rationale);
    println!("fix:  {}", ri.fix);
    ExitCode::SUCCESS
}

fn load_baseline(args: &Args) -> Result<Baseline, String> {
    let path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("dronelint.baseline.json"));
    match std::fs::read_to_string(&path) {
        Ok(text) => Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        // No baseline file means no grandfathered violations.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full JSON report: new violations, stale baseline
/// entries, and the item-graph statistics.
fn render_json(r: &Reconciled, stats: &GraphStats) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"violations\": [");
    let n = r.new.len();
    for (i, v) in r.new.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"snippet\": \"{}\", \"message\": \"{}\"}}{}",
            v.rule,
            json_escape(&v.path),
            v.line,
            v.col,
            json_escape(&v.snippet),
            json_escape(&v.message),
            comma
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"stale_baseline_entries\": [");
    let m = r.stale.len();
    for (i, e) in r.stale.iter().enumerate() {
        let comma = if i + 1 < m { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"snippet\": \"{}\"}}{}",
            e.rule,
            json_escape(&e.path),
            json_escape(&e.snippet),
            comma
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"baselined\": {},", r.baselined);
    let _ = writeln!(s, "  \"graph\": {{");
    let _ = writeln!(s, "    \"files_scanned\": {},", stats.files_scanned);
    let _ = writeln!(s, "    \"graph_files\": {},", stats.graph_files);
    let _ = writeln!(s, "    \"fn_nodes\": {},", stats.fn_nodes);
    let _ = writeln!(s, "    \"type_nodes\": {},", stats.type_nodes);
    let _ = writeln!(s, "    \"call_edges\": {},", stats.call_edges);
    let _ = writeln!(s, "    \"r3_inferred_files\": {},", stats.r3_inferred_files);
    let _ = writeln!(s, "    \"r3_legacy_files\": {},", stats.r3_legacy_files);
    let _ = writeln!(s, "    \"r4_inferred_files\": {},", stats.r4_inferred_files);
    let _ = writeln!(s, "    \"island_fns\": {},", stats.island_fns);
    let _ = writeln!(s, "    \"wall_ms\": {}", stats.wall_ms);
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}

fn print_human(r: &Reconciled, stats: &GraphStats) {
    for v in &r.new {
        let name = RULES
            .iter()
            .find(|ri| ri.id == v.rule)
            .map(|ri| ri.name)
            .unwrap_or("suppression");
        println!("{}:{}:{}: {} [{}/{}]", v.path, v.line, v.col, v.message, v.rule, name);
        println!("    {}", v.snippet);
    }
    for e in &r.stale {
        println!(
            "stale baseline entry: [{}] {} `{}` — the violation is fixed; remove it from the baseline",
            e.rule, e.path, e.snippet
        );
    }
    println!(
        "dronelint: {} file(s), graph {} fns / {} types / {} edges, R3 scope {} file(s) \
         (legacy {}), R4 scope {} file(s), {} island fn(s), {} ms",
        stats.files_scanned,
        stats.fn_nodes,
        stats.type_nodes,
        stats.call_edges,
        stats.r3_inferred_files,
        stats.r3_legacy_files,
        stats.r4_inferred_files,
        stats.island_fns,
        stats.wall_ms
    );
    if r.new.is_empty() && r.stale.is_empty() {
        println!("dronelint: clean ({} baselined)", r.baselined);
    } else {
        println!(
            "dronelint: {} new violation(s), {} stale baseline entr(ies), {} baselined",
            r.new.len(),
            r.stale.len(),
            r.baselined
        );
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(rule) = &args.explain {
        return explain(rule);
    }
    let baseline = if args.self_check {
        // The self-check ignores the baseline: the lint's own crate
        // must be clean outright.
        Baseline::default()
    } else {
        match load_baseline(&args) {
            Ok(b) => b,
            Err(msg) => {
                eprintln!("dronelint: {msg}");
                return ExitCode::from(2);
            }
        }
    };
    // dronelint:allow(R2, wall-clock here times the lint run itself for the JSON report; no simulation state depends on it)
    let started = std::time::Instant::now();
    let mut analysis = match analyze_workspace(&args.root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dronelint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    // dronelint:allow(R2, see above: diagnostic timing only)
    analysis.stats.wall_ms = started.elapsed().as_millis();
    if args.self_check {
        analysis
            .violations
            .retain(|v| v.path.starts_with("crates/dronelint/"));
    }
    let r = baseline.reconcile(analysis.violations);
    if args.json {
        print!("{}", render_json(&r, &analysis.stats));
    } else {
        print_human(&r, &analysis.stats);
    }
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, render_json(&r, &analysis.stats)) {
            eprintln!("dronelint: writing {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }
    if r.new.is_empty() && r.stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
