//! CLI for the dronelint engine.
//!
//! ```text
//! dronelint [--root PATH] [--baseline PATH] [--format human|json]
//! ```
//!
//! Exit codes: 0 clean, 1 new violations or stale baseline entries,
//! 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use dronelint::{scan_workspace, Baseline, Reconciled, RULES};

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    // Default root: the workspace two levels above this crate.
    let mut args = Args {
        root: PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
        baseline: None,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a path")?);
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?));
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("human") => args.json = false,
                other => return Err(format!("--format must be human or json, got {other:?}")),
            },
            "--help" | "-h" => {
                return Err("usage: dronelint [--root PATH] [--baseline PATH] [--format human|json]"
                    .to_string())
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn load_baseline(args: &Args) -> Result<Baseline, String> {
    let path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("dronelint.baseline.json"));
    match std::fs::read_to_string(&path) {
        Ok(text) => Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        // No baseline file means no grandfathered violations.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn print_json(r: &Reconciled) {
    println!("{{");
    println!("  \"violations\": [");
    let n = r.new.len();
    for (i, v) in r.new.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        println!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"snippet\": \"{}\", \"message\": \"{}\"}}{}",
            v.rule,
            json_escape(&v.path),
            v.line,
            v.col,
            json_escape(&v.snippet),
            json_escape(&v.message),
            comma
        );
    }
    println!("  ],");
    println!("  \"stale_baseline_entries\": [");
    let m = r.stale.len();
    for (i, e) in r.stale.iter().enumerate() {
        let comma = if i + 1 < m { "," } else { "" };
        println!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"snippet\": \"{}\"}}{}",
            e.rule,
            json_escape(&e.path),
            json_escape(&e.snippet),
            comma
        );
    }
    println!("  ],");
    println!("  \"baselined\": {}", r.baselined);
    println!("}}");
}

fn print_human(r: &Reconciled) {
    for v in &r.new {
        let name = RULES
            .iter()
            .find(|ri| ri.id == v.rule)
            .map(|ri| ri.name)
            .unwrap_or("suppression");
        println!("{}:{}:{}: {} [{}/{}]", v.path, v.line, v.col, v.message, v.rule, name);
        println!("    {}", v.snippet);
    }
    for e in &r.stale {
        println!(
            "stale baseline entry: [{}] {} `{}` — the violation is fixed; remove it from the baseline",
            e.rule, e.path, e.snippet
        );
    }
    if r.new.is_empty() && r.stale.is_empty() {
        println!("dronelint: clean ({} baselined)", r.baselined);
    } else {
        println!(
            "dronelint: {} new violation(s), {} stale baseline entr(ies), {} baselined",
            r.new.len(),
            r.stale.len(),
            r.baselined
        );
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let baseline = match load_baseline(&args) {
        Ok(b) => b,
        Err(msg) => {
            eprintln!("dronelint: {msg}");
            return ExitCode::from(2);
        }
    };
    let violations = match scan_workspace(&args.root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("dronelint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let r = baseline.reconcile(violations);
    if args.json {
        print_json(&r);
    } else {
        print_human(&r);
    }
    if r.new.is_empty() && r.stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
