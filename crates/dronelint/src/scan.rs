//! Source preprocessing: comment/string stripping, test-region
//! tracking, and line tokenization.
//!
//! The lint rules are token-level, so the scanner's job is to produce
//! a faithful *code view* of each line — comments and literal
//! contents blanked, everything else preserved with its column — plus
//! the comment text (for `dronelint:allow` directives) and whether
//! the line sits inside a `#[cfg(test)]` / `#[test]` region.

/// One preprocessed source line.
#[derive(Debug, Clone)]
pub struct CodeLine {
    /// Source with comments and string/char-literal contents blanked
    /// (replaced by spaces; quotes kept as `"`).
    pub code: String,
    /// Concatenated comment text found on this line.
    pub comment: String,
    /// Whether the line is inside a test-only region.
    pub in_test: bool,
}

enum Mode {
    Code,
    /// Nesting depth (Rust block comments nest).
    BlockComment(u32),
    LineComment,
    Str,
    /// Number of `#` marks delimiting the raw string.
    RawStr(u32),
}

/// Preprocesses `source` into per-line code/comment views.
pub fn preprocess(source: &str) -> Vec<CodeLine> {
    let mut lines = split_lexical(source);
    mark_test_regions(&mut lines);
    lines
}

fn split_lexical(source: &str) -> Vec<CodeLine> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut mode = Mode::Code;
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(mode, Mode::LineComment) {
                mode = Mode::Code;
            }
            lines.push(CodeLine {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                if starts_with(&chars, i, "/*") {
                    mode = Mode::BlockComment(1);
                    code.push_str("  ");
                    i += 2;
                } else if starts_with(&chars, i, "//") {
                    mode = Mode::LineComment;
                    i += 2;
                } else if let Some(hashes) = raw_string_open(&chars, i) {
                    // `r"`, `r#"`, `br##"`, ...: skip to the opening
                    // quote, blank the marker.
                    let quote = (i..).find(|&j| chars[j] == '"').unwrap_or(i);
                    for _ in i..quote {
                        code.push(' ');
                    }
                    code.push('"');
                    mode = Mode::RawStr(hashes);
                    i = quote + 1;
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if c == '\'' {
                    if let Some(end) = char_literal_end(&chars, i) {
                        code.push('\'');
                        for _ in i + 1..end {
                            code.push(' ');
                        }
                        code.push('\'');
                        i = end + 1;
                    } else {
                        // A lifetime: keep the tick so `'static` is
                        // distinguishable from the `static` keyword.
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            Mode::BlockComment(depth) => {
                if starts_with(&chars, i, "*/") {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if starts_with(&chars, i, "/*") {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                comment.push(c);
                i += 1;
            }
            Mode::Str => {
                if c == '\\' && chars.get(i + 1).is_some_and(|&n| n != '\n') {
                    code.push_str("  ");
                    i += 2;
                } else if c == '\\' {
                    // `\` before a newline is a string line
                    // continuation: blank the backslash but leave the
                    // newline for the per-line accounting.
                    code.push(' ');
                    i += 1;
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push(' ');
                    }
                    i += 1 + hashes as usize;
                    mode = Mode::Code;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    // A source not ending in '\n' still has a final line — even when
    // its code AND comment views are empty (e.g. a trailing `//`),
    // so that output line count always equals `source.lines()`'s.
    if !source.is_empty() && !source.ends_with('\n') {
        lines.push(CodeLine {
            code,
            comment,
            in_test: false,
        });
    }
    lines
}

fn starts_with(chars: &[char], i: usize, pat: &str) -> bool {
    pat.chars()
        .enumerate()
        .all(|(k, p)| chars.get(i + k) == Some(&p))
}

/// If `chars[i..]` opens a raw string (`r"`, `br#"`, ...), returns
/// the number of `#` delimiters.
fn raw_string_open(chars: &[char], i: usize) -> Option<u32> {
    // Must not be the tail of a longer identifier.
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// If `chars[i]` is the opening tick of a char literal, returns the
/// index of its closing tick. Lifetimes return `None`. A literal is
/// never allowed to span a newline — per-line accounting depends on
/// every `\n` surviving the blanking pass.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char: find the next unescaped tick.
            let mut j = i + 2;
            while let Some(&c) = chars.get(j) {
                if c == '\'' {
                    return Some(j);
                }
                if c == '\n' || (c == '\\' && chars.get(j + 1) == Some(&'\n')) {
                    return None;
                }
                j += if c == '\\' { 2 } else { 1 };
            }
            None
        }
        Some('\n') | None => None,
        Some(_) => (chars.get(i + 2) == Some(&'\'')).then_some(i + 2),
    }
}

/// Marks lines inside `#[cfg(test)]` / `#[test]` item bodies.
///
/// An attribute latches `pending`; the next `{` at any depth opens a
/// test region that closes when brace depth returns to its opening
/// level. A `;` before any `{` (e.g. `#[cfg(test)] mod tests;`)
/// clears the latch.
fn mark_test_regions(lines: &mut [CodeLine]) {
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut region_starts: Vec<i64> = Vec::new();

    for line in lines.iter_mut() {
        let started_inside = !region_starts.is_empty();
        if line.code.contains("#[cfg(test)]") || line.code.contains("#[test]") {
            pending = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending {
                        region_starts.push(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region_starts.last() == Some(&depth) {
                        region_starts.pop();
                    }
                }
                ';' => pending = false,
                _ => {}
            }
        }
        line.in_test = started_inside || !region_starts.is_empty();
    }
}

/// One token of a code line: an identifier or a single punctuation
/// character, with its 1-based column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text.
    pub text: String,
    /// 1-based column of the token's first character.
    pub col: usize,
}

/// Tokenizes a blanked code line into identifiers and punctuation.
pub fn tokenize(code: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut ident = String::new();
    let mut ident_col = 0;
    for (k, c) in code.chars().enumerate() {
        if c.is_alphanumeric() || c == '_' {
            if ident.is_empty() {
                ident_col = k + 1;
            }
            ident.push(c);
        } else {
            if !ident.is_empty() {
                tokens.push(Token {
                    text: std::mem::take(&mut ident),
                    col: ident_col,
                });
            }
            if !c.is_whitespace() {
                tokens.push(Token {
                    text: c.to_string(),
                    col: k + 1,
                });
            }
        }
    }
    if !ident.is_empty() {
        tokens.push(Token {
            text: ident,
            col: ident_col,
        });
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        preprocess(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn comments_are_blanked_and_captured() {
        let lines = preprocess("let x = 1; // HashMap here\n/* also HashMap */ let y = 2;\n");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.contains("HashMap here"));
        assert!(!lines[1].code.contains("HashMap"));
        assert!(lines[1].code.contains("let y"));
    }

    #[test]
    fn strings_are_blanked() {
        let c = codes("let s = \"HashMap::new()\";\nlet r = r#\"unwrap()\"#;\n");
        assert!(!c[0].contains("HashMap"));
        assert!(!c[1].contains("unwrap"));
        assert!(c[1].contains("let r"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let c = codes("let c = 'a'; let q: &'static str = x; let esc = '\\n';\n");
        assert!(c[0].contains("'static"), "{}", c[0]);
        assert!(!c[0].contains("\\n"));
    }

    #[test]
    fn nested_block_comments() {
        let c = codes("/* outer /* inner */ still comment */ code();\n");
        assert!(c[0].contains("code()"));
        assert!(!c[0].contains("inner"));
    }

    #[test]
    fn multi_line_strings_stay_blanked() {
        let c = codes("let s = \"first\nunwrap() second\";\nafter();\n");
        assert!(!c[1].contains("unwrap"));
        assert!(c[2].contains("after"));
    }

    #[test]
    fn test_regions_cover_mod_and_fn() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let lines = preprocess(src);
        assert!(!lines[0].in_test);
        assert!(lines[3].in_test, "inside test mod");
        assert!(!lines[5].in_test, "after test mod");
    }

    #[test]
    fn cfg_test_on_statement_does_not_latch_forever() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() { x(); }\n";
        let lines = preprocess(src);
        assert!(!lines[2].in_test);
    }

    #[test]
    fn tokenizer_splits_idents_and_punct() {
        let toks = tokenize("x.unwrap() as u8");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["x", ".", "unwrap", "(", ")", "as", "u8"]);
    }
}
