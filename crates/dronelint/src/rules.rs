//! The lint rules (R1–R7) and their path scoping.
//!
//! Every rule is token-level and path-scoped. Rules apply to non-test
//! code only: `#[cfg(test)]` / `#[test]` regions are exempt, because
//! tests legitimately compare against `HashMap`s, call `unwrap()`,
//! and panic on assertion failure. R6 is the one rule with file-level
//! state: alias *definitions* are collected from the whole file
//! (test regions included — a test-only alias can still be used in
//! live code), then uses are flagged line by line.

use std::collections::BTreeSet;

use crate::scan::Token;

/// Crates whose state participates in the deterministic simulation.
/// Iteration order and hashing inside these crates is
/// experiment-visible.
pub const SIM_CRATES: &[&str] = &["simkern", "binder", "flight", "vdc", "core", "mavlink", "obs"];

/// Files in the R3 no-panic scope: hot paths where a panic aborts the
/// whole simulated fleet instead of surfacing a typed error.
const R3_FILES: &[&str] = &[
    "crates/binder/src/driver.rs",
    "crates/mavlink/src/codec.rs",
    "crates/sdk/src/retry.rs",
    "crates/core/src/injector.rs",
    "crates/core/src/fleet.rs",
    "crates/core/src/pool.rs",
    "crates/cloud/src/facade.rs",
    "crates/simkern/src/faults.rs",
    "crates/hal/src/faults.rs",
    "crates/core/src/probe.rs",
];
const R3_PREFIXES: &[&str] = &["crates/flight/src/", "crates/obs/src/"];

/// Files in the R4 wire-path scope: parsers of attacker-controlled
/// bytes where a silent `as` truncation corrupts instead of rejects.
/// `wire.rs` is deliberately *not* listed — it is the audited home
/// for the few narrowings the format needs.
const R4_FILES: &[&str] = &["crates/mavlink/src/codec.rs", "crates/mavlink/src/crc.rs"];

/// Numeric primitive types for R4 cast detection.
const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    "f32", "f64",
];

/// Interior-mutability wrappers that turn a `static` into shared
/// mutable state (R5).
const INTERIOR_MUT: &[&str] = &[
    "Cell", "RefCell", "UnsafeCell", "Mutex", "RwLock", "OnceCell", "OnceLock", "LazyCell",
    "LazyLock", "AtomicBool", "AtomicU8", "AtomicU16", "AtomicU32", "AtomicU64", "AtomicUsize",
    "AtomicI8", "AtomicI16", "AtomicI32", "AtomicI64", "AtomicIsize", "AtomicPtr",
];

/// A rule's static description.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule id ("R1".."R7").
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// What the rule protects.
    pub rationale: &'static str,
}

/// All rules, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "R1",
        name: "nondeterministic-collection",
        rationale: "HashMap/HashSet iteration order varies per process (SipHash random keys); \
                    sim-state crates must use BTreeMap/BTreeSet or a slab",
    },
    RuleInfo {
        id: "R2",
        name: "wall-clock-or-entropy",
        rationale: "Instant/SystemTime/thread_rng read host state, breaking seed-stability; \
                    use SimTime and the kernel's seeded RNG",
    },
    RuleInfo {
        id: "R3",
        name: "panic-in-hot-path",
        rationale: "unwrap/expect/panic! in the Binder driver, flight stack, or MAVLink codec \
                    aborts the whole fleet; return a typed error",
    },
    RuleInfo {
        id: "R4",
        name: "bare-numeric-cast",
        rationale: "a bare `as` in the wire path silently truncates attacker-controlled \
                    lengths; use try_from or the audited wire.rs helpers",
    },
    RuleInfo {
        id: "R5",
        name: "mutable-global",
        rationale: "mutable or interior-mutable statics are cross-run shared state the \
                    seed does not control",
    },
    RuleInfo {
        id: "R6",
        name: "alias-laundered-collection",
        rationale: "a type alias over HashMap/HashSet (`type Fast = HashMap<..>`) launders \
                    the nondeterministic collection past R1's name check; the iteration \
                    order is just as random under the new name",
    },
    RuleInfo {
        id: "R7",
        name: "collections-glob-import",
        rationale: "`use std::collections::*` pulls HashMap/HashSet into scope invisibly, \
                    so a later bare `HashMap` reads as a local name; import deterministic \
                    collections explicitly",
    },
];

/// Returns the crate name for a repo-relative path like
/// `crates/<name>/src/...`.
fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

fn in_sim_crate(path: &str) -> bool {
    crate_of(path).is_some_and(|c| SIM_CRATES.contains(&c))
}

fn r2_applies(path: &str) -> bool {
    // Benches measure host time by design; scripts are not simulation
    // state. Everything else in the workspace is in scope.
    crate_of(path) != Some("bench") && !path.starts_with("scripts/")
}

fn r3_applies(path: &str) -> bool {
    R3_FILES.contains(&path) || R3_PREFIXES.iter().any(|p| path.starts_with(p))
}

fn r4_applies(path: &str) -> bool {
    R4_FILES.contains(&path)
}

/// A single rule match on one line (before suppression/baseline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match {
    /// Rule id ("R1".."R7").
    pub rule: &'static str,
    /// 1-based column.
    pub col: usize,
    /// Violation message.
    pub message: String,
}

/// If this line defines a type alias whose right-hand side names a
/// HashMap/HashSet (`type Fast = HashMap<u32, u32>;`,
/// `pub type Seen<T> = std::collections::HashSet<T>;`), returns the
/// alias name. Definitions are collected file-wide — including test
/// regions, since a test-defined alias is still usable from live
/// code in the same module tree.
pub fn hash_alias_name(tokens: &[Token]) -> Option<String> {
    let type_at = tokens.iter().position(|t| t.text == "type")?;
    let name = tokens.get(type_at + 1)?;
    if !name.text.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_') {
        return None;
    }
    let eq_at = tokens[type_at..].iter().position(|t| t.text == "=")? + type_at;
    let launders = tokens[eq_at..]
        .iter()
        .any(|t| t.text == "HashMap" || t.text == "HashSet");
    launders.then(|| name.text.clone())
}

/// Runs every applicable rule over one tokenized line, with no
/// file-level alias context (R6 needs [`check_line_with_aliases`]).
pub fn check_line(path: &str, tokens: &[Token]) -> Vec<Match> {
    check_line_with_aliases(path, tokens, &BTreeSet::new())
}

/// Runs every applicable rule over one tokenized line.
/// `hash_aliases` is the set of alias names this file defines over
/// HashMap/HashSet (from [`hash_alias_name`] over every line).
pub fn check_line_with_aliases(
    path: &str,
    tokens: &[Token],
    hash_aliases: &BTreeSet<String>,
) -> Vec<Match> {
    let mut out = Vec::new();
    let text = |i: usize| tokens.get(i).map(|t| t.text.as_str());
    // R6 skips the defining line itself: R1 already flags the
    // HashMap/HashSet spelled out on the right-hand side.
    let defines_alias = hash_alias_name(tokens);

    for (i, tok) in tokens.iter().enumerate() {
        let t = tok.text.as_str();

        // R1: nondeterministic collections in sim-state crates.
        if in_sim_crate(path) && (t == "HashMap" || t == "HashSet") {
            out.push(Match {
                rule: "R1",
                col: tok.col,
                message: format!("{t} in a sim-state crate: iteration order is not deterministic; use BTreeMap/BTreeSet or a slab"),
            });
        }

        // R6: use of a type alias that launders a HashMap/HashSet.
        if in_sim_crate(path)
            && hash_aliases.contains(t)
            && defines_alias.as_deref() != Some(t)
        {
            out.push(Match {
                rule: "R6",
                col: tok.col,
                message: format!(
                    "`{t}` is a type alias over HashMap/HashSet; the iteration order is \
                     still nondeterministic under the new name"
                ),
            });
        }

        // R7: glob import of std::collections in sim-state crates.
        if in_sim_crate(path)
            && t == "collections"
            && text(i + 1) == Some(":")
            && text(i + 2) == Some(":")
            && text(i + 3) == Some("*")
        {
            out.push(Match {
                rule: "R7",
                col: tok.col,
                message: "glob import of std::collections in a sim-state crate hides \
                          HashMap/HashSet behind the wildcard; import BTree collections by name"
                    .into(),
            });
        }

        // R2: wall clock / host entropy outside bench code.
        if r2_applies(path) {
            let banned = match t {
                "Instant" => Some("std::time::Instant reads the host clock"),
                "SystemTime" => Some("SystemTime reads the host clock"),
                "thread_rng" => Some("thread_rng draws host entropy"),
                "from_entropy" => Some("from_entropy seeds from host entropy"),
                _ => None,
            };
            if let Some(why) = banned {
                out.push(Match {
                    rule: "R2",
                    col: tok.col,
                    message: format!("{why}; use SimTime / a seeded SmallRng"),
                });
            }
        }

        // R3: panic paths in driver/flight/codec non-test code.
        if r3_applies(path) {
            let is_call = text(i + 1) == Some("(");
            if (t == "unwrap" || t == "expect") && is_call && text(i.wrapping_sub(1)) == Some(".") {
                out.push(Match {
                    rule: "R3",
                    col: tok.col,
                    message: format!(".{t}() in a no-panic file; return a typed error instead"),
                });
            }
            if t == "panic" && text(i + 1) == Some("!") {
                out.push(Match {
                    rule: "R3",
                    col: tok.col,
                    message: "panic! in a no-panic file; return a typed error instead".into(),
                });
            }
        }

        // R4: bare numeric `as` casts in the wire path.
        if r4_applies(path)
            && t == "as"
            && text(i + 1).is_some_and(|n| NUMERIC_TYPES.contains(&n))
        {
            out.push(Match {
                rule: "R4",
                col: tok.col,
                message: format!(
                    "bare `as {}` cast in the wire path; use try_from or wire.rs helpers",
                    text(i + 1).unwrap_or("?")
                ),
            });
        }

        // R5: mutable globals in sim-state crates.
        if in_sim_crate(path) && t == "static" && text(i.wrapping_sub(1)) != Some("'") {
            if text(i + 1) == Some("mut") {
                out.push(Match {
                    rule: "R5",
                    col: tok.col,
                    message: "static mut in a sim-state crate: unsynchronized global mutable state".into(),
                });
            } else if tokens.iter().any(|t2| INTERIOR_MUT.contains(&t2.text.as_str())) {
                out.push(Match {
                    rule: "R5",
                    col: tok.col,
                    message: "static with interior mutability in a sim-state crate: shared mutable state outside the seed's control".into(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::tokenize;

    fn matches_on(path: &str, line: &str) -> Vec<&'static str> {
        check_line(path, &tokenize(line))
            .into_iter()
            .map(|m| m.rule)
            .collect()
    }

    #[test]
    fn r1_fires_only_in_sim_crates() {
        assert_eq!(
            matches_on("crates/simkern/src/x.rs", "let m: HashMap<u32, u32>;"),
            vec!["R1"]
        );
        assert!(matches_on("crates/cloud/src/x.rs", "let m: HashMap<u32, u32>;").is_empty());
    }

    #[test]
    fn r2_exempts_bench() {
        assert_eq!(
            matches_on("crates/cloud/src/x.rs", "let t = Instant::now();"),
            vec!["R2"]
        );
        assert!(matches_on("crates/bench/benches/x.rs", "let t = Instant::now();").is_empty());
    }

    #[test]
    fn r3_matches_method_calls_not_lookalikes() {
        let p = "crates/flight/src/pid.rs";
        assert_eq!(matches_on(p, "x.unwrap()"), vec!["R3"]);
        assert_eq!(matches_on(p, "x.expect(\"boom\")"), vec!["R3"]);
        assert_eq!(matches_on(p, "panic!(\"boom\")"), vec!["R3"]);
        assert!(matches_on(p, "x.unwrap_or(0)").is_empty());
        assert!(matches_on(p, "x.expect_err(\"fine\")").is_empty());
        assert!(matches_on(p, "fn unwrap() {}").is_empty(), "not a method call");
    }

    #[test]
    fn r4_numeric_casts_only_in_wire_files() {
        let wire = "crates/mavlink/src/codec.rs";
        assert_eq!(matches_on(wire, "let l = len as u8;"), vec!["R4"]);
        assert!(matches_on(wire, "use foo as bar;").is_empty());
        assert!(matches_on("crates/mavlink/src/wire.rs", "let l = len as u8;").is_empty());
    }

    #[test]
    fn r6_alias_definitions_are_recognized() {
        assert_eq!(
            hash_alias_name(&tokenize("type Fast = HashMap<u32, u32>;")).as_deref(),
            Some("Fast")
        );
        assert_eq!(
            hash_alias_name(&tokenize(
                "pub type Seen<T> = std::collections::HashSet<T>;"
            ))
            .as_deref(),
            Some("Seen")
        );
        assert!(hash_alias_name(&tokenize("type Slab = BTreeMap<u32, u32>;")).is_none());
        assert!(hash_alias_name(&tokenize("let x = HashMap::new();")).is_none());
        // `=` before `type` must not satisfy the pattern.
        assert!(hash_alias_name(&tokenize("let t = ty; type A = B;")).is_none());
    }

    #[test]
    fn r6_flags_alias_use_but_not_the_definition() {
        let aliases: BTreeSet<String> = ["Fast".to_string()].into_iter().collect();
        let p = "crates/simkern/src/x.rs";
        let on_use: Vec<&str> =
            check_line_with_aliases(p, &tokenize("let m: Fast = Fast::new();"), &aliases)
                .into_iter()
                .map(|m| m.rule)
                .collect();
        assert_eq!(on_use, vec!["R6", "R6"], "both mentions flagged");
        // The defining line is R1's to flag (HashMap is spelled out),
        // not R6's.
        let on_def: Vec<&str> =
            check_line_with_aliases(p, &tokenize("type Fast = HashMap<u32, u32>;"), &aliases)
                .into_iter()
                .map(|m| m.rule)
                .collect();
        assert_eq!(on_def, vec!["R1"]);
        // Outside sim crates the alias is fine.
        assert!(check_line_with_aliases(
            "crates/cloud/src/x.rs",
            &tokenize("let m: Fast = Fast::new();"),
            &aliases
        )
        .is_empty());
    }

    #[test]
    fn r7_collections_glob_only_in_sim_crates() {
        assert_eq!(
            matches_on("crates/simkern/src/x.rs", "use std::collections::*;"),
            vec!["R7"]
        );
        assert!(matches_on("crates/cloud/src/x.rs", "use std::collections::*;").is_empty());
        // Named imports of deterministic collections stay clean.
        assert!(matches_on(
            "crates/simkern/src/x.rs",
            "use std::collections::{BTreeMap, BTreeSet};"
        )
        .is_empty());
    }

    #[test]
    fn r5_statics_but_not_lifetimes() {
        let p = "crates/simkern/src/x.rs";
        assert_eq!(matches_on(p, "static mut COUNT: u64 = 0;"), vec!["R5"]);
        assert_eq!(
            matches_on(p, "pub static TABLE: Mutex<Vec<u32>> = Mutex::new(Vec::new());"),
            vec!["R5"]
        );
        assert!(matches_on(p, "fn f(s: &'static str) {}").is_empty());
        assert!(matches_on(p, "static NAMES: [&str; 2] = [\"a\", \"b\"];").is_empty());
    }
}
