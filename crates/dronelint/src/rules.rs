//! The lint rules (R1–R10) and their scoping.
//!
//! Every line rule is token-level. Rules apply to non-test code only:
//! `#[cfg(test)]` / `#[test]` regions are exempt, because tests
//! legitimately compare against `HashMap`s, call `unwrap()`, and
//! panic on assertion failure. R6 is the one line rule with
//! file-level state: alias *definitions* are collected from the whole
//! file (test regions included — a test-only alias can still be used
//! in live code), then uses are flagged line by line.
//!
//! R3/R4/R9 scoping comes from a [`Scopes`] value. The workspace
//! analysis derives one by call-graph reachability (see
//! [`crate::graph`]); [`Scopes::legacy`] reproduces the pre-inference
//! hardcoded lists for fixture tests and the superset pin.

use std::collections::{BTreeMap, BTreeSet};

use crate::scan::Token;

/// Crates whose state participates in the deterministic simulation.
/// Iteration order and hashing inside these crates is
/// experiment-visible — `cloud` and `planner` joined the list once
/// `execute_fleet`'s ordered merge began replaying cloud effects in
/// plan order, and `workloads` once seed-generated attack plans
/// started driving the adversarial gate.
pub const SIM_CRATES: &[&str] = &[
    "simkern", "binder", "flight", "vdc", "core", "mavlink", "obs", "cloud", "planner",
    "workloads",
];

/// The audited home for RNG construction: the one file in the sim
/// crates allowed to call `SmallRng::seed_from_u64` & co (R10).
pub const RNG_HOME: &str = "crates/simkern/src/rng.rs";

/// The pre-inference hardcoded R3 no-panic file list, kept only for
/// the superset pin test: the inferred scope must cover every file
/// here that has fn items. Do NOT add to this list — new hot-path
/// files are picked up by reachability.
pub const LEGACY_R3_FILES: &[&str] = &[
    "crates/binder/src/driver.rs",
    "crates/mavlink/src/codec.rs",
    "crates/sdk/src/retry.rs",
    "crates/core/src/injector.rs",
    "crates/core/src/fleet.rs",
    "crates/core/src/pool.rs",
    "crates/cloud/src/facade.rs",
    "crates/simkern/src/faults.rs",
    "crates/hal/src/faults.rs",
    "crates/core/src/probe.rs",
];
/// Pre-inference R3 path prefixes (see [`LEGACY_R3_FILES`]).
pub const LEGACY_R3_PREFIXES: &[&str] = &["crates/flight/src/", "crates/obs/src/"];

/// The pre-inference hardcoded R4 wire-path list (see
/// [`LEGACY_R3_FILES`] for why it survives). `wire.rs` is
/// deliberately absent — it is the audited home for the few
/// narrowings the format needs.
pub const LEGACY_R4_FILES: &[&str] = &["crates/mavlink/src/codec.rs", "crates/mavlink/src/crc.rs"];

/// Rule scoping: which files/lines R3, R4, and R9 bind to.
#[derive(Debug, Clone, Default)]
pub struct Scopes {
    /// Files in the R3 no-panic scope.
    pub r3_files: BTreeSet<String>,
    /// Path prefixes in the R3 scope (legacy mode only; inference
    /// produces explicit files).
    pub r3_prefixes: Vec<&'static str>,
    /// Files in the R4 no-bare-cast scope.
    pub r4_files: BTreeSet<String>,
    /// Per-file line spans of island-reachable fns (R9). Empty in
    /// legacy mode — R9 needs the graph.
    pub island_spans: BTreeMap<String, Vec<(usize, usize)>>,
}

impl Scopes {
    /// The pre-inference hardcoded scoping, for single-file linting
    /// (fixture tests) where no call graph exists.
    pub fn legacy() -> Scopes {
        Scopes {
            r3_files: LEGACY_R3_FILES.iter().map(|s| s.to_string()).collect(),
            r3_prefixes: LEGACY_R3_PREFIXES.to_vec(),
            r4_files: LEGACY_R4_FILES.iter().map(|s| s.to_string()).collect(),
            island_spans: BTreeMap::new(),
        }
    }

    /// Whether `path` is in the R3 no-panic scope.
    pub fn r3_applies(&self, path: &str) -> bool {
        self.r3_files.contains(path) || self.r3_prefixes.iter().any(|p| path.starts_with(p))
    }

    /// Whether `path` is in the R4 no-bare-cast scope.
    pub fn r4_applies(&self, path: &str) -> bool {
        self.r4_files.contains(path)
    }

    /// Whether `path:line` falls inside an island-reachable fn body.
    pub fn in_island(&self, path: &str, line: usize) -> bool {
        self.island_spans
            .get(path)
            .is_some_and(|spans| spans.iter().any(|&(a, b)| (a..=b).contains(&line)))
    }
}

/// Numeric primitive types for R4 cast detection.
const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    "f32", "f64",
];

/// Interior-mutability wrappers that turn a `static` into shared
/// mutable state (R5).
const INTERIOR_MUT: &[&str] = &[
    "Cell", "RefCell", "UnsafeCell", "Mutex", "RwLock", "OnceCell", "OnceLock", "LazyCell",
    "LazyLock", "AtomicBool", "AtomicU8", "AtomicU16", "AtomicU32", "AtomicU64", "AtomicUsize",
    "AtomicI8", "AtomicI16", "AtomicI32", "AtomicI64", "AtomicIsize", "AtomicPtr",
];

/// A rule's static description.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule id ("R1".."R10").
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// What the rule protects.
    pub rationale: &'static str,
    /// An example fix (`--explain` output / DESIGN.md catalog).
    pub fix: &'static str,
}

/// All rules, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "R1",
        name: "nondeterministic-collection",
        rationale: "HashMap/HashSet iteration order varies per process (SipHash random keys); \
                    sim-state crates must use BTreeMap/BTreeSet or a slab",
        fix: "replace `HashMap<K, V>` with `BTreeMap<K, V>` (or a slab keyed by insertion \
              index when ordering is the point)",
    },
    RuleInfo {
        id: "R2",
        name: "wall-clock-or-entropy",
        rationale: "Instant/SystemTime/thread_rng read host state, breaking seed-stability; \
                    use SimTime and the kernel's seeded RNG",
        fix: "replace `Instant::now()` with `kernel.now()` (SimTime) and `thread_rng()` with \
              a stream from `simkern::rng`",
    },
    RuleInfo {
        id: "R3",
        name: "panic-in-hot-path",
        rationale: "unwrap/expect/panic! in code reachable from the fleet executor, flight \
                    island, Binder translation, or MAVLink decode aborts the whole fleet; \
                    return a typed error (scope is inferred by call-graph reachability)",
        fix: "replace `x.expect(\"invariant\")` with `x.ok_or(Error::Invariant(\"...\"))?` \
              and let the island scrap one flight instead of the fleet",
    },
    RuleInfo {
        id: "R4",
        name: "bare-numeric-cast",
        rationale: "a bare `as` in code reachable from the MAVLink decoders silently \
                    truncates attacker-controlled lengths; use try_from or the audited \
                    wire.rs helpers",
        fix: "replace `n as u8` with `u8::try_from(n)?` or a named wire.rs helper \
              (`wire::len8`, `wire::i8_bits`) that states its invariant",
    },
    RuleInfo {
        id: "R5",
        name: "mutable-global",
        rationale: "mutable or interior-mutable statics are cross-run shared state the \
                    seed does not control",
        fix: "move the state into the Kernel (or the component struct) so it is rebuilt \
              per run from the seed",
    },
    RuleInfo {
        id: "R6",
        name: "alias-laundered-collection",
        rationale: "a type alias over HashMap/HashSet (`type Fast = HashMap<..>`) launders \
                    the nondeterministic collection past R1's name check; the iteration \
                    order is just as random under the new name",
        fix: "alias a deterministic collection instead: `type Fast = BTreeMap<K, V>`",
    },
    RuleInfo {
        id: "R7",
        name: "collections-glob-import",
        rationale: "`use std::collections::*` pulls HashMap/HashSet into scope invisibly, \
                    so a later bare `HashMap` reads as a local name; import deterministic \
                    collections explicitly",
        fix: "write `use std::collections::{BTreeMap, BTreeSet};`",
    },
    RuleInfo {
        id: "R8",
        name: "island-boundary-impurity",
        rationale: "types crossing the WorkerPool boundary (run_island's work/result \
                    signature, transitively through their fields) must be plain data; an \
                    Rc/RefCell/Cell field smuggles single-threaded island state across \
                    threads and breaks Send soundness the executor relies on",
        fix: "keep shared handles inside the island: pass plain data (ids, Vec, BTreeMap, \
              Box) across the boundary and rebuild the Rc/RefCell graph on the worker",
    },
    RuleInfo {
        id: "R9",
        name: "lock-or-blocking-io-in-island",
        rationale: "islands are single-threaded by construction — a lock acquired in \
                    island-reachable code is dead weight at best and a cross-island \
                    ordering channel (deadlock + nondeterminism) at worst; blocking I/O \
                    stalls a whole worker thread",
        fix: "use Rc<RefCell<..>> for intra-island sharing (the island never crosses a \
              thread) and route I/O through the deterministic obs/trace layer",
    },
    RuleInfo {
        id: "R10",
        name: "adhoc-rng-stream",
        rationale: "an RNG constructed outside simkern::rng (`SmallRng::seed_from_u64(seed \
                    + 1)` and friends) collides with the audited stream families and \
                    silently perturbs every digest downstream; all streams must derive \
                    from substream_seed or the dedicated fault/attack/adversary streams — \
                    the adversary feedback stream (attacker brains) and the refill-jitter \
                    stream (defense) funnel through the same home, so closed-loop \
                    adversaries can never perturb kernel or board draws",
        fix: "call `simkern::rng::stream_rng(substream_seed(root, stream, index))` (or the \
              fault-, attack-, rt-monitor-, adversary- or refill-jitter-stream \
              constructors) instead of SmallRng::seed_from_u64",
    },
];

/// Returns the crate name for a repo-relative path like
/// `crates/<name>/src/...`.
fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

fn in_sim_crate(path: &str) -> bool {
    crate_of(path).is_some_and(|c| SIM_CRATES.contains(&c))
}

fn r2_applies(path: &str) -> bool {
    // Benches measure host time by design; scripts are not simulation
    // state. Everything else in the workspace is in scope.
    crate_of(path) != Some("bench") && !path.starts_with("scripts/")
}

/// A single rule match on one line (before suppression/baseline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match {
    /// Rule id ("R1".."R10").
    pub rule: &'static str,
    /// 1-based column.
    pub col: usize,
    /// Violation message.
    pub message: String,
}

/// If this line defines a type alias whose right-hand side names a
/// HashMap/HashSet (`type Fast = HashMap<u32, u32>;`,
/// `pub type Seen<T> = std::collections::HashSet<T>;`), returns the
/// alias name. Definitions are collected file-wide — including test
/// regions, since a test-defined alias is still usable from live
/// code in the same module tree.
pub fn hash_alias_name(tokens: &[Token]) -> Option<String> {
    let type_at = tokens.iter().position(|t| t.text == "type")?;
    let name = tokens.get(type_at + 1)?;
    if !name.text.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_') {
        return None;
    }
    let eq_at = tokens[type_at..].iter().position(|t| t.text == "=")? + type_at;
    let launders = tokens[eq_at..]
        .iter()
        .any(|t| t.text == "HashMap" || t.text == "HashSet");
    launders.then(|| name.text.clone())
}

/// Runs every applicable rule over one tokenized line under legacy
/// scoping, with no file-level alias context (R6 needs
/// [`check_line_with_aliases`]).
pub fn check_line(path: &str, tokens: &[Token]) -> Vec<Match> {
    check_line_with_aliases(path, tokens, &BTreeSet::new())
}

/// Runs every applicable rule over one tokenized line under legacy
/// scoping. `hash_aliases` is the set of alias names this file
/// defines over HashMap/HashSet (from [`hash_alias_name`] over every
/// line).
pub fn check_line_with_aliases(
    path: &str,
    tokens: &[Token],
    hash_aliases: &BTreeSet<String>,
) -> Vec<Match> {
    check_line_scoped(path, 0, tokens, hash_aliases, &Scopes::legacy())
}

/// Blocking-I/O idents R9 bans outright inside island spans.
const ISLAND_BLOCKING_TYPES: &[&str] = &["TcpStream", "UdpSocket", "TcpListener"];

/// Runs every applicable rule over one tokenized line. `line` is the
/// 1-based line number (0 disables the line-scoped R9 check), and
/// `scopes` supplies the R3/R4/R9 binding.
pub fn check_line_scoped(
    path: &str,
    line: usize,
    tokens: &[Token],
    hash_aliases: &BTreeSet<String>,
    scopes: &Scopes,
) -> Vec<Match> {
    let mut out = Vec::new();
    let text = |i: usize| tokens.get(i).map(|t| t.text.as_str());
    // R6 skips the defining line itself: R1 already flags the
    // HashMap/HashSet spelled out on the right-hand side.
    let defines_alias = hash_alias_name(tokens);

    for (i, tok) in tokens.iter().enumerate() {
        let t = tok.text.as_str();

        // R1: nondeterministic collections in sim-state crates.
        if in_sim_crate(path) && (t == "HashMap" || t == "HashSet") {
            out.push(Match {
                rule: "R1",
                col: tok.col,
                message: format!("{t} in a sim-state crate: iteration order is not deterministic; use BTreeMap/BTreeSet or a slab"),
            });
        }

        // R6: use of a type alias that launders a HashMap/HashSet.
        if in_sim_crate(path)
            && hash_aliases.contains(t)
            && defines_alias.as_deref() != Some(t)
        {
            out.push(Match {
                rule: "R6",
                col: tok.col,
                message: format!(
                    "`{t}` is a type alias over HashMap/HashSet; the iteration order is \
                     still nondeterministic under the new name"
                ),
            });
        }

        // R7: glob import of std::collections in sim-state crates.
        if in_sim_crate(path)
            && t == "collections"
            && text(i + 1) == Some(":")
            && text(i + 2) == Some(":")
            && text(i + 3) == Some("*")
        {
            out.push(Match {
                rule: "R7",
                col: tok.col,
                message: "glob import of std::collections in a sim-state crate hides \
                          HashMap/HashSet behind the wildcard; import BTree collections by name"
                    .into(),
            });
        }

        // R2: wall clock / host entropy outside bench code.
        if r2_applies(path) {
            let banned = match t {
                "Instant" => Some("std::time::Instant reads the host clock"),
                "SystemTime" => Some("SystemTime reads the host clock"),
                "thread_rng" => Some("thread_rng draws host entropy"),
                "from_entropy" => Some("from_entropy seeds from host entropy"),
                _ => None,
            };
            if let Some(why) = banned {
                out.push(Match {
                    rule: "R2",
                    col: tok.col,
                    message: format!("{why}; use SimTime / a seeded SmallRng"),
                });
            }
        }

        // R3: panic paths in hot-path (entry-reachable) non-test code.
        if scopes.r3_applies(path) {
            let is_call = text(i + 1) == Some("(");
            if (t == "unwrap" || t == "expect") && is_call && text(i.wrapping_sub(1)) == Some(".") {
                out.push(Match {
                    rule: "R3",
                    col: tok.col,
                    message: format!(".{t}() in a no-panic file; return a typed error instead"),
                });
            }
            if t == "panic" && text(i + 1) == Some("!") {
                out.push(Match {
                    rule: "R3",
                    col: tok.col,
                    message: "panic! in a no-panic file; return a typed error instead".into(),
                });
            }
        }

        // R4: bare numeric `as` casts in the wire path.
        if scopes.r4_applies(path)
            && t == "as"
            && text(i + 1).is_some_and(|n| NUMERIC_TYPES.contains(&n))
        {
            out.push(Match {
                rule: "R4",
                col: tok.col,
                message: format!(
                    "bare `as {}` cast in the wire path; use try_from or wire.rs helpers",
                    text(i + 1).unwrap_or("?")
                ),
            });
        }

        // R5: mutable globals in sim-state crates.
        if in_sim_crate(path) && t == "static" && text(i.wrapping_sub(1)) != Some("'") {
            if text(i + 1) == Some("mut") {
                out.push(Match {
                    rule: "R5",
                    col: tok.col,
                    message: "static mut in a sim-state crate: unsynchronized global mutable state".into(),
                });
            } else if tokens.iter().any(|t2| INTERIOR_MUT.contains(&t2.text.as_str())) {
                out.push(Match {
                    rule: "R5",
                    col: tok.col,
                    message: "static with interior mutability in a sim-state crate: shared mutable state outside the seed's control".into(),
                });
            }
        }

        // R9: lock acquisition / blocking I/O inside island-reachable
        // fn bodies (spans come from the run_island call graph).
        if line > 0 && scopes.in_island(path, line) {
            let is_call = text(i + 1) == Some("(");
            let is_method = text(i.wrapping_sub(1)) == Some(".");
            if (t == "lock" || t == "try_lock") && is_call && is_method {
                out.push(Match {
                    rule: "R9",
                    col: tok.col,
                    message: format!(
                        ".{t}() in island-reachable code; islands are single-threaded — \
                         use Rc<RefCell<..>> and keep the handle inside the island"
                    ),
                });
            }
            if t == "sleep" && is_call {
                out.push(Match {
                    rule: "R9",
                    col: tok.col,
                    message: "blocking sleep in island-reachable code stalls a worker \
                              thread; advance SimTime instead"
                        .into(),
                });
            }
            if (t == "open" || t == "create") && is_call
                && text(i.wrapping_sub(1)) == Some(":")
                && text(i.wrapping_sub(3)) == Some("File")
            {
                out.push(Match {
                    rule: "R9",
                    col: tok.col,
                    message: "File I/O in island-reachable code blocks a worker thread; \
                              islands must stay compute-only"
                        .into(),
                });
            }
            if ISLAND_BLOCKING_TYPES.contains(&t) {
                out.push(Match {
                    rule: "R9",
                    col: tok.col,
                    message: format!(
                        "{t} in island-reachable code: network I/O blocks a worker \
                         thread; islands must stay compute-only"
                    ),
                });
            }
        }

        // R10: RNG construction outside the sanctioned home, in
        // sim-state crates. `from_entropy` is R2's (host entropy).
        if in_sim_crate(path)
            && path != RNG_HOME
            && (t == "seed_from_u64" || t == "from_seed" || t == "from_rng")
            && text(i + 1) == Some("(")
        {
            out.push(Match {
                rule: "R10",
                col: tok.col,
                message: format!(
                    "{t} outside simkern::rng constructs an ad-hoc RNG stream; derive the \
                     seed via substream_seed and construct through the rng module's funnels"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::tokenize;

    fn matches_on(path: &str, line: &str) -> Vec<&'static str> {
        check_line(path, &tokenize(line))
            .into_iter()
            .map(|m| m.rule)
            .collect()
    }

    #[test]
    fn r1_fires_only_in_sim_crates() {
        assert_eq!(
            matches_on("crates/simkern/src/x.rs", "let m: HashMap<u32, u32>;"),
            vec!["R1"]
        );
        // cloud joined SIM_CRATES in lint v2; the sdk crate stays out.
        assert_eq!(
            matches_on("crates/cloud/src/x.rs", "let m: HashMap<u32, u32>;"),
            vec!["R1"]
        );
        assert!(matches_on("crates/sdk/src/x.rs", "let m: HashMap<u32, u32>;").is_empty());
    }

    #[test]
    fn r2_exempts_bench() {
        assert_eq!(
            matches_on("crates/cloud/src/x.rs", "let t = Instant::now();"),
            vec!["R2"]
        );
        assert!(matches_on("crates/bench/benches/x.rs", "let t = Instant::now();").is_empty());
    }

    #[test]
    fn r3_matches_method_calls_not_lookalikes() {
        let p = "crates/flight/src/pid.rs";
        assert_eq!(matches_on(p, "x.unwrap()"), vec!["R3"]);
        assert_eq!(matches_on(p, "x.expect(\"boom\")"), vec!["R3"]);
        assert_eq!(matches_on(p, "panic!(\"boom\")"), vec!["R3"]);
        assert!(matches_on(p, "x.unwrap_or(0)").is_empty());
        assert!(matches_on(p, "x.expect_err(\"fine\")").is_empty());
        assert!(matches_on(p, "fn unwrap() {}").is_empty(), "not a method call");
    }

    #[test]
    fn r4_numeric_casts_only_in_wire_files() {
        let wire = "crates/mavlink/src/codec.rs";
        assert_eq!(matches_on(wire, "let l = len as u8;"), vec!["R4"]);
        assert!(matches_on(wire, "use foo as bar;").is_empty());
        assert!(matches_on("crates/mavlink/src/wire.rs", "let l = len as u8;").is_empty());
    }

    #[test]
    fn r6_alias_definitions_are_recognized() {
        assert_eq!(
            hash_alias_name(&tokenize("type Fast = HashMap<u32, u32>;")).as_deref(),
            Some("Fast")
        );
        assert_eq!(
            hash_alias_name(&tokenize(
                "pub type Seen<T> = std::collections::HashSet<T>;"
            ))
            .as_deref(),
            Some("Seen")
        );
        assert!(hash_alias_name(&tokenize("type Slab = BTreeMap<u32, u32>;")).is_none());
        assert!(hash_alias_name(&tokenize("let x = HashMap::new();")).is_none());
        // `=` before `type` must not satisfy the pattern.
        assert!(hash_alias_name(&tokenize("let t = ty; type A = B;")).is_none());
    }

    #[test]
    fn r6_flags_alias_use_but_not_the_definition() {
        let aliases: BTreeSet<String> = ["Fast".to_string()].into_iter().collect();
        let p = "crates/simkern/src/x.rs";
        let on_use: Vec<&str> =
            check_line_with_aliases(p, &tokenize("let m: Fast = Fast::new();"), &aliases)
                .into_iter()
                .map(|m| m.rule)
                .collect();
        assert_eq!(on_use, vec!["R6", "R6"], "both mentions flagged");
        // The defining line is R1's to flag (HashMap is spelled out),
        // not R6's.
        let on_def: Vec<&str> =
            check_line_with_aliases(p, &tokenize("type Fast = HashMap<u32, u32>;"), &aliases)
                .into_iter()
                .map(|m| m.rule)
                .collect();
        assert_eq!(on_def, vec!["R1"]);
        // Outside sim crates the alias is fine.
        assert!(check_line_with_aliases(
            "crates/sdk/src/x.rs",
            &tokenize("let m: Fast = Fast::new();"),
            &aliases
        )
        .is_empty());
    }

    #[test]
    fn r7_collections_glob_only_in_sim_crates() {
        assert_eq!(
            matches_on("crates/simkern/src/x.rs", "use std::collections::*;"),
            vec!["R7"]
        );
        assert!(matches_on("crates/sdk/src/x.rs", "use std::collections::*;").is_empty());
        // Named imports of deterministic collections stay clean.
        assert!(matches_on(
            "crates/simkern/src/x.rs",
            "use std::collections::{BTreeMap, BTreeSet};"
        )
        .is_empty());
    }

    #[test]
    fn r5_statics_but_not_lifetimes() {
        let p = "crates/simkern/src/x.rs";
        assert_eq!(matches_on(p, "static mut COUNT: u64 = 0;"), vec!["R5"]);
        assert_eq!(
            matches_on(p, "pub static TABLE: Mutex<Vec<u32>> = Mutex::new(Vec::new());"),
            vec!["R5"]
        );
        assert!(matches_on(p, "fn f(s: &'static str) {}").is_empty());
        assert!(matches_on(p, "static NAMES: [&str; 2] = [\"a\", \"b\"];").is_empty());
    }

    fn island_scopes(path: &str, span: (usize, usize)) -> Scopes {
        let mut scopes = Scopes::legacy();
        scopes.island_spans.insert(path.to_string(), vec![span]);
        scopes
    }

    fn matches_in_island(line_text: &str) -> Vec<&'static str> {
        let p = "crates/core/src/fleet.rs";
        let scopes = island_scopes(p, (10, 20));
        check_line_scoped(p, 15, &tokenize(line_text), &BTreeSet::new(), &scopes)
            .into_iter()
            .map(|m| m.rule)
            .collect()
    }

    #[test]
    fn r9_flags_locks_and_blocking_io_inside_island_spans() {
        assert_eq!(matches_in_island("let k = kernel.lock();"), vec!["R9"]);
        assert_eq!(matches_in_island("if let Some(g) = m.try_lock() {"), vec!["R9"]);
        assert_eq!(
            matches_in_island("thread::sleep(Duration::from_millis(5));"),
            vec!["R9"]
        );
        assert_eq!(matches_in_island("let f = File::open(path)?;"), vec!["R9"]);
        assert_eq!(
            matches_in_island("let s = TcpStream::connect(addr)?;"),
            vec!["R9"]
        );
    }

    #[test]
    fn r9_ignores_lookalikes_and_lines_outside_the_span() {
        // `lock` as a field or a free fn is not a lock acquisition.
        assert!(matches_in_island("let l = self.lock;").is_empty());
        assert!(matches_in_island("fn lock() {}").is_empty());
        // Same tokens outside the island span stay clean.
        let p = "crates/core/src/fleet.rs";
        let scopes = island_scopes(p, (10, 20));
        assert!(
            check_line_scoped(p, 30, &tokenize("let k = kernel.lock();"), &BTreeSet::new(), &scopes)
                .is_empty()
        );
        // Line 0 (single-line entry points) disables R9 entirely.
        assert!(
            check_line_scoped(p, 0, &tokenize("let k = kernel.lock();"), &BTreeSet::new(), &scopes)
                .is_empty()
        );
    }

    #[test]
    fn r10_rng_construction_allowed_only_in_the_rng_home() {
        let line = "let rng = SmallRng::seed_from_u64(seed);";
        assert_eq!(
            matches_on("crates/simkern/src/faults.rs", line),
            vec!["R10"]
        );
        assert_eq!(matches_on("crates/planner/src/vrp.rs", line), vec!["R10"]);
        // The adversary feedback stream funnels through the same
        // home: a brain constructing its own RNG in workloads would
        // be an ad-hoc stream like any other.
        assert_eq!(
            matches_on("crates/workloads/src/adaptive.rs", line),
            vec!["R10"]
        );
        assert!(matches_on(RNG_HOME, line).is_empty(), "the funnel itself");
        assert!(
            matches_on("crates/sdk/src/x.rs", line).is_empty(),
            "non-sim crates keep their freedom"
        );
        // Mentioning the name without calling it is fine.
        assert!(matches_on("crates/simkern/src/faults.rs", "use rand::SeedableRng;").is_empty());
    }
}
