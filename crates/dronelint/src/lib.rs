//! # dronelint
//!
//! The AnDrone workspace's determinism/safety lint engine: a
//! self-contained token/line-level static-analysis pass (no external
//! parser) enforcing the invariants the simulation's seed-stability
//! rests on:
//!
//! - **R1** `nondeterministic-collection`: no `HashMap`/`HashSet` in
//!   sim-state crates.
//! - **R2** `wall-clock-or-entropy`: no `Instant`/`SystemTime`/
//!   `thread_rng` outside `crates/bench` and `scripts`.
//! - **R3** `panic-in-hot-path`: no `unwrap()`/`expect()`/`panic!` in
//!   non-test code of the Binder driver, flight stack, or MAVLink
//!   codec.
//! - **R4** `bare-numeric-cast`: no bare `as` numeric casts in the
//!   MAVLink wire path (use `try_from` or `wire.rs` helpers).
//! - **R5** `mutable-global`: no mutable or interior-mutable statics
//!   in sim crates.
//! - **R6** `alias-laundered-collection`: no *use* of a type alias
//!   that renames a `HashMap`/`HashSet` in sim-state crates (the
//!   defining line is R1's to flag).
//! - **R7** `collections-glob-import`: no `use std::collections::*`
//!   in sim-state crates.
//!
//! Violations can be suppressed inline with
//! `// dronelint:allow(R3, reason why this one is sound)` — the
//! reason is mandatory — or grandfathered in `dronelint.baseline.json`,
//! which only ratchets downward (see [`baseline`]).
//!
//! The runtime complement is the dual-run state-hash sanitizer in the
//! `androne` crate (`sanitizer` module): R1/R2 ban the *causes* of
//! nondeterminism statically; the sanitizer catches any drift that
//! slips through by hashing component state every simulated second.

pub mod baseline;
pub mod rules;
pub mod scan;

use std::path::{Path, PathBuf};

pub use baseline::{Baseline, Entry, Reconciled};
pub use rules::{RuleInfo, RULES, SIM_CRATES};

/// One confirmed lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id ("R1".."R7").
    pub rule: &'static str,
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// The trimmed source line.
    pub snippet: String,
    /// Human-readable message.
    pub message: String,
}

/// An inline suppression directive.
#[derive(Debug, Clone)]
struct Allow {
    rule: String,
    has_reason: bool,
}

/// Parses every `dronelint:allow(rule, reason)` directive in a
/// comment.
fn parse_allows(comment: &str) -> Vec<Allow> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("dronelint:allow(") {
        rest = &rest[pos + "dronelint:allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let inner = &rest[..close];
        rest = &rest[close + 1..];
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (inner.trim(), ""),
        };
        out.push(Allow {
            rule: rule.to_string(),
            has_reason: !reason.is_empty(),
        });
    }
    out
}

/// Lints one file's source text. `path` is the repo-relative path
/// (forward slashes) used for rule scoping — callers may pass a
/// pretend path to lint fixture text as if it lived in a scoped
/// location.
pub fn scan_source(path: &str, source: &str) -> Vec<Violation> {
    let lines = scan::preprocess(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut violations = Vec::new();
    // First pass: collect type aliases laundering HashMap/HashSet
    // anywhere in the file (test regions included — live code can
    // name a test-defined alias), for R6's use-site check.
    let hash_aliases: std::collections::BTreeSet<String> = lines
        .iter()
        .filter(|l| !l.code.trim().is_empty())
        .filter_map(|l| rules::hash_alias_name(&scan::tokenize(&l.code)))
        .collect();
    // Suppressions from comment-only lines apply to the next line
    // with code.
    let mut carried: Vec<Allow> = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        let mut allows = parse_allows(&line.comment);
        let has_code = !line.code.trim().is_empty();
        if !has_code {
            carried.append(&mut allows);
            continue;
        }
        allows.append(&mut carried);

        // A suppression without a reason is itself a violation: the
        // whole point is an audit trail.
        for a in &allows {
            if !a.has_reason {
                violations.push(Violation {
                    rule: "R0",
                    path: path.to_string(),
                    line: idx + 1,
                    col: 1,
                    snippet: snippet_at(&raw_lines, idx),
                    message: format!(
                        "dronelint:allow({}) without a reason; write dronelint:allow({}, why)",
                        a.rule, a.rule
                    ),
                });
            }
        }

        if line.in_test {
            continue;
        }
        for m in rules::check_line_with_aliases(path, &scan::tokenize(&line.code), &hash_aliases) {
            let suppressed = allows.iter().any(|a| a.has_reason && a.rule == m.rule);
            if suppressed {
                continue;
            }
            violations.push(Violation {
                rule: m.rule,
                path: path.to_string(),
                line: idx + 1,
                col: m.col,
                snippet: snippet_at(&raw_lines, idx),
                message: m.message,
            });
        }
    }
    violations
}

fn snippet_at(raw_lines: &[&str], idx: usize) -> String {
    raw_lines.get(idx).map(|l| l.trim().to_string()).unwrap_or_default()
}

/// Walks the workspace at `root` and lints every in-scope `.rs` file.
///
/// Scope: `crates/**/*.rs`, excluding `target/`, `vendor/`, and any
/// `fixtures/` directory (lint-test seed files are violations on
/// purpose).
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files)?;
    files.sort();
    let mut violations = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&file)?;
        violations.extend(scan_source(&rel, &source));
    }
    Ok(violations)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_with_reason_silences_the_line() {
        let src = "use std::collections::HashMap; // dronelint:allow(R1, interop shim, keys re-sorted before iteration)\n";
        assert!(scan_source("crates/simkern/src/x.rs", src).is_empty());
    }

    #[test]
    fn suppression_on_its_own_line_covers_the_next_line() {
        let src = "// dronelint:allow(R1, measured: BTree 3x slower here, order never observed)\nuse std::collections::HashMap;\n";
        assert!(scan_source("crates/simkern/src/x.rs", src).is_empty());
    }

    #[test]
    fn reasonless_suppression_is_flagged_and_does_not_suppress() {
        let src = "use std::collections::HashMap; // dronelint:allow(R1)\n";
        let v = scan_source("crates/simkern/src/x.rs", src);
        let rules: Vec<&str> = v.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"R0"), "{rules:?}");
        assert!(rules.contains(&"R1"), "{rules:?}");
    }

    #[test]
    fn suppression_for_a_different_rule_does_not_apply() {
        let src = "use std::collections::HashMap; // dronelint:allow(R2, wrong rule)\n";
        let v = scan_source("crates/simkern/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "R1");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn f(x: Option<u8>) { x.unwrap(); }\n}\n";
        assert!(scan_source("crates/flight/src/x.rs", src).is_empty());
    }

    #[test]
    fn violations_carry_exact_line_and_snippet() {
        let src = "fn ok() {}\nlet m = HashMap::new();\n";
        let v = scan_source("crates/binder/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].snippet, "let m = HashMap::new();");
    }
}
