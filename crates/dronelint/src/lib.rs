//! # dronelint
//!
//! The AnDrone workspace's determinism/safety lint engine: a
//! self-contained static-analysis pass (no external parser crates)
//! enforcing the invariants the simulation's seed-stability rests on.
//!
//! v2 is item-aware: [`items`] parses each file into fn/impl/struct/
//! enum/use/mod items, [`graph`] assembles a workspace module graph
//! plus an approximate call graph, and the R3/R4/R9 scopes are
//! *derived* by reachability from the places where a defect actually
//! costs a fleet (the fleet executor, the per-flight island, the
//! Binder translation path, the MAVLink decoders) instead of being
//! hardcoded file lists. The pre-v2 lists survive as `LEGACY_*`
//! constants pinned by a test to be a subset of what inference finds.
//!
//! The rules:
//!
//! - **R1** `nondeterministic-collection`: no `HashMap`/`HashSet` in
//!   sim-state crates.
//! - **R2** `wall-clock-or-entropy`: no `Instant`/`SystemTime`/
//!   `thread_rng` outside `crates/bench` and `scripts`.
//! - **R3** `panic-in-hot-path`: no `unwrap()`/`expect()`/`panic!` in
//!   non-test code reachable from the fleet/island/Binder/MAVLink
//!   entry points (inferred scope).
//! - **R4** `bare-numeric-cast`: no bare `as` numeric casts in code
//!   reachable from the MAVLink decoders (use `try_from` or `wire.rs`
//!   helpers).
//! - **R5** `mutable-global`: no mutable or interior-mutable statics
//!   in sim crates.
//! - **R6** `alias-laundered-collection`: no *use* of a type alias
//!   that renames a `HashMap`/`HashSet` in sim-state crates (the
//!   defining line is R1's to flag).
//! - **R7** `collections-glob-import`: no `use std::collections::*`
//!   in sim-state crates.
//! - **R8** `island-boundary-impurity`: types crossing the
//!   `run_island` signature boundary must be transitively free of
//!   `Rc`/`RefCell`/`Cell` fields (workspace-level rule, flagged at
//!   the type definition).
//! - **R9** `lock-or-blocking-io-in-island`: no lock acquisition or
//!   blocking I/O in island-reachable fn bodies (item-granular).
//! - **R10** `adhoc-rng-stream`: in sim crates, RNGs are constructed
//!   only through `simkern::rng`'s audited funnels.
//!
//! Violations can be suppressed inline with
//! `// dronelint:allow(R3, reason why this one is sound)` — the
//! reason is mandatory — or grandfathered in `dronelint.baseline.json`,
//! which only ratchets downward (see [`baseline`]).
//!
//! The runtime complement is the dual-run state-hash sanitizer in the
//! `androne` crate (`sanitizer` module): R1/R2/R10 ban the *causes* of
//! nondeterminism statically; the sanitizer catches any drift that
//! slips through by hashing component state every simulated second.

pub mod baseline;
pub mod graph;
pub mod items;
pub mod rules;
pub mod scan;

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

pub use baseline::{Baseline, Entry, Reconciled};
pub use graph::{GraphStats, Workspace};
pub use rules::{RuleInfo, Scopes, RULES, SIM_CRATES};

/// One confirmed lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id ("R0".."R10").
    pub rule: &'static str,
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// The trimmed source line.
    pub snippet: String,
    /// Human-readable message.
    pub message: String,
}

/// A full workspace analysis: violations, the inferred scopes they
/// were checked under, and graph statistics for the JSON report.
#[derive(Debug)]
pub struct Analysis {
    /// All violations, sorted by (path, line, col, rule).
    pub violations: Vec<Violation>,
    /// The reachability-derived scopes.
    pub scopes: rules::Scopes,
    /// Graph size / scope statistics.
    pub stats: graph::GraphStats,
}

/// An inline suppression directive.
#[derive(Debug, Clone)]
struct Allow {
    rule: String,
    has_reason: bool,
}

/// Parses every `dronelint:allow(rule, reason)` directive in a
/// comment.
fn parse_allows(comment: &str) -> Vec<Allow> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("dronelint:allow(") {
        rest = &rest[pos + "dronelint:allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let inner = &rest[..close];
        rest = &rest[close + 1..];
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (inner.trim(), ""),
        };
        out.push(Allow {
            rule: rule.to_string(),
            has_reason: !reason.is_empty(),
        });
    }
    out
}

/// Suppressions attached to each code line (1-based): same-line
/// directives plus any carried down from comment-only lines above.
/// This is the single implementation of the carry semantics — both
/// the line rules and the workspace-level R8 consult it.
fn allows_by_line(lines: &[scan::CodeLine]) -> BTreeMap<usize, Vec<Allow>> {
    let mut out = BTreeMap::new();
    let mut carried: Vec<Allow> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let mut allows = parse_allows(&line.comment);
        if line.code.trim().is_empty() {
            carried.append(&mut allows);
            continue;
        }
        allows.append(&mut carried);
        if !allows.is_empty() {
            out.insert(idx + 1, allows);
        }
    }
    out
}

/// Lints one file's source text under explicit scopes. `path` is the
/// repo-relative path (forward slashes) used for rule scoping —
/// callers may pass a pretend path to lint fixture text as if it
/// lived in a scoped location.
pub fn scan_source_scoped(path: &str, source: &str, scopes: &rules::Scopes) -> Vec<Violation> {
    let lines = scan::preprocess(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut violations = Vec::new();
    // First pass: collect type aliases laundering HashMap/HashSet
    // anywhere in the file (test regions included — live code can
    // name a test-defined alias), for R6's use-site check.
    let hash_aliases: BTreeSet<String> = lines
        .iter()
        .filter(|l| !l.code.trim().is_empty())
        .filter_map(|l| rules::hash_alias_name(&scan::tokenize(&l.code)))
        .collect();
    let allows = allows_by_line(&lines);
    let no_allows = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        if line.code.trim().is_empty() {
            continue;
        }
        let line_allows = allows.get(&(idx + 1)).unwrap_or(&no_allows);

        // A suppression without a reason is itself a violation: the
        // whole point is an audit trail.
        for a in line_allows {
            if !a.has_reason {
                violations.push(Violation {
                    rule: "R0",
                    path: path.to_string(),
                    line: idx + 1,
                    col: 1,
                    snippet: snippet_at(&raw_lines, idx),
                    message: format!(
                        "dronelint:allow({}) without a reason; write dronelint:allow({}, why)",
                        a.rule, a.rule
                    ),
                });
            }
        }

        if line.in_test {
            continue;
        }
        for m in rules::check_line_scoped(
            path,
            idx + 1,
            &scan::tokenize(&line.code),
            &hash_aliases,
            scopes,
        ) {
            let suppressed = line_allows.iter().any(|a| a.has_reason && a.rule == m.rule);
            if suppressed {
                continue;
            }
            violations.push(Violation {
                rule: m.rule,
                path: path.to_string(),
                line: idx + 1,
                col: m.col,
                snippet: snippet_at(&raw_lines, idx),
                message: m.message,
            });
        }
    }
    violations
}

/// Lints one file's source text under the legacy (pre-inference)
/// scopes — the right mode for single-file/fixture linting where no
/// workspace graph exists.
pub fn scan_source(path: &str, source: &str) -> Vec<Violation> {
    scan_source_scoped(path, source, &rules::Scopes::legacy())
}

fn snippet_at(raw_lines: &[&str], idx: usize) -> String {
    raw_lines.get(idx).map(|l| l.trim().to_string()).unwrap_or_default()
}

/// Analyzes in-memory sources: builds the item/call graph, infers the
/// R3/R4/R9 scopes by reachability, runs the line rules under them,
/// and appends workspace-level R8 violations.
///
/// `sources` are `(repo-relative path, text)` pairs; order does not
/// matter (violations come back path-sorted).
pub fn analyze_sources(sources: &[(String, String)]) -> Analysis {
    let parsed: Vec<(String, items::FileItems)> = sources
        .iter()
        .filter(|(path, _)| graph::in_domain(path))
        .map(|(path, text)| (path.clone(), items::parse_items(&scan::preprocess(text))))
        .collect();
    let mut ws = graph::Workspace::build(parsed);

    let hot = ws.reachable(graph::ENTRY_POINTS);
    let decode = ws.reachable(graph::DECODE_ENTRIES);
    let island = ws.reachable(&[graph::ISLAND_ENTRY]);

    let scopes = rules::Scopes {
        r3_files: ws.files_of(&hot),
        r3_prefixes: Vec::new(),
        // R4 binds to decode-reachable files inside the wire crate:
        // that is where casts touch attacker-controlled bytes. Past
        // the typed-message boundary the data is already validated
        // (and method-name over-approximation would otherwise drag
        // every `len()`/`mean()` utility file into wire scope).
        // wire.rs itself is the audited home for the format's
        // narrowings.
        r4_files: ws
            .files_of(&decode)
            .into_iter()
            .filter(|p| p.starts_with("crates/mavlink/") && p != "crates/mavlink/src/wire.rs")
            .collect(),
        island_spans: ws.spans_of(&island),
    };

    let legacy = rules::Scopes::legacy();
    let (fn_nodes, type_nodes) = ws.node_counts();
    let stats = graph::GraphStats {
        files_scanned: sources.len(),
        graph_files: ws.files.len(),
        fn_nodes,
        type_nodes,
        call_edges: ws.call_edges,
        r3_inferred_files: scopes.r3_files.len(),
        r3_legacy_files: sources.iter().filter(|(p, _)| legacy.r3_applies(p)).count(),
        r4_inferred_files: scopes.r4_files.len(),
        island_fns: island.len(),
        wall_ms: 0,
    };

    let mut violations = Vec::new();
    for (path, text) in sources {
        violations.extend(scan_source_scoped(path, text, &scopes));
    }

    // R8 is workspace-level (the purity walk crosses files), so its
    // violations are produced here and suppressed against the allows
    // at each type's definition line.
    for p in ws.island_purity_violations() {
        let source = sources
            .iter()
            .find(|(path, _)| *path == p.path)
            .map(|(_, s)| s.as_str())
            .unwrap_or("");
        let suppressed = allows_by_line(&scan::preprocess(source))
            .get(&p.line)
            .is_some_and(|a| a.iter().any(|a| a.has_reason && a.rule == "R8"));
        if suppressed {
            continue;
        }
        violations.push(Violation {
            rule: "R8",
            path: p.path,
            line: p.line,
            col: 1,
            snippet: source
                .lines()
                .nth(p.line.saturating_sub(1))
                .map(str::trim)
                .unwrap_or("")
                .to_string(),
            message: format!(
                "type `{ty}` holds a `{impure}` field and crosses the island boundary \
                 (via {chain}); island work/results cross the worker-pool thread \
                 boundary and must be plain data",
                ty = p.type_name,
                impure = p.impure,
                chain = p.chain,
            ),
        });
    }

    violations.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Analysis {
        violations,
        scopes,
        stats,
    }
}

/// Walks the workspace at `root`, runs the full item-graph analysis,
/// and returns violations plus inferred scopes and graph stats.
///
/// Scope: `crates/**/*.rs`, excluding `target/`, `vendor/`, and any
/// `fixtures/` directory (lint-test seed files are violations on
/// purpose).
pub fn analyze_workspace(root: &Path) -> std::io::Result<Analysis> {
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files)?;
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, std::fs::read_to_string(&file)?));
    }
    Ok(analyze_sources(&sources))
}

/// Walks the workspace and returns just the violations (the full
/// v2 analysis; see [`analyze_workspace`] for scopes and stats).
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    Ok(analyze_workspace(root)?.violations)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_with_reason_silences_the_line() {
        let src = "use std::collections::HashMap; // dronelint:allow(R1, interop shim, keys re-sorted before iteration)\n";
        assert!(scan_source("crates/simkern/src/x.rs", src).is_empty());
    }

    #[test]
    fn suppression_on_its_own_line_covers_the_next_line() {
        let src = "// dronelint:allow(R1, measured: BTree 3x slower here, order never observed)\nuse std::collections::HashMap;\n";
        assert!(scan_source("crates/simkern/src/x.rs", src).is_empty());
    }

    #[test]
    fn reasonless_suppression_is_flagged_and_does_not_suppress() {
        let src = "use std::collections::HashMap; // dronelint:allow(R1)\n";
        let v = scan_source("crates/simkern/src/x.rs", src);
        let rules: Vec<&str> = v.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"R0"), "{rules:?}");
        assert!(rules.contains(&"R1"), "{rules:?}");
    }

    #[test]
    fn suppression_for_a_different_rule_does_not_apply() {
        let src = "use std::collections::HashMap; // dronelint:allow(R2, wrong rule)\n";
        let v = scan_source("crates/simkern/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "R1");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn f(x: Option<u8>) { x.unwrap(); }\n}\n";
        assert!(scan_source("crates/flight/src/x.rs", src).is_empty());
    }

    #[test]
    fn violations_carry_exact_line_and_snippet() {
        let src = "fn ok() {}\nlet m = HashMap::new();\n";
        let v = scan_source("crates/binder/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].snippet, "let m = HashMap::new();");
    }

    fn src_pair(path: &str, text: &str) -> (String, String) {
        (path.to_string(), text.to_string())
    }

    #[test]
    fn analyze_sources_infers_r3_scope_from_reachability() {
        let sources = vec![
            src_pair(
                "crates/core/src/fleet.rs",
                "pub fn execute_fleet() { step(); }\npub fn run_island() {}\nfn step() { androne_flight::tick(); }\n",
            ),
            src_pair(
                "crates/flight/src/lib.rs",
                "pub fn tick() { let x: Option<u8> = None; x.unwrap(); }\n",
            ),
            src_pair(
                "crates/cloud/src/unreachable.rs",
                "pub fn lonely() { let y: Option<u8> = None; y.unwrap(); }\n",
            ),
        ];
        let a = analyze_sources(&sources);
        assert!(a.scopes.r3_applies("crates/flight/src/lib.rs"));
        assert!(
            !a.scopes.r3_applies("crates/cloud/src/unreachable.rs"),
            "unreachable file stays out of the no-panic scope"
        );
        let r3: Vec<&Violation> = a.violations.iter().filter(|v| v.rule == "R3").collect();
        assert_eq!(r3.len(), 1, "{:?}", a.violations);
        assert_eq!(r3[0].path, "crates/flight/src/lib.rs");
    }

    #[test]
    fn analyze_sources_flags_r8_at_the_definition_and_respects_allows() {
        let impure = src_pair(
            "crates/core/src/fleet.rs",
            "pub struct Work { h: Rc<u32> }\npub fn run_island(w: Work) {}\n",
        );
        let a = analyze_sources(&[impure]);
        let r8: Vec<&Violation> = a.violations.iter().filter(|v| v.rule == "R8").collect();
        assert_eq!(r8.len(), 1);
        assert_eq!((r8[0].line, r8[0].col), (1, 1));

        let allowed = src_pair(
            "crates/core/src/fleet.rs",
            "// dronelint:allow(R8, handle is rebuilt on the worker, never sent)\npub struct Work { h: Rc<u32> }\npub fn run_island(w: Work) {}\n",
        );
        let a = analyze_sources(&[allowed]);
        assert!(
            a.violations.iter().all(|v| v.rule != "R8"),
            "{:?}",
            a.violations
        );
    }

    #[test]
    fn analyze_sources_reports_graph_stats() {
        let sources = vec![src_pair(
            "crates/core/src/fleet.rs",
            "pub fn execute_fleet() {}\npub fn run_island() {}\npub struct Work;\n",
        )];
        let a = analyze_sources(&sources);
        assert_eq!(a.stats.files_scanned, 1);
        assert_eq!(a.stats.graph_files, 1);
        assert_eq!(a.stats.fn_nodes, 2);
        assert_eq!(a.stats.type_nodes, 1);
        assert!(a.stats.island_fns >= 1);
    }
}
