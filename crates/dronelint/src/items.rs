//! Item-level parsing over the scanner's blanked code view.
//!
//! [`parse_items`] extracts the items the graph analysis needs from
//! one file: `fn`s (with their body line ranges, signature types, and
//! the calls the body makes), `struct`/`enum`/`type` definitions
//! (with the type names their fields reference), `impl` blocks (to
//! attribute methods to a self type), and `use` declarations (for the
//! module-graph statistics). It is a brace-depth token walk, not a
//! real parser — the same self-contained-by-construction constraint
//! as the scanner — and it is deliberately approximate: good enough
//! to resolve reachability over this workspace's idioms, simple
//! enough to audit.

use crate::scan::{self, CodeLine};

/// A call site found inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallRef {
    /// `f(..)` — a free function call (or a local closure; resolution
    /// decides).
    Bare(String),
    /// `Type::method(..)` — the last two path segments.
    Qualified(String, String),
    /// `.method(..)` — receiver type unknown.
    Method(String),
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// The `impl` self type this fn is a method of, if any.
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based inclusive line range of the whole item (signature
    /// through closing brace). Bodyless (`fn f();`) items span the
    /// signature only.
    pub span: (usize, usize),
    /// Whether the fn sits in a `#[cfg(test)]`/`#[test]` region.
    pub in_test: bool,
    /// Type identifiers named in the signature (params + return).
    pub sig_types: Vec<String>,
    /// Calls made by the body, in source order.
    pub calls: Vec<CallRef>,
}

/// What kind of type definition a [`TypeItem`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeKind {
    /// `struct`
    Struct,
    /// `enum`
    Enum,
    /// `type` alias
    Alias,
}

/// One `struct`/`enum`/`type` item.
#[derive(Debug, Clone)]
pub struct TypeItem {
    /// The type name.
    pub name: String,
    /// struct / enum / alias.
    pub kind: TypeKind,
    /// 1-based line of the defining keyword.
    pub line: usize,
    /// Whether the definition sits in a test region.
    pub in_test: bool,
    /// Type identifiers referenced by fields / variant payloads /
    /// the alias right-hand side (including generic arguments).
    pub field_types: Vec<String>,
}

/// Every item extracted from one file.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    /// Functions (free and methods), in source order.
    pub fns: Vec<FnItem>,
    /// Type definitions, in source order.
    pub types: Vec<TypeItem>,
    /// Crate names this file imports from (`use androne_foo::..` /
    /// `use foo::..` heads), deduplicated, for module-graph stats.
    pub use_heads: Vec<String>,
    /// Number of `mod` declarations (inline or file).
    pub mods: usize,
}

/// One token plus the 1-based line it came from and the line's
/// test-region flag.
#[derive(Debug, Clone)]
struct Tok {
    text: String,
    line: usize,
    in_test: bool,
}

fn flatten(lines: &[CodeLine]) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        for t in scan::tokenize(&line.code) {
            toks.push(Tok {
                text: t.text,
                line: idx + 1,
                in_test: line.in_test,
            });
        }
    }
    toks
}

fn is_type_name(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

const PRIMITIVES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    "f32", "f64", "bool", "char", "str",
];

/// Keywords that look like `ident (` but are not calls.
const NOT_CALLS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "fn", "in", "move", "as", "let", "else",
    "impl", "where", "dyn", "ref", "mut", "pub", "use", "mod", "struct", "enum", "type",
    "const", "static", "trait", "unsafe", "break", "continue",
];

/// Parses one file's preprocessed lines into its items.
pub fn parse_items(lines: &[CodeLine]) -> FileItems {
    let toks = flatten(lines);
    let mut out = FileItems::default();
    let t = |i: usize| toks.get(i).map(|t| t.text.as_str());

    // Impl-block stack: (self type, depth the block opened at).
    let mut impl_stack: Vec<(String, i64)> = Vec::new();
    let mut depth: i64 = 0;
    let mut i = 0;

    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => {
                depth += 1;
                i += 1;
            }
            "}" => {
                depth -= 1;
                if impl_stack.last().is_some_and(|(_, d)| *d == depth) {
                    impl_stack.pop();
                }
                i += 1;
            }
            "impl" => {
                // `impl Foo {`, `impl Trait for Foo {`, `impl<T> Foo<T> {`:
                // self type = last type ident before the opening brace,
                // after `for` if present.
                let mut j = i + 1;
                let mut self_ty: Option<String> = None;
                let mut after_for = false;
                while j < toks.len() && t(j) != Some("{") && t(j) != Some(";") {
                    match t(j) {
                        Some("for") => {
                            after_for = true;
                            self_ty = None;
                        }
                        Some(s) if is_type_name(s) => {
                            if self_ty.is_none() || after_for {
                                self_ty = Some(s.to_string());
                                after_for = false;
                            } else if t(j.wrapping_sub(1)) != Some("<")
                                && t(j.wrapping_sub(1)) != Some(",")
                            {
                                // `path::To::Foo` — later segments win.
                                self_ty = Some(s.to_string());
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if t(j) == Some("{") {
                    if let Some(ty) = self_ty {
                        impl_stack.push((ty, depth));
                    }
                    depth += 1;
                    j += 1;
                }
                i = j;
            }
            "fn" => {
                let Some(name) = t(i + 1) else {
                    i += 1;
                    continue;
                };
                let name = name.to_string();
                let decl_line = toks[i].line;
                let in_test = toks[i].in_test;
                let self_ty = impl_stack.last().map(|(ty, _)| ty.clone());

                // Signature: up to the body `{` or a `;` (trait decl),
                // collecting type idents. `where` clauses are part of
                // the signature and harmless to include.
                let mut j = i + 2;
                let mut sig_types = Vec::new();
                let mut paren: i64 = 0;
                let mut angle: i64 = 0;
                while j < toks.len() {
                    match t(j) {
                        Some("(") => paren += 1,
                        Some(")") => paren -= 1,
                        Some("<") => angle += 1,
                        Some(">") => angle = (angle - 1).max(0),
                        Some("{") if paren == 0 && angle == 0 => break,
                        Some(";") if paren == 0 => break,
                        Some(s)
                            if is_type_name(s)
                                || (PRIMITIVES.contains(&s) && t(j.wrapping_sub(1)) != Some(".")) =>
                        {
                            sig_types.push(s.to_string());
                        }
                        _ => {}
                    }
                    j += 1;
                }

                if t(j) == Some(";") || j >= toks.len() {
                    out.fns.push(FnItem {
                        name,
                        self_ty,
                        line: decl_line,
                        span: (decl_line, toks.get(j).map(|t| t.line).unwrap_or(decl_line)),
                        in_test,
                        sig_types,
                        calls: Vec::new(),
                    });
                    i = j + 1;
                    continue;
                }

                // Body: from `{` to its matching `}`, collecting calls.
                let body_open = j;
                let mut body_depth: i64 = 0;
                let mut calls = Vec::new();
                let mut k = body_open;
                while k < toks.len() {
                    match t(k) {
                        Some("{") => body_depth += 1,
                        Some("}") => {
                            body_depth -= 1;
                            if body_depth == 0 {
                                break;
                            }
                        }
                        Some(s)
                            if t(k + 1) == Some("(")
                                && !NOT_CALLS.contains(&s)
                                && s.chars().next().is_some_and(|c| {
                                    c.is_alphabetic() || c == '_'
                                }) =>
                        {
                            let prev = t(k.wrapping_sub(1));
                            if prev == Some(".") {
                                calls.push(CallRef::Method(s.to_string()));
                            } else if prev == Some(":") && t(k.wrapping_sub(2)) == Some(":") {
                                // `seg::name(` — the owning segment.
                                if let Some(owner) = t(k.wrapping_sub(3)) {
                                    calls.push(CallRef::Qualified(
                                        owner.to_string(),
                                        s.to_string(),
                                    ));
                                }
                            } else if !is_type_name(s) {
                                // `Foo(..)` is a tuple-struct literal,
                                // not a call.
                                calls.push(CallRef::Bare(s.to_string()));
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                let end_line = toks.get(k).map(|t| t.line).unwrap_or(decl_line);
                out.fns.push(FnItem {
                    name,
                    self_ty,
                    line: decl_line,
                    span: (decl_line, end_line),
                    in_test,
                    sig_types,
                    calls,
                });
                i = k + 1;
            }
            "struct" | "enum" => {
                let kind = if toks[i].text == "struct" {
                    TypeKind::Struct
                } else {
                    TypeKind::Enum
                };
                let Some(name) = t(i + 1).filter(|s| is_type_name(s)) else {
                    i += 1;
                    continue;
                };
                let name = name.to_string();
                let decl_line = toks[i].line;
                let in_test = toks[i].in_test;
                // Skip generics, then the body is `{..}`, `(..);`, or
                // a bare `;` (unit struct). Collect type idents from
                // the body.
                let mut j = i + 2;
                let mut angle: i64 = 0;
                while j < toks.len() {
                    match t(j) {
                        Some("<") => angle += 1,
                        Some(">") => angle -= 1,
                        Some("{") | Some("(") | Some(";") if angle == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let mut field_types = Vec::new();
                if t(j) == Some("{") || t(j) == Some("(") {
                    let open = t(j).unwrap_or("{").to_string();
                    let close = if open == "{" { "}" } else { ")" };
                    let mut body_depth: i64 = 0;
                    let mut paren: i64 = 0;
                    while j < toks.len() {
                        match t(j) {
                            Some(s) if s == open => body_depth += 1,
                            Some(s) if s == close => {
                                body_depth -= 1;
                                if body_depth == 0 {
                                    break;
                                }
                            }
                            Some("(") => paren += 1,
                            Some(")") => paren -= 1,
                            // In a braced enum body, a capitalized
                            // ident at variant level is the variant's
                            // NAME (`enum Subsystem { Vdc, Binder }`),
                            // not a field type — only idents inside a
                            // variant's payload parens or struct
                            // braces are types.
                            Some(s)
                                if is_type_name(s)
                                    && (kind != TypeKind::Enum
                                        || body_depth > 1
                                        || paren > 0) =>
                            {
                                field_types.push(s.to_string());
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
                out.types.push(TypeItem {
                    name,
                    kind,
                    line: decl_line,
                    in_test,
                    field_types,
                });
                i = j + 1;
            }
            "type" => {
                // `type Name<..> = rhs;` — aliases forward their rhs
                // types through the purity walk.
                let Some(name) = t(i + 1).filter(|s| is_type_name(s)) else {
                    i += 1;
                    continue;
                };
                let name = name.to_string();
                let decl_line = toks[i].line;
                let in_test = toks[i].in_test;
                let mut j = i + 2;
                while j < toks.len() && t(j) != Some("=") && t(j) != Some(";") {
                    j += 1;
                }
                let mut field_types = Vec::new();
                if t(j) == Some("=") {
                    while j < toks.len() && t(j) != Some(";") {
                        if let Some(s) = t(j) {
                            if is_type_name(s) {
                                field_types.push(s.to_string());
                            }
                        }
                        j += 1;
                    }
                }
                out.types.push(TypeItem {
                    name,
                    kind: TypeKind::Alias,
                    line: decl_line,
                    in_test,
                    field_types,
                });
                i = j + 1;
            }
            "use" => {
                if let Some(head) = t(i + 1) {
                    let head = head.to_string();
                    if !out.use_heads.contains(&head) {
                        out.use_heads.push(head);
                    }
                }
                while i < toks.len() && t(i) != Some(";") {
                    i += 1;
                }
                i += 1;
            }
            "mod" => {
                out.mods += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::preprocess;

    fn items(src: &str) -> FileItems {
        parse_items(&preprocess(src))
    }

    #[test]
    fn free_fn_with_body_and_calls() {
        let f = items("fn go(x: Foo) -> Result<Bar, Err> {\n    helper(x);\n    x.method();\n    Type::assoc(x);\n}\n");
        assert_eq!(f.fns.len(), 1);
        let g = &f.fns[0];
        assert_eq!(g.name, "go");
        assert_eq!(g.self_ty, None);
        assert_eq!(g.span, (1, 5));
        assert!(g.sig_types.contains(&"Foo".to_string()));
        assert!(g.sig_types.contains(&"Bar".to_string()));
        assert_eq!(
            g.calls,
            vec![
                CallRef::Bare("helper".into()),
                CallRef::Method("method".into()),
                CallRef::Qualified("Type".into(), "assoc".into()),
            ]
        );
    }

    #[test]
    fn impl_methods_carry_self_type() {
        let f = items("impl Widget {\n    fn new() -> Self { Widget::default() }\n    fn run(&self) { self.step(); }\n}\nimpl Display for Gauge {\n    fn fmt(&self) {}\n}\n");
        assert_eq!(f.fns.len(), 3);
        assert_eq!(f.fns[0].self_ty.as_deref(), Some("Widget"));
        assert_eq!(f.fns[1].name, "run");
        assert_eq!(f.fns[1].self_ty.as_deref(), Some("Widget"));
        assert_eq!(f.fns[2].self_ty.as_deref(), Some("Gauge"));
    }

    #[test]
    fn struct_fields_and_enum_payloads_collected() {
        let f = items("pub struct Work {\n    pub plan: FlightPlan,\n    pub seed: u64,\n    cells: Vec<Rc<Thing>>,\n}\nenum Verdict {\n    Ok(Box<Flight>),\n    Bad,\n}\ntype Shared = Rc<RefCell<Kernel>>;\n");
        assert_eq!(f.types.len(), 3);
        let w = &f.types[0];
        assert_eq!(w.kind, TypeKind::Struct);
        assert!(w.field_types.contains(&"FlightPlan".to_string()));
        assert!(w.field_types.contains(&"Rc".to_string()));
        let v = &f.types[1];
        assert_eq!(v.kind, TypeKind::Enum);
        assert!(v.field_types.contains(&"Flight".to_string()));
        let a = &f.types[2];
        assert_eq!(a.kind, TypeKind::Alias);
        assert!(a.field_types.contains(&"RefCell".to_string()));
    }

    #[test]
    fn test_region_fns_are_marked() {
        let f = items("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn case() { helper(); }\n}\n");
        assert!(!f.fns[0].in_test);
        assert!(f.fns[1].in_test);
        assert!(f.fns[2].in_test);
    }

    #[test]
    fn tuple_struct_literal_is_not_a_call() {
        let f = items("fn f() -> Euid {\n    Euid(0);\n    make(1);\n}\n");
        assert_eq!(f.fns[0].calls, vec![CallRef::Bare("make".into())]);
    }

    #[test]
    fn nested_fn_braces_do_not_truncate_the_span() {
        let f = items("fn outer() {\n    if a {\n        b();\n    } else {\n        c();\n    }\n}\n");
        assert_eq!(f.fns[0].span, (1, 7));
    }

    #[test]
    fn use_heads_and_mods_counted() {
        let f = items("use std::rc::Rc;\nuse androne_simkern::Kernel;\nmod sub;\npub mod other;\n");
        assert_eq!(f.use_heads, vec!["std".to_string(), "androne_simkern".to_string()]);
        assert_eq!(f.mods, 2);
    }

    #[test]
    fn bodyless_trait_fn_is_recorded() {
        let f = items("trait T {\n    fn must(&self) -> Out;\n}\n");
        assert_eq!(f.fns.len(), 1);
        assert!(f.fns[0].calls.is_empty());
    }
}
