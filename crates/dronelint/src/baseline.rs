//! The ratcheted baseline.
//!
//! A baseline entry grandfathers one pre-existing violation. Entries
//! are keyed by `(rule, path, snippet)` — the trimmed source line —
//! rather than line numbers, so unrelated edits above a grandfathered
//! line do not churn the file. The ratchet only turns one way: new
//! violations fail the lint, and entries whose violation has been
//! fixed become *stale* and fail the lint until removed. The baseline
//! can therefore only shrink.

use std::collections::BTreeMap;

use serde::Value;

use crate::Violation;

/// One grandfathered violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry {
    /// Rule id ("R1".."R5").
    pub rule: String,
    /// Repo-relative path.
    pub path: String,
    /// Trimmed source line the violation sits on.
    pub snippet: String,
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Grandfathered entries.
    pub entries: Vec<Entry>,
}

/// Result of reconciling violations against the baseline.
#[derive(Debug, Default)]
pub struct Reconciled {
    /// Violations not covered by the baseline: these fail the lint.
    pub new: Vec<Violation>,
    /// Count of violations absorbed by baseline entries.
    pub baselined: usize,
    /// Entries with no matching violation: the ratchet demands their
    /// removal.
    pub stale: Vec<Entry>,
}

impl Baseline {
    /// Parses a baseline from its JSON text.
    pub fn parse(json: &str) -> Result<Self, String> {
        let v: Value = serde_json::from_str(json).map_err(|e| format!("baseline JSON: {e:?}"))?;
        let arr = v
            .get("entries")
            .and_then(|e| e.as_array())
            .ok_or("baseline must be an object with an `entries` array")?;
        let mut entries = Vec::new();
        for (i, e) in arr.iter().enumerate() {
            let field = |name: &str| {
                e.get(name)
                    .and_then(|f| f.as_str())
                    .map(str::to_string)
                    .ok_or(format!("baseline entry {i}: missing string field `{name}`"))
            };
            entries.push(Entry {
                rule: field("rule")?,
                path: field("path")?,
                snippet: field("snippet")?,
            });
        }
        Ok(Baseline { entries })
    }

    /// Serializes the baseline to pretty JSON.
    pub fn to_json(&self) -> String {
        let entries: Vec<Value> = self
            .entries
            .iter()
            .map(|e| {
                let mut obj = BTreeMap::new();
                obj.insert("rule".to_string(), Value::String(e.rule.clone()));
                obj.insert("path".to_string(), Value::String(e.path.clone()));
                obj.insert("snippet".to_string(), Value::String(e.snippet.clone()));
                Value::Object(obj)
            })
            .collect();
        let mut root = BTreeMap::new();
        root.insert("entries".to_string(), Value::Array(entries));
        serde_json::to_string_pretty(&Value::Object(root)).unwrap_or_default()
    }

    /// Reconciles `violations` against the baseline.
    ///
    /// Matching is multiset-style: an entry absorbs at most one
    /// violation per occurrence of the same `(rule, path, snippet)`
    /// key in the baseline, so duplicating a grandfathered line is
    /// still a new violation.
    pub fn reconcile(&self, violations: Vec<Violation>) -> Reconciled {
        let mut budget: BTreeMap<Entry, usize> = BTreeMap::new();
        for e in &self.entries {
            *budget.entry(e.clone()).or_default() += 1;
        }
        let mut out = Reconciled::default();
        for v in violations {
            let key = Entry {
                rule: v.rule.to_string(),
                path: v.path.clone(),
                snippet: v.snippet.clone(),
            };
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    out.baselined += 1;
                }
                _ => out.new.push(v),
            }
        }
        for (e, n) in budget {
            for _ in 0..n {
                out.stale.push(e.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, path: &str, snippet: &str) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line: 1,
            col: 1,
            snippet: snippet.to_string(),
            message: String::new(),
        }
    }

    #[test]
    fn round_trips_through_json() {
        let b = Baseline {
            entries: vec![Entry {
                rule: "R1".into(),
                path: "crates/simkern/src/x.rs".into(),
                snippet: "let m: HashMap<u32, u32>;".into(),
            }],
        };
        let parsed = Baseline::parse(&b.to_json()).expect("parse");
        assert_eq!(parsed.entries, b.entries);
    }

    #[test]
    fn baselined_violations_are_absorbed_new_ones_fail() {
        let b = Baseline::parse(
            r#"{"entries": [{"rule": "R1", "path": "a.rs", "snippet": "old line"}]}"#,
        )
        .expect("parse");
        let r = b.reconcile(vec![v("R1", "a.rs", "old line"), v("R1", "a.rs", "new line")]);
        assert_eq!(r.baselined, 1);
        assert_eq!(r.new.len(), 1);
        assert_eq!(r.new[0].snippet, "new line");
        assert!(r.stale.is_empty());
    }

    #[test]
    fn fixed_violations_leave_stale_entries() {
        let b = Baseline::parse(
            r#"{"entries": [{"rule": "R1", "path": "a.rs", "snippet": "gone"}]}"#,
        )
        .expect("parse");
        let r = b.reconcile(vec![]);
        assert_eq!(r.stale.len(), 1, "ratchet demands removal");
    }

    #[test]
    fn duplicate_of_grandfathered_line_is_new() {
        let b = Baseline::parse(
            r#"{"entries": [{"rule": "R1", "path": "a.rs", "snippet": "dup"}]}"#,
        )
        .expect("parse");
        let r = b.reconcile(vec![v("R1", "a.rs", "dup"), v("R1", "a.rs", "dup")]);
        assert_eq!(r.baselined, 1);
        assert_eq!(r.new.len(), 1);
    }
}
