//! Geofence breach handling: the paper's augmented recovery sequence
//! (Section 4.3) — instead of a stock failsafe landing, AnDrone
//! informs the virtual drone, disables its commands, guides the
//! drone back inside the fence, loiters, and returns control, so the
//! multi-tenant flight continues.
//!
//! ```text
//! cargo run --example geofence_breach
//! ```

use androne::flight::VfcState;
use androne::hal::GeoPoint;
use androne::mavlink::{deg_to_e7, Message};
use androne::planner::PILOT_CLIENT;
use androne::simkern::SimDuration;
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use androne::Drone;

fn main() {
    let base = GeoPoint::new(43.6084298, -85.8110359, 0.0);
    let mut drone = Drone::boot(base, 99).expect("boot");

    let waypoint = base.offset_m(50.0, 0.0, 15.0);
    drone
        .deploy_vdrone(
            "vd-user",
            VirtualDroneSpec {
                waypoints: vec![WaypointSpec {
                    latitude: waypoint.latitude,
                    longitude: waypoint.longitude,
                    altitude: 15.0,
                    max_radius: 30.0,
                }],
                max_duration: 300.0,
                energy_allotted: 60_000.0,
                continuous_devices: vec![],
                waypoint_devices: vec!["flight-control".into()],
                apps: vec![],
                app_args: Default::default(),
            },
            &[],
        )
        .unwrap();

    // Fly to the waypoint and hand over control.
    println!("Flying to the user's waypoint (30 m geofence)...");
    assert!(drone.sitl.arm_and_takeoff(15.0, SimDuration::from_secs(30)));
    assert!(drone.sitl.goto(waypoint, 5.0, 2.0, SimDuration::from_secs(60)));
    drone.vdc.borrow_mut().on_waypoint_arrived("vd-user", 0);
    drone.proxy.activate_vfc("vd-user");
    println!("Control handed to vd-user.");

    // A gust (modelled through the planner-side connection) pushes
    // the drone 60 m past the fence edge.
    println!("\nInjecting a breach: drone pushed 110 m from base...");
    let outside = base.offset_m(110.0, 0.0, 15.0);
    drone.proxy.client_send(
        PILOT_CLIENT,
        Message::SetPositionTargetGlobalInt {
            lat: deg_to_e7(outside.latitude),
            lon: deg_to_e7(outside.longitude),
            alt: 15.0,
            speed: 6.0,
        },
        &mut drone.sitl,
    );
    let mut recovered_notice = false;
    for second in 0..60 {
        for _ in 0..400 {
            drone.proxy.step(&mut drone.sitl);
        }
        for msg in drone.proxy.client_recv("vd-user") {
            if let Message::StatusText { text, .. } = msg {
                println!("  t+{second:>2}s vd-user sees: {text}");
                if text.contains("control returned") {
                    recovered_notice = true;
                }
            }
        }
        if recovered_notice {
            break;
        }
    }

    let fence_center = waypoint;
    let dist = drone.sitl.position().ground_distance_m(&fence_center);
    println!(
        "\nRecovery complete: drone {dist:.1} m from the waypoint (fence 30 m), \
         VFC state {:?}, breaches handled: {}",
        drone.proxy.vfc("vd-user").unwrap().state(),
        drone.proxy.breaches_handled
    );
    assert!(recovered_notice, "user was told control returned");
    assert_eq!(drone.proxy.vfc("vd-user").unwrap().state(), VfcState::Active);
    assert!(dist < 30.0, "back inside the fence");

    // The user resumes flying inside the fence.
    let inside = base.offset_m(45.0, 10.0, 15.0);
    drone.proxy.client_send(
        "vd-user",
        Message::SetPositionTargetGlobalInt {
            lat: deg_to_e7(inside.latitude),
            lon: deg_to_e7(inside.longitude),
            alt: 15.0,
            speed: 4.0,
        },
        &mut drone.sitl,
    );
    for _ in 0..(20 * 400) {
        drone.proxy.step(&mut drone.sitl);
    }
    println!(
        "User resumed control; drone now {:.1} m from its new target.",
        drone.sitl.position().distance_m(&inside)
    );
    assert!(drone.sitl.position().distance_m(&inside) < 3.0);
}
