//! The deterministic observability layer end to end: fly a mission
//! into an unhealed link partition, let the failsafe ladder bring
//! the drone home, and dump the black-box flight recorder plus the
//! metrics registry as one JSON document.
//!
//! The flight is run **twice** and the metric digests are asserted
//! bit-identical first — the dual-run gate that makes the JSON
//! trustworthy as evidence rather than a one-off sample.
//!
//! ```text
//! cargo run --example blackbox_recorder
//! ```

use androne::hal::GeoPoint;
use androne::obs::{metrics_to_json, BlackBoxSnapshot};
use androne::planner::{FlightPlan, Leg};
use androne::simkern::{FaultKind, FaultPlan};
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use androne::{
    execute_flight_probed, Drone, EndReason, FaultInjector, FlightRecorder, ProbeStack,
};
use serde_json::Value;
use std::collections::BTreeMap;

const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);
const SEED: u64 = 1337;
const WINDOW_S: u64 = 30;

fn spec() -> VirtualDroneSpec {
    let p = BASE.offset_m(60.0, 0.0, 15.0);
    VirtualDroneSpec {
        waypoints: vec![WaypointSpec {
            latitude: p.latitude,
            longitude: p.longitude,
            altitude: 15.0,
            max_radius: 40.0,
        }],
        max_duration: 120.0,
        energy_allotted: 40_000.0,
        continuous_devices: vec![],
        waypoint_devices: vec!["camera".into(), "flight-control".into()],
        apps: vec!["com.example.survey.apk".into()],
        app_args: Default::default(),
    }
}

fn plan() -> FlightPlan {
    FlightPlan {
        base: BASE,
        legs: vec![Leg {
            owner: "vd1".into(),
            position: BASE.offset_m(60.0, 0.0, 15.0),
            max_radius_m: 40.0,
            service_energy_j: 10_000.0,
            service_time_s: 8.0,
            eta_s: 20.0,
        }],
        estimated_duration_s: 120.0,
        estimated_energy_j: 40_000.0,
    }
}

/// One instrumented flight into a permanent link partition: returns
/// the drone (carrying its metrics), the end reason, and the frozen
/// black box.
fn fly() -> (Drone, EndReason, Option<BlackBoxSnapshot>) {
    let mut drone = Drone::boot(BASE, SEED).expect("boot");
    drone.deploy_vdrone("vd1", spec(), &[]).expect("deploy");
    let mut injector = FaultInjector::new(FaultPlan::single(FaultKind::LinkPartition, 5, 1_000));
    let mut recorder = FlightRecorder::new(WINDOW_S);
    let end_reason = {
        let mut probes = ProbeStack::new();
        probes.push(&mut injector);
        probes.push(&mut recorder);
        execute_flight_probed(&mut drone, plan(), 240.0, None, &mut probes).end_reason
    };
    (drone, end_reason, recorder.into_snapshot())
}

fn main() {
    // Dual-run gate: the observability layer is only evidence if it
    // is deterministic.
    let (drone_a, end_a, _) = fly();
    let (drone, end_b, snapshot) = fly();
    let digest_a = drone_a.obs.metrics_digest();
    let digest_b = drone.obs.metrics_digest();
    assert_eq!(end_a, EndReason::LinkLost, "partition must end the flight LinkLost");
    assert_eq!(end_a, end_b, "end reason drift between identical runs");
    assert_eq!(digest_a, digest_b, "metric digest drift between identical runs");

    let snapshot = snapshot.expect("abnormal end freezes a black box");
    println!("end reason      : {:?}", end_b);
    println!("metric digest   : {digest_b:016x} (dual-run verified)");
    println!("black-box window: {} records over {} s", snapshot.records.len(), WINDOW_S);

    let metrics = drone
        .obs
        .with(|o| metrics_to_json(&o.metrics))
        .expect("attached");
    let mut combined = BTreeMap::new();
    combined.insert("black_box".to_string(), snapshot.to_json());
    combined.insert("metrics".to_string(), metrics);
    combined.insert(
        "metrics_digest".to_string(),
        Value::String(format!("{digest_b:016x}")),
    );
    let rendered = serde_json::to_string_pretty(&Value::Object(combined)).expect("render");
    println!("{rendered}");
}
