//! Construction-site survey: the paper's Figure 2 virtual drone
//! definition, executed end to end with a survey app that captures
//! geotagged camera frames at each waypoint through the device
//! container and marks its results for cloud upload.
//!
//! ```text
//! cargo run --example construction_survey
//! ```

use androne::android::{svc_codes, svc_names, AndroneManifest};
use androne::binder::{get_service, Parcel};
use androne::container::DeviceNamespaceId;
use androne::flight_exec::execute_flight;
use androne::hal::GeoPoint;
use androne::planner::{FlightPlan, Leg};
use androne::simkern::SchedPolicy;
use androne::vdc::VirtualDroneSpec;
use androne::Drone;

const SURVEY_MANIFEST: &str = r#"<androne-manifest package="com.example.survey">
    <uses-permission name="camera" type="waypoint"/>
    <uses-permission name="flight-control" type="waypoint"/>
    <argument name="survey-areas" type="geo-list" required="true"/>
</androne-manifest>"#;

fn main() {
    // The exact JSON definition from the paper's Figure 2.
    let spec = VirtualDroneSpec::example_survey();
    println!("Virtual drone definition (Figure 2):\n{}\n", spec.to_json());

    let base = GeoPoint::new(43.6086, -85.8130, 0.0);
    let mut drone = Drone::boot(base, 2019).expect("drone boots");
    let manifest = AndroneManifest::parse(SURVEY_MANIFEST).expect("valid manifest");
    drone
        .deploy_vdrone("vd-survey", spec.clone(), &[manifest])
        .expect("deployment fits in memory");

    // The survey app's process, opened against Binder.
    let vd = drone.vdrones.get("vd-survey").unwrap();
    let container = vd.container;
    let euid = vd.apps.get("com.example.survey").unwrap().euid;
    let app_pid = {
        let mut k = drone.kernel.borrow_mut();
        k.tasks
            .spawn("survey-app", euid, container, SchedPolicy::DEFAULT)
            .unwrap()
    };
    drone
        .driver
        .open(app_pid, euid, container, DeviceNamespaceId(container.0));

    // Build the flight plan straight from the spec's two waypoints.
    let legs: Vec<Leg> = spec
        .waypoints
        .iter()
        .map(|wp| Leg {
            owner: "vd-survey".into(),
            position: wp.position(),
            max_radius_m: wp.max_radius,
            service_energy_j: spec.energy_allotted / 2.0,
            service_time_s: 10.0,
            eta_s: 0.0,
        })
        .collect();
    let plan = FlightPlan {
        base,
        legs,
        estimated_duration_s: 400.0,
        estimated_energy_j: 120_000.0,
    };

    // Fly manually, waypoint by waypoint, so the survey "app" can
    // capture frames while the drone is actually on station — the
    // device container geotags each frame from the same sensors the
    // flight controller is flying on.
    let mut frames = 0u32;
    println!("Flying the two-waypoint survey...");
    use androne::simkern::SimDuration;
    assert!(drone.sitl.arm_and_takeoff(15.0, SimDuration::from_secs(30)));
    let cam = get_service(&mut drone.driver, app_pid, svc_names::CAMERA).unwrap();
    for (wp_index, wp) in spec.waypoints.iter().enumerate() {
        assert!(
            drone
                .sitl
                .goto(wp.position(), 5.0, 2.0, SimDuration::from_secs(600)),
            "reach waypoint {wp_index}"
        );
        // Before the grant the camera is denied.
        assert!(drone
            .driver
            .transact(app_pid, cam, svc_codes::OP, Parcel::new())
            .is_err());
        drone.vdc.borrow_mut().on_waypoint_arrived("vd-survey", wp_index);
        println!("  at waypoint {wp_index}: camera granted");
        for _ in 0..4 {
            let reply = drone
                .driver
                .transact(app_pid, cam, svc_codes::OP, Parcel::new())
                .expect("camera granted at the waypoint");
            frames += 1;
            println!(
                "  frame {} @ ({:.7}, {:.7})",
                reply.i64_at(0).unwrap(),
                reply.f64_at(1).unwrap(),
                reply.f64_at(2).unwrap()
            );
            drone.sitl.run_for(SimDuration::from_millis(500));
        }
        drone.vdc.borrow_mut().on_waypoint_departed("vd-survey", wp_index);
        println!("  leaving waypoint {wp_index}: camera revoked");
    }
    // Return and land via the planned-flight machinery (already at
    // the last waypoint, so the plan collapses to the RTL leg).
    let outcome = execute_flight(&mut drone, plan, 500.0, None);

    // The app stores its mosaic and marks it for the user.
    drone
        .runtime
        .get_mut("vd-survey")
        .unwrap()
        .fs
        .write("/data/survey/orthomosaic.tif", format!("mosaic-of-{frames}-frames"));
    drone
        .vdc
        .borrow_mut()
        .mark_file("vd-survey", "/data/survey/orthomosaic.tif");

    println!(
        "\nSurvey complete: {frames} frames, {:.0} J consumed, flight time {:.0} s",
        outcome.total_energy_j, outcome.duration_s
    );
    assert!(outcome.completed);
    assert_eq!(frames, 8);
}
