//! Quickstart: order a virtual drone from the cloud portal, fly it,
//! and retrieve the results — the paper's basic usage model
//! (Section 2) in ~80 lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use androne::cloud::{AppSelection, OrderRequest};
use androne::hal::GeoPoint;
use androne::vdc::WaypointSpec;
use androne::Androne;

const MANIFEST: &str = r#"<androne-manifest package="com.example.aerial.photo">
    <uses-permission name="camera" type="waypoint"/>
    <uses-permission name="flight-control" type="waypoint"/>
    <argument name="property-address" type="string" required="true"/>
</androne-manifest>"#;

fn main() {
    // The provider's base of operations and fleet.
    let base = GeoPoint::new(43.6084298, -85.8110359, 0.0);
    let mut androne = Androne::new(base, /* fleet */ 2, /* seed */ 7);

    // A developer publishes an aerial-photography app to the store.
    androne
        .cloud
        .app_store
        .publish(MANIFEST, "Aerial photography for real estate")
        .expect("valid manifest");

    // A real-estate agent finds it and orders a virtual drone for a
    // property 120 m north of the base.
    let listing = &androne.cloud.app_store.search("real estate")[0];
    println!("Found app: {} — {}", listing.package, listing.description);

    let property = base.offset_m(120.0, 40.0, 15.0);
    let order = androne
        .cloud
        .portal
        .place_order(
            &androne.cloud.app_store,
            OrderRequest {
                user: "agent-smith".into(),
                waypoints: vec![WaypointSpec {
                    latitude: property.latitude,
                    longitude: property.longitude,
                    altitude: 15.0,
                    max_radius: 30.0,
                }],
                drone_type: "video".into(),
                apps: vec![AppSelection {
                    package: "com.example.aerial.photo".into(),
                    args: [(
                        "property-address".to_string(),
                        serde_json::json!("14 Maple Street"),
                    )]
                    .into_iter()
                    .collect(),
                }],
                extra_waypoint_devices: vec![],
                extra_continuous_devices: vec![],
                max_charge_cents: 150.0,
                max_duration_s: 20.0,
                flexible_schedule: true,
            },
        )
        .expect("order placed");
    println!(
        "Order #{} placed: virtual drone '{}' with {:.0} J of energy",
        order.order_id, order.vd_name, order.spec.energy_allotted
    );

    // AnDrone plans and flies the mission.
    let outcomes = androne
        .execute_orders(std::slice::from_ref(&order), 400.0)
        .expect("flight executes");
    let outcome = &outcomes[0];
    println!(
        "Flight finished in {:.0} s using {:.0} J; completed: {}",
        outcome.duration_s, outcome.total_energy_j, outcome.completed
    );
    for entry in &outcome.log {
        println!("  {entry:?}");
    }

    // Billing and notifications reflect the flight.
    let bill = androne.cloud.billing.bill("agent-smith");
    println!(
        "Bill for agent-smith: {:.0} J drone energy (~{:.2} cents)",
        bill.energy_j,
        bill.total_cents(&androne.cloud.portal.prices)
    );
    for n in &androne.cloud.notifications {
        println!("notify[{:?}] {}: {}", n.kind, n.user, n.message);
    }
    assert!(outcome.completed, "quickstart flight should complete");
}
