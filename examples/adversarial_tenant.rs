//! An adversarial tenant end to end: one virtual drone mounts a
//! Binder transaction flood mid-flight, the per-tenant QoS budget
//! throttles it, and the flight's 400 Hz fast loop never leaves the
//! PREEMPT_RT envelope. The black box is dumped as JSON afterwards —
//! look for the `binder_throttle` trace events (the enforcement
//! edges) and the `jitter_tail` array (the RT-deadline monitor's
//! final wakeup latencies, all far under the 2500 µs budget).
//!
//! ```text
//! cargo run --example adversarial_tenant
//! ```

use androne::hal::GeoPoint;
use androne::obs::metrics_to_json;
use androne::planner::{FlightPlan, Leg};
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use androne::workloads::{AttackEvent, AttackKind, AttackPlan, ARDUPILOT_DEADLINE_US};
use androne::{
    execute_flight_probed, AttackDefense, AttackInjector, Drone, EndReason, ProbeStack, RtMonitor,
};
use serde_json::Value;
use std::collections::BTreeMap;

const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);
const SEED: u64 = 1337;

fn spec() -> VirtualDroneSpec {
    let p = BASE.offset_m(60.0, 0.0, 15.0);
    VirtualDroneSpec {
        waypoints: vec![WaypointSpec {
            latitude: p.latitude,
            longitude: p.longitude,
            altitude: 15.0,
            max_radius: 40.0,
        }],
        max_duration: 120.0,
        energy_allotted: 40_000.0,
        continuous_devices: vec![],
        waypoint_devices: vec!["camera".into(), "flight-control".into()],
        apps: vec!["com.example.survey.apk".into()],
        app_args: Default::default(),
    }
}

fn plan() -> FlightPlan {
    FlightPlan {
        base: BASE,
        legs: vec![Leg {
            owner: "vd1".into(),
            position: BASE.offset_m(60.0, 0.0, 15.0),
            max_radius_m: 40.0,
            service_energy_j: 10_000.0,
            service_time_s: 8.0,
            eta_s: 20.0,
        }],
        estimated_duration_s: 120.0,
        estimated_energy_j: 40_000.0,
    }
}

fn main() {
    let mut drone = Drone::boot(BASE, SEED).expect("boot");
    drone.deploy_vdrone("vd1", spec(), &[]).expect("deploy");
    let container = drone.vdrones["vd1"].container;

    // vd1 floods Binder with 600 transactions per simulated second
    // from t=2 to t=40 and saturates the shared CPU from t=4; the
    // default defense arms its token-bucket budget (120/s, burst
    // 240) and clamps the CPU quota at attack time.
    let mut attack = AttackPlan::single(AttackKind::BinderFlood { per_tick: 600 }, "vd1", 2, 40);
    attack.events.push(AttackEvent {
        kind: AttackKind::CpuSaturation { demand: 3.0 },
        attacker: "vd1".into(),
        arm_tick: 4,
        disarm_tick: 40,
    });
    let mut attacker = AttackInjector::new(attack, Some(AttackDefense::default()));
    let mut monitor = RtMonitor::new(SEED);
    let outcome = {
        let mut probes = ProbeStack::new();
        probes.push(&mut attacker);
        probes.push(&mut monitor);
        execute_flight_probed(&mut drone, plan(), 240.0, None, &mut probes)
    };

    assert_eq!(
        outcome.end_reason,
        EndReason::Completed,
        "the throttled flood must not cost the mission"
    );
    assert_eq!(monitor.misses(), 0, "fast loop held under attack");
    assert!(monitor.max_us() < ARDUPILOT_DEADLINE_US);

    let throttles = drone.driver.throttle_count(&container);
    assert!(throttles > 0, "the budget engaged");
    println!("end reason       : {:?}", outcome.end_reason);
    println!(
        "attack           : binder flood 600/s over t=2..40, budget {}/s burst {}",
        AttackDefense::default().budget.rate_per_s,
        AttackDefense::default().budget.burst
    );
    println!("throttled txns   : {throttles} (container {})", container.0);
    println!(
        "fast loop        : {} samples, {} misses, max {:.1} µs (budget {ARDUPILOT_DEADLINE_US} µs)",
        monitor.samples(),
        monitor.misses(),
        monitor.max_us()
    );
    for action in attacker.actions() {
        println!("injector         : {action}");
    }

    // A completed flight freezes no automatic black box, so snapshot
    // the full flight window by hand: the throttle edges and the
    // jitter tail ride the same JSON the crash recorder emits.
    let window_ns = 240u64 * 1_000_000_000;
    let snapshot = drone
        .obs
        .snapshot_window(window_ns, "Completed")
        .expect("attached");
    let throttle_edges = snapshot
        .records
        .iter()
        .filter(|r| r.record.event.kind() == "binder_throttle")
        .count();
    assert!(throttle_edges > 0, "throttle edges reached the black box");
    assert!(!snapshot.jitter_tail.is_empty(), "the monitor fed the jitter tail");
    // The enforcement-trajectory tails ride the same recent-tail
    // mechanism: per-tick throttle deltas and the armed CPU quota.
    assert!(
        !snapshot.throttle_tail.is_empty(),
        "enforcement fed the throttle trajectory tail"
    );
    assert!(
        !snapshot.cpu_quota_tail.is_empty(),
        "the CPU-quota clamp fed its tail"
    );
    println!(
        "black box        : {} records, {throttle_edges} binder_throttle edges, jitter tail {} samples",
        snapshot.records.len(),
        snapshot.jitter_tail.len()
    );
    println!(
        "enforcement tails: throttle trajectory {} ticks, cpu quota {} ticks",
        snapshot.throttle_tail.len(),
        snapshot.cpu_quota_tail.len()
    );

    let metrics = drone
        .obs
        .with(|o| metrics_to_json(&o.metrics))
        .expect("attached");
    let mut combined = BTreeMap::new();
    combined.insert("black_box".to_string(), snapshot.to_json());
    combined.insert("metrics".to_string(), metrics);
    let rendered = serde_json::to_string_pretty(&Value::Object(combined)).expect("render");
    println!("{rendered}");
}
