//! Interactive remote control over cellular: a "smartphone" ground
//! station pilots its virtual drone through real MAVLink frames over
//! the LTE link model — the paper's Section 6.5 usage (gamepad +
//! ground station over the Internet vs an RF controller), end to
//! end through the VFC.
//!
//! ```text
//! cargo run --example interactive_remote
//! ```

use androne::hal::GeoPoint;
use androne::mavlink::{channel, deg_to_e7, MavResult, Message};
use androne::simkern::{LinkModel, SimDuration, SimTime};
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use androne::Drone;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let base = GeoPoint::new(43.6084298, -85.8110359, 0.0);
    let mut drone = Drone::boot(base, 650).expect("boot");
    let waypoint = base.offset_m(60.0, 0.0, 15.0);
    drone
        .deploy_vdrone(
            "vd-remote",
            VirtualDroneSpec {
                waypoints: vec![WaypointSpec {
                    latitude: waypoint.latitude,
                    longitude: waypoint.longitude,
                    altitude: 15.0,
                    max_radius: 40.0,
                }],
                max_duration: 300.0,
                energy_allotted: 60_000.0,
                continuous_devices: vec![],
                waypoint_devices: vec!["flight-control".into()],
                apps: vec![],
                app_args: Default::default(),
            },
            &[],
        )
        .unwrap();

    // Fly to the waypoint and hand over.
    println!("Positioning the drone at the user's waypoint...");
    assert!(drone.sitl.arm_and_takeoff(15.0, SimDuration::from_secs(30)));
    assert!(drone.sitl.goto(waypoint, 5.0, 2.0, SimDuration::from_secs(60)));
    drone.vdc.borrow_mut().on_waypoint_arrived("vd-remote", 0);
    drone.proxy.activate_vfc("vd-remote");

    // The user's phone connects over LTE (tunnelled through the
    // per-container VPN).
    let (mut phone, mut vpn_endpoint) = channel(LinkModel::cellular_lte(), 254, 1);
    let mut rng = SmallRng::seed_from_u64(5);
    let mut now = SimTime::ZERO;
    let step = SimDuration::from_micros(2_500);

    // Pilot a small square pattern inside the 40 m fence.
    let pattern = [
        (20.0, 0.0),
        (20.0, 20.0),
        (-10.0, 20.0),
        (-10.0, -15.0),
        (0.0, 0.0),
    ];
    println!("Flying a pattern over cellular; per-leg command → ack round trips:");
    for (north, east) in pattern {
        let target = waypoint.offset_m(north, east, 0.0);
        let sent_at = now;
        phone.send(
            Message::SetPositionTargetGlobalInt {
                lat: deg_to_e7(target.latitude),
                lon: deg_to_e7(target.longitude),
                alt: 15.0,
                speed: 4.0,
            },
            now,
            &mut rng,
        );
        // Run the drone until it reaches the target, relaying frames
        // between the cellular endpoint and the proxy each step.
        let mut ack_rtt: Option<SimDuration> = None;
        loop {
            now += step;
            // Downlink: deliver phone frames to the VFC.
            for frame in vpn_endpoint.recv(now) {
                drone
                    .proxy
                    .client_send("vd-remote", frame.msg, &mut drone.sitl);
            }
            drone.proxy.step(&mut drone.sitl);
            // Uplink: VFC replies/telemetry back over LTE.
            for msg in drone.proxy.client_recv("vd-remote") {
                let important = matches!(msg, Message::StatusText { .. });
                if let Some(at) = vpn_endpoint.send(msg, now, &mut rng) {
                    // Time the first reply as the user-visible ack.
                    if ack_rtt.is_none() {
                        ack_rtt = Some(at - sent_at);
                    }
                } else if important {
                    // Telemetry loss is tolerable; notices are not
                    // (a real deployment retries; we just log).
                    println!("  (a status notice was lost in the air)");
                }
            }
            let _ = phone.recv(now);
            if drone.sitl.position().distance_m(&target) < 2.0 {
                break;
            }
            assert!(
                now.as_secs_f64() < 600.0,
                "pattern leg should finish promptly"
            );
        }
        println!(
            "  leg to ({north:>5.1} N, {east:>5.1} E): reached in {:.1}s, first ack after {}",
            (now - sent_at).as_secs_f64(),
            ack_rtt
                .map(|d| format!("{:.0} ms", d.as_secs_f64() * 1e3))
                .unwrap_or_else(|| "(lost)".into())
        );
    }

    // A command outside the whitelist is denied with a proper ack.
    phone.send(
        Message::CommandLong {
            command: androne::mavlink::MavCmd::ComponentArmDisarm,
            params: [0.0; 7],
        },
        now,
        &mut rng,
    );
    now += SimDuration::from_millis(400);
    for frame in vpn_endpoint.recv(now) {
        drone
            .proxy
            .client_send("vd-remote", frame.msg, &mut drone.sitl);
    }
    let denied = drone.proxy.client_recv("vd-remote").into_iter().any(|m| {
        matches!(
            m,
            Message::CommandAck {
                result: MavResult::Denied,
                ..
            }
        )
    });
    println!("\ndisarm attempt denied by the VFC whitelist: {denied}");
    assert!(denied);
    println!(
        "pattern complete; drone {:.1} m from the waypoint, sent {} packets, lost {}",
        drone.sitl.position().distance_m(&waypoint),
        phone.packets_sent() + vpn_endpoint.packets_sent(),
        phone.packets_lost() + vpn_endpoint.packets_lost()
    );
}
