//! Multi-tenant flight: the paper's Section 6.6 demonstration — one
//! physical flight serving three third parties: an autonomous survey
//! app, an interactive remote-control user, and a direct-access
//! power user, each confined to its own waypoint, devices, and
//! geofence.
//!
//! ```text
//! cargo run --example multi_tenant_flight
//! ```

use androne::flight_exec::{execute_flight, FlightLog};
use androne::hal::GeoPoint;
use androne::planner::{FlightPlan, Leg};
use androne::sdk::run_command;
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use androne::Drone;

fn wp(base: &GeoPoint, north: f64, east: f64, radius: f64) -> WaypointSpec {
    let p = base.offset_m(north, east, 15.0);
    WaypointSpec {
        latitude: p.latitude,
        longitude: p.longitude,
        altitude: 15.0,
        max_radius: radius,
    }
}

fn spec(waypoint: WaypointSpec, devices: &[&str], energy: f64) -> VirtualDroneSpec {
    VirtualDroneSpec {
        waypoints: vec![waypoint],
        max_duration: 60.0,
        energy_allotted: energy,
        continuous_devices: vec![],
        waypoint_devices: devices.iter().map(|d| d.to_string()).collect(),
        apps: vec![],
        app_args: Default::default(),
    }
}

fn main() {
    let base = GeoPoint::new(43.6084298, -85.8110359, 0.0);
    let mut drone = Drone::boot(base, 66).expect("boot");

    println!("Deploying three tenants onto one drone...");
    drone
        .deploy_vdrone(
            "vd-survey",
            spec(wp(&base, 80.0, 0.0, 40.0), &["camera", "gps", "flight-control"], 30_000.0),
            &[],
        )
        .unwrap();
    drone
        .deploy_vdrone(
            "vd-interactive",
            spec(wp(&base, 80.0, 90.0, 25.0), &["flight-control"], 25_000.0),
            &[],
        )
        .unwrap();
    drone
        .deploy_vdrone(
            "vd-direct",
            spec(wp(&base, 0.0, 100.0, 30.0), &["camera", "flight-control"], 20_000.0),
            &[],
        )
        .unwrap();
    println!(
        "Board memory in use: {:.0} MB of 880 MB",
        drone.memory_used() as f64 / (1024.0 * 1024.0)
    );

    let mk_leg = |owner: &str, north: f64, east: f64, radius: f64, secs: f64| Leg {
        owner: owner.into(),
        position: base.offset_m(north, east, 15.0),
        max_radius_m: radius,
        service_energy_j: 50_000.0,
        service_time_s: secs,
        eta_s: 0.0,
    };
    let plan = FlightPlan {
        base,
        legs: vec![
            mk_leg("vd-survey", 80.0, 0.0, 40.0, 10.0),
            mk_leg("vd-interactive", 80.0, 90.0, 25.0, 12.0),
            mk_leg("vd-direct", 0.0, 100.0, 30.0, 8.0),
        ],
        estimated_duration_s: 300.0,
        estimated_energy_j: 130_000.0,
    };

    println!("\nExecuting the three-waypoint flight...");
    let outcome = execute_flight(&mut drone, plan, 400.0, None);
    for entry in &outcome.log {
        match entry {
            FlightLog::WaypointHandover {
                owner,
                flight_control,
                ..
            } => println!("  → handover to {owner} (flight control: {flight_control})"),
            FlightLog::WaypointEnd { owner, reason, .. } => {
                println!("  ← {owner} done ({reason:?})")
            }
            other => println!("  {other:?}"),
        }
    }

    println!("\nPer-tenant energy bills:");
    for (vd, j) in &outcome.vdrone_energy_j {
        println!("  {vd}: {j:.0} J");
    }

    // The direct-access tenant checks its budget over the console.
    let vd = drone.vdrones.get("vd-direct").unwrap();
    println!("\nvd-direct console:");
    println!("  $ energy-left\n  {}", run_command(&vd.sdk, "energy-left"));
    println!("  $ time-left\n  {}", run_command(&vd.sdk, "time-left"));

    println!(
        "\nFlight complete: {:.0} s, {:.0} J total, landed {} m from base, peak AED {:.2}°",
        outcome.duration_s,
        outcome.total_energy_j,
        drone.sitl.position().ground_distance_m(&base).round(),
        drone.sitl.max_attitude_divergence.to_degrees()
    );
    assert!(outcome.completed);
    assert!(drone.sitl.on_ground());
}
