//! Fleet planning: the Dorling-style VRP assigning ten waypoints
//! across a two-drone fleet — first exactly as the paper's planner
//! works (waypoints independent, owners may interleave), then with
//! this reproduction's *extension*: user-prescribed waypoint ordering
//! and no-interleave grouping, the paper's stated future work.
//!
//! ```text
//! cargo run --example fleet_planning
//! ```

use androne::energy::DorlingModel;
use androne::hal::GeoPoint;
use androne::planner::{FlightPlan, RouteConstraints, VrpProblem, WaypointTask};

fn main() {
    let base = GeoPoint::new(43.6084298, -85.8110359, 0.0);
    // Ten waypoints from four customers scattered around the base.
    let sites: [(&str, f64, f64); 10] = [
        ("survey-co", 400.0, 100.0),
        ("survey-co", 500.0, 150.0),
        ("survey-co", 600.0, 100.0),
        ("realty", -300.0, 250.0),
        ("realty", -350.0, 300.0),
        ("news", 100.0, -450.0),
        ("news", 250.0, -500.0),
        ("inspect", 550.0, 130.0),
        ("inspect", -320.0, 280.0),
        ("inspect", 150.0, -480.0),
    ];
    let tasks: Vec<WaypointTask> = sites
        .iter()
        .map(|(owner, n, e)| WaypointTask {
            owner: owner.to_string(),
            position: base.offset_m(*n, *e, 15.0),
            service_energy_j: 4_000.0,
            service_time_s: 45.0,
        })
        .collect();
    let problem = VrpProblem {
        depot: base,
        tasks,
        fleet_size: 2,
        battery_budget_j: 160_000.0,
        model: DorlingModel::f450_prototype(),
    };

    let print_plan = |title: &str, plans: &[FlightPlan]| {
        println!("\n{title}");
        for (i, plan) in plans.iter().enumerate() {
            let owners: Vec<&str> = plan.legs.iter().map(|l| l.owner.as_str()).collect();
            println!(
                "  drone {}: {:?}  ({:.0} s, {:.0} kJ)",
                i + 1,
                owners,
                plan.estimated_duration_s,
                plan.estimated_energy_j / 1000.0
            );
        }
    };

    // 1. The paper's planner: waypoints independent.
    let sol = problem.solve(30_000, 7);
    problem.validate(&sol).expect("valid");
    let plans = FlightPlan::from_solution(&problem, &sol, |_| 30.0);
    print_plan("Paper planner (owners may interleave):", &plans);
    let interleaved = plans.iter().any(|p| {
        p.legs
            .windows(3)
            .any(|w| w[0].owner == w[2].owner && w[0].owner != w[1].owner)
    });
    println!("  interleaving observed: {interleaved}");

    // 2. Extension: survey-co's waypoints in order, and the realty
    //    pair grouped with no other party in between.
    let constraints = RouteConstraints::none()
        .in_order(&[0, 1, 2])
        .grouped(&[3, 4]);
    let sol = problem.solve_constrained(30_000, 7, &constraints);
    problem.validate(&sol).expect("valid");
    constraints.check(&sol).expect("constraints hold");
    let plans = FlightPlan::from_solution(&problem, &sol, |_| 30.0);
    print_plan(
        "Extended planner (survey-co ordered, realty grouped):",
        &plans,
    );

    // Show each customer their operating window.
    println!("\nOperating windows (start-end after launch):");
    for customer in ["survey-co", "realty", "news", "inspect"] {
        for plan in &plans {
            if let Some((start, end)) = plan.operating_window(customer) {
                println!("  {customer:<10} {start:>6.0}s - {end:>6.0}s");
                break;
            }
        }
    }
    println!(
        "\nconstraint checks passed: ordering preserved, group contiguous, \
         battery and fleet limits respected"
    );
}
