#!/usr/bin/env bash
# Trace/black-box smoke gate.
#
# Runs the blackbox_recorder example — a mission flown twice into an
# unhealed link partition with the dual-run metric-digest assertion
# inside — and greps the combined JSON dump for the contract keys
# offline tooling relies on: the black box (end reason, windowed
# records), the metrics registry (counters/gauges/histograms), and
# the FNV digest. Exits nonzero if the example fails its internal
# determinism asserts or the JSON loses a key.
#
# Usage: scripts/trace.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== trace gate (black-box recorder + metrics JSON) =="
OUT="$(cargo run -q --release --example blackbox_recorder)"

for key in black_box end_reason LinkLost records link_failsafe \
           metrics counters gauges histograms digest metrics_digest \
           mav.failsafe.rtl binder.latency_ns flight.duration_s \
           latency_tail; do
    if ! grep -qF "$key" <<<"$OUT"; then
        echo "FAIL: key '$key' missing from blackbox_recorder output" >&2
        exit 1
    fi
done

echo "PASS: black box + metrics JSON carry all contract keys"
