#!/usr/bin/env bash
# Trace/black-box smoke gate.
#
# Runs the blackbox_recorder example — a mission flown twice into an
# unhealed link partition with the dual-run metric-digest assertion
# inside — and greps the combined JSON dump for the contract keys
# offline tooling relies on: the black box (end reason, windowed
# records), the metrics registry (counters/gauges/histograms), and
# the FNV digest. Then runs the adversarial_tenant example and checks
# the enforcement-side contract keys: the RT-deadline jitter tail and
# the enforcement-trajectory tails (per-tick throttle deltas, armed
# CPU quota) that ride the same recent-tail mechanism. Exits nonzero
# if an example fails its internal asserts or the JSON loses a key.
#
# Usage: scripts/trace.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== trace gate (black-box recorder + metrics JSON) =="
OUT="$(cargo run -q --release --example blackbox_recorder)"

for key in black_box end_reason LinkLost records link_failsafe \
           metrics counters gauges histograms digest metrics_digest \
           mav.failsafe.rtl binder.latency_ns flight.duration_s \
           latency_tail; do
    if ! grep -qF "$key" <<<"$OUT"; then
        echo "FAIL: key '$key' missing from blackbox_recorder output" >&2
        exit 1
    fi
done

echo "== trace gate (adversarial tenant enforcement tails) =="
ADV="$(cargo run -q --release --example adversarial_tenant)"

for key in binder_throttle jitter_tail throttle_tail cpu_quota_tail \
           binder.throttle_trajectory cpu.quota_millicores \
           flight.jitter_us attack.transitions; do
    if ! grep -qF "$key" <<<"$ADV"; then
        echo "FAIL: key '$key' missing from adversarial_tenant output" >&2
        exit 1
    fi
done

echo "PASS: black box + metrics JSON carry all contract keys"
