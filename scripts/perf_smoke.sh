#!/usr/bin/env bash
# Perf smoke: build release, run the zero-copy micro benches at a
# reduced sample count, and regenerate BENCH_binder_fanout.json.
#
# The report's `acceptance.pass` field records whether the gated
# speedups held (>=2x Binder echo round-trip, >=3x 8-client
# fan-out); this script fails if they did not.
#
# Usage: scripts/perf_smoke.sh [scale]
#   scale: ANDRONE_BENCH_SCALE value (default 20; higher = faster,
#          noisier). Pass 1 for a full-fidelity run.

set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-20}"
OUT="${ANDRONE_BENCH_OUT:-$PWD/BENCH_binder_fanout.json}"

cargo build --release
ANDRONE_BENCH_SCALE="$SCALE" ANDRONE_BENCH_OUT="$OUT" \
    cargo bench --bench binder_fanout

if grep -q '"pass": true' "$OUT"; then
    echo "perf smoke PASS ($OUT)"
else
    echo "perf smoke FAIL: acceptance gate not met (see $OUT)" >&2
    exit 1
fi
