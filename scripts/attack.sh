#!/usr/bin/env bash
# Adversarial-tenant gate.
#
# Default mode runs the DoS attack suite (tests/adversarial.rs) in
# release: seed-generated attack plans — Binder floods, parcel bombs,
# telemetry storms, CPU saturation, fd exhaustion — driven against
# full fleet runs, holding the five gate invariants: the 400 Hz fast
# loop never misses its 2500 µs deadline with enforcement on, a
# pinned plan with enforcement off demonstrably breaches it,
# dual-run and thread-matrix digests are bit-identical, every tenant
# reaches a terminal ledger-consistent outcome, and an empty attack
# plan is provably zero-work. The cyclictest contrast (throttled vs
# unenforced interference profiles) rides the same suite.
#
# --adaptive instead runs the closed-loop gate (tests/adaptive.rs):
# attacker brains that re-plan each tick from their own admission
# feedback (refill probing, rung-edge riding, collusion), proving the
# hardened posture (aggregate admission cap + ladder hysteresis +
# refill jitter) holds the fast loop where per-tenant-only defense
# demonstrably does not (the pinned synchronized-collusion breach).
#
# The test log is written to target/attack-report/ for CI to upload.
#
# Usage: scripts/attack.sh [seeds] [--threads "1 4 8"] [--adaptive]

set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS=4
THREADS="1 4 8"
MODE=open-loop
while [[ $# -gt 0 ]]; do
    case "$1" in
        --threads) THREADS="$2"; shift 2 ;;
        --adaptive) MODE=adaptive; shift ;;
        *) SEEDS="$1"; shift ;;
    esac
done

mkdir -p target/attack-report
if [[ "$MODE" == adaptive ]]; then
    echo "== adaptive adversary gate (${SEEDS} generated campaigns, dual-run, threads matrix: ${THREADS}) =="
    ADAPTIVE_SEEDS="${SEEDS}" ADAPTIVE_THREADS="${THREADS}" \
        cargo test --release -p androne --test adaptive -- --nocapture \
        | tee target/attack-report/adaptive.log
else
    echo "== adversarial gate (${SEEDS} generated attack plans, dual-run, threads matrix: ${THREADS}) =="
    ATTACK_SEEDS="${SEEDS}" ATTACK_THREADS="${THREADS}" \
        cargo test --release -p androne --test adversarial -- --nocapture \
        | tee target/attack-report/adversarial.log
fi
