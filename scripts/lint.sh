#!/usr/bin/env bash
# Determinism/safety lint + dual-run sanitizer gate.
#
# 1. dronelint: token-level rules R1-R7 over the workspace, reconciled
#    against dronelint.baseline.json (new violations or stale entries
#    fail; the baseline only shrinks).
# 2. The state-hash sanitizer: runs the full-system mission twice
#    under one seed and bisects to the first divergent tick if the
#    per-second component hashes ever differ.
#
# Usage: scripts/lint.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dronelint (rules R1-R7, ratcheted baseline) =="
cargo run -q -p dronelint -- --format json

echo "== dual-run determinism sanitizer =="
cargo test -q -p androne --test determinism
