#!/usr/bin/env bash
# Determinism/safety lint + dual-run sanitizer gate.
#
# 1. dronelint: item-graph rules R1-R10 over the workspace, reconciled
#    against dronelint.baseline.json (new violations or stale entries
#    fail; the baseline only shrinks). The machine-readable report —
#    violations plus call-graph statistics — is written to
#    target/dronelint-report.json for CI to upload.
# 2. dronelint --self-check: the lint crate itself must be clean under
#    its own rules, with no baseline escape hatch.
# 3. The state-hash sanitizer: runs the full-system mission twice
#    under one seed and bisects to the first divergent tick if the
#    per-second component hashes ever differ.
#
# Usage: scripts/lint.sh                 run the full gate
#        scripts/lint.sh --explain R<N>  print one rule's rationale
#                                        and example fix, then exit

set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--explain" ]]; then
    exec cargo run -q -p dronelint -- --explain "${2:?usage: scripts/lint.sh --explain R<N>}"
fi

echo "== dronelint (rules R1-R10, inferred scopes, ratcheted baseline) =="
mkdir -p target
cargo run -q -p dronelint -- --out target/dronelint-report.json

echo "== dronelint self-check (crates/dronelint under its own rules) =="
cargo run -q -p dronelint -- --self-check

echo "== dual-run determinism sanitizer =="
cargo test -q -p androne --test determinism
