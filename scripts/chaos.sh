#!/usr/bin/env bash
# Seeded chaos gate.
#
# Runs the chaos suite in release with a widened seed sweep: 24
# generated fault plans, each flown twice, holding the four gate
# invariants (containment, energy accounting, defined end, dual-run
# bit-identity) plus one targeted test per fault kind and the
# empty-plan baseline bit-identity check.
#
# Usage: scripts/chaos.sh [seeds]

set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${1:-24}"

echo "== chaos gate (${SEEDS} seeded fault plans, dual-run) =="
CHAOS_SEEDS="${SEEDS}" cargo test -q --release -p androne --test chaos
