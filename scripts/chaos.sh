#!/usr/bin/env bash
# Seeded chaos gate.
#
# Default mode runs the single-flight chaos suite in release with a
# widened seed sweep: 24 generated fault plans, each flown twice,
# holding the four gate invariants (containment, energy accounting,
# defined end, dual-run bit-identity) plus one targeted test per
# fault kind and the empty-plan baseline bit-identity check.
#
# Fleet mode (--fleet) runs the fleet chaos gate instead: generated
# FleetFaultPlans over multi-wave, multi-flight, multi-tenant service
# runs, holding dual-run fleet-digest identity, crash containment
# against the no-fault baseline, energy/time conservation across
# crash→resume, and terminal resolution for every tenant. Every gate
# plan is additionally re-run at each worker-pool width in the
# --threads matrix (default "1 4 8") and must reproduce the
# sequential run's fleet digest and metrics digest bit for bit.
#
# Usage: scripts/chaos.sh [seeds]
#        scripts/chaos.sh --fleet [seeds] [--threads "1 4 8"]

set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fleet" ]]; then
    shift
    SEEDS=8
    THREADS="1 4 8"
    while [[ $# -gt 0 ]]; do
        case "$1" in
            --threads) THREADS="$2"; shift 2 ;;
            *) SEEDS="$1"; shift ;;
        esac
    done
    echo "== fleet chaos gate (${SEEDS} generated fleet plans, dual-run, threads matrix: ${THREADS}) =="
    FLEET_CHAOS_SEEDS="${SEEDS}" FLEET_CHAOS_THREADS="${THREADS}" \
        cargo test -q --release -p androne --test fleet_chaos
else
    SEEDS="${1:-24}"
    echo "== chaos gate (${SEEDS} seeded fault plans, dual-run) =="
    CHAOS_SEEDS="${SEEDS}" cargo test -q --release -p androne --test chaos
fi
