#!/usr/bin/env bash
# Fleet throughput gate: run the parallel-wave-executor bench and
# regenerate BENCH_fleet_throughput.json.
#
# The bench first proves threads=1 and threads=4 produce bit-identical
# fleet + metrics digests, then times both. The speedup floor is
# core-scaled: >=2.0x on hosts with >=4 cores, >=1.2x on 2-3 cores,
# and >=0.75x (an overhead bound, not a speedup) on a single core —
# the report's `acceptance` object records the host's core count and
# both floors so results stay comparable across machines. This script
# fails if the active floor did not hold.
#
# The bench then climbs the control-plane scaling ladder: 1k / 10k /
# 100k synthetic tenants pushed through batched admission, the
# sharded VDR, and the bin-packing planner to quiescence. The report's
# `scaling_ladder` object records each rung's wall-clock order
# throughput, p99 order->landing simulated latency, and peak queue
# depth; the 10k rung must be bit-identical across shards 1/4 and
# threads 1/4 and clear an absolute 10k orders/sec floor.
#
# Usage: scripts/fleet_bench.sh [scale]
#   scale: ANDRONE_BENCH_SCALE value (default 5; higher = faster,
#          noisier). Pass 1 for a full-fidelity run.

set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-5}"
OUT="${ANDRONE_BENCH_OUT:-$PWD/BENCH_fleet_throughput.json}"

cargo build --release
ANDRONE_BENCH_SCALE="$SCALE" ANDRONE_BENCH_OUT="$OUT" \
    cargo bench --bench fleet_throughput

if ! grep -q '"scaling_ladder"' "$OUT"; then
    echo "fleet bench FAIL: report has no scaling_ladder section (see $OUT)" >&2
    exit 1
fi
if grep -q '"pass": true' "$OUT"; then
    echo "fleet bench PASS ($OUT)"
else
    echo "fleet bench FAIL: speedup or scaling-ladder gate not met (see $OUT)" >&2
    exit 1
fi
