#!/usr/bin/env bash
# Fleet throughput gate: run the parallel-wave-executor bench and
# regenerate BENCH_fleet_throughput.json.
#
# The bench first proves threads=1 and threads=4 produce bit-identical
# fleet + metrics digests, then times both. The speedup floor is
# core-scaled: >=2.0x on hosts with >=4 cores, >=1.2x on 2-3 cores,
# and >=0.75x (an overhead bound, not a speedup) on a single core —
# the report's `acceptance` object records the host's core count and
# both floors so results stay comparable across machines. This script
# fails if the active floor did not hold.
#
# Usage: scripts/fleet_bench.sh [scale]
#   scale: ANDRONE_BENCH_SCALE value (default 5; higher = faster,
#          noisier). Pass 1 for a full-fidelity run.

set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-5}"
OUT="${ANDRONE_BENCH_OUT:-$PWD/BENCH_fleet_throughput.json}"

cargo build --release
ANDRONE_BENCH_SCALE="$SCALE" ANDRONE_BENCH_OUT="$OUT" \
    cargo bench --bench fleet_throughput

if grep -q '"pass": true' "$OUT"; then
    echo "fleet bench PASS ($OUT)"
else
    echo "fleet bench FAIL: core-scaled speedup floor not met (see $OUT)" >&2
    exit 1
fi
